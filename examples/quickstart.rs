//! Quickstart: declare a mesh, build a race-free plan, run a parallel
//! loop through three backends, and check they agree — the OP2 workflow
//! of paper §3 in fifty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ump::color::{PlanInputs, TwoLevelPlan};
use ump::core::{ExecPool, SharedDat};
use ump::mesh::generators::quad_channel;
use ump::simd::{split_sweep, F64x4, IdxVec, VecR};

fn main() {
    // 1. sets + mappings: a 64x32 quad mesh (cells, edges, nodes and the
    //    edge->cell connectivity come out of the generator)
    let mesh = quad_channel(64, 32).mesh;
    println!(
        "mesh: {} cells, {} edges, {} nodes",
        mesh.n_cells(),
        mesh.n_edges(),
        mesh.n_nodes()
    );

    // a toy "flux" loop over edges incrementing both neighbor cells —
    // the access pattern that makes unstructured loops race
    let edge_weight: Vec<f64> = (0..mesh.n_edges()).map(|e| (e % 7) as f64 * 0.25).collect();

    // 2. sequential reference
    let mut reference = vec![0.0f64; mesh.n_cells()];
    for e in 0..mesh.n_edges() {
        let c = mesh.edge2cell.row(e);
        reference[c[0] as usize] += edge_weight[e];
        reference[c[1] as usize] -= edge_weight[e];
    }

    // 3. threaded backend: two-level coloring makes blocks race-free
    let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 64);
    let plan = TwoLevelPlan::build(&inputs);
    println!(
        "plan: {} blocks in {} colors, ≤{} element colors per block",
        plan.blocks.len(),
        plan.block_colors.n_colors,
        plan.max_elem_colors()
    );
    // the persistent worker team: spawned once, reused by every color
    // round (use ExecPool::global() to share one team process-wide)
    let pool = ExecPool::new(0);
    let mut threaded = vec![0.0f64; mesh.n_cells()];
    {
        let shared = SharedDat::new(&mut threaded);
        pool.colored_blocks(&plan, 0, |_b, range| {
            for e in range.start as usize..range.end as usize {
                let c = mesh.edge2cell.row(e);
                unsafe {
                    shared.slice_mut(c[0] as usize, 1)[0] += edge_weight[e];
                    shared.slice_mut(c[1] as usize, 1)[0] -= edge_weight[e];
                }
            }
        });
    }

    // 4. explicit SIMD backend: gather weights, serialized scatter
    //    (paper Fig. 3b's structure: pre-sweep, vector body, post-sweep)
    let mut simd = vec![0.0f64; mesh.n_cells()];
    let sweep = split_sweep(0..mesh.n_edges(), F64x4::LANES, 0);
    for e in sweep.scalar_items() {
        let c = mesh.edge2cell.row(e);
        simd[c[0] as usize] += edge_weight[e];
        simd[c[1] as usize] -= edge_weight[e];
    }
    for es in sweep.vector_chunks() {
        let c0 = IdxVec::<4>::load_strided(&mesh.edge2cell.data, es * 2, 2);
        let c1 = IdxVec::<4>::load_strided(&mesh.edge2cell.data, es * 2 + 1, 2);
        let w = F64x4::load(&edge_weight, es);
        w.scatter_add_serial(&mut simd, c0, 1, 0);
        (-w).scatter_add_serial(&mut simd, c1, 1, 0);
    }

    // 5. all three agree
    let max_diff = |a: &[f64], b: &[f64]| {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    };
    println!(
        "threaded vs sequential: max |Δ| = {:e}",
        max_diff(&threaded, &reference)
    );
    println!(
        "simd     vs sequential: max |Δ| = {:e}",
        max_diff(&simd, &reference)
    );
    assert!(max_diff(&threaded, &reference) == 0.0);
    assert!(max_diff(&simd, &reference) == 0.0);
    println!("all backends agree ✓");

    // bonus: the same arithmetic on vectors (wrapper-class style)
    let a = VecR::<f64, 4>::from_array([1.0, 2.0, 3.0, 4.0]);
    println!("(a*a + a).sqrt() = {:?}", (a * a + a).sqrt().to_array());
}
