//! Cross-loop fusion end-to-end: run the Airfoil and Volna timesteps
//! unfused (`step_threaded`, one pool dispatch per loop) and fused
//! (`step_fused`, one colored dispatch per fusable group via the
//! `ump_lazy` chain runtime), print the timing, dispatch rounds and the
//! re-streamed bytes fusion avoided.
//!
//! ```text
//! cargo run --release --example fused_timestep [nx ny iters]
//! ```

use ump::core::{ExecPool, PlanCache, Recorder};
use ump::lazy::Shape;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args: nx ny iters"))
        .collect();
    let nx = args.first().copied().unwrap_or(300);
    let ny = args.get(1).copied().unwrap_or(150);
    let iters = args.get(2).copied().unwrap_or(20);
    let pool = ExecPool::new(ump::core::exec::default_threads());
    println!(
        "fused vs unfused, {} threads, {iters} iterations\n",
        pool.n_threads()
    );

    // ---- Airfoil (DP) ------------------------------------------------
    let cache = PlanCache::new();
    let mut sim = ump::apps::airfoil::Airfoil::<f64>::new(nx, ny);
    ump::apps::airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, 1024, None);
    let r0 = pool.dispatch_rounds();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        ump::apps::airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, 1024, None);
    }
    let unfused_s = t0.elapsed().as_secs_f64();
    let unfused_rounds = (pool.dispatch_rounds() - r0) / iters as u64;

    let rec = Recorder::new();
    let mut sim = ump::apps::airfoil::Airfoil::<f64>::new(nx, ny);
    ump::apps::airfoil::drivers::step_fused_on(
        &pool,
        &mut sim,
        &cache,
        Shape::Threaded,
        0,
        1024,
        None,
    );
    let r1 = pool.dispatch_rounds();
    let t1 = std::time::Instant::now();
    for _ in 0..iters {
        ump::apps::airfoil::drivers::step_fused_on(
            &pool,
            &mut sim,
            &cache,
            Shape::Threaded,
            0,
            1024,
            Some(&rec),
        );
    }
    let fused_s = t1.elapsed().as_secs_f64();
    let fused_rounds = (pool.dispatch_rounds() - r1) / iters as u64;
    let stats = rec.fusion("airfoil_step").expect("chain stats");

    println!("Airfoil {nx}x{ny} (DP):");
    println!("  unfused: {unfused_s:.3}s, {unfused_rounds} dispatch rounds/step");
    println!(
        "  fused:   {fused_s:.3}s, {fused_rounds} dispatch rounds/step  ({:.2}x)",
        unfused_s / fused_s
    );
    println!(
        "  chain:   {} loops -> {} groups, {} rounds saved/step, {:.1} MB not re-streamed/step",
        stats.loops / stats.executions,
        stats.groups / stats.executions,
        stats.rounds_saved() / stats.executions,
        stats.bytes_saved / stats.executions as f64 / 1e6
    );

    // ---- Volna (SP) --------------------------------------------------
    let (vx, vy) = (nx / 2, ny);
    let cache = PlanCache::new();
    let mut sim = ump::apps::volna::Volna::<f32>::new(vx, vy);
    ump::apps::volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, 1024, None);
    let r0 = pool.dispatch_rounds();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        ump::apps::volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, 1024, None);
    }
    let unfused_s = t0.elapsed().as_secs_f64();
    let unfused_rounds = (pool.dispatch_rounds() - r0) / iters as u64;

    let rec = Recorder::new();
    let mut sim = ump::apps::volna::Volna::<f32>::new(vx, vy);
    ump::apps::volna::drivers::step_fused_on(
        &pool,
        &mut sim,
        &cache,
        Shape::Threaded,
        0,
        1024,
        None,
    );
    let r1 = pool.dispatch_rounds();
    let t1 = std::time::Instant::now();
    for _ in 0..iters {
        ump::apps::volna::drivers::step_fused_on(
            &pool,
            &mut sim,
            &cache,
            Shape::Threaded,
            0,
            1024,
            Some(&rec),
        );
    }
    let fused_s = t1.elapsed().as_secs_f64();
    let fused_rounds = (pool.dispatch_rounds() - r1) / iters as u64;
    let stats = rec.fusion("volna_step").expect("chain stats");

    println!("\nVolna {vx}x{vy} (SP):");
    println!("  unfused: {unfused_s:.3}s, {unfused_rounds} dispatch rounds/step");
    println!(
        "  fused:   {fused_s:.3}s, {fused_rounds} dispatch rounds/step  ({:.2}x)",
        unfused_s / fused_s
    );
    println!(
        "  chain:   {} loops -> {} groups, {} rounds saved/step, {:.1} MB not re-streamed/step",
        stats.loops / stats.executions,
        stats.groups / stats.executions,
        stats.rounds_saved() / stats.executions,
        stats.bytes_saved / stats.executions as f64 / 1e6
    );

    // per-group breakdown of the fused Volna step (its recorder is the
    // one still in scope)
    println!("\nfused group timings (Volna, from the Recorder):");
    for (name, s) in rec.report() {
        println!(
            "  {name:<40} {:>8.3}s  {:>7.1} GB/s",
            s.seconds,
            s.gb_per_s()
        );
    }
}
