//! The Volna tsunami scenario: a Gaussian source over synthetic shelf
//! bathymetry, propagated with the RK2 shallow-water solver; prints wave
//! arrival at a line of coastal "gauges" and checks mass conservation.
//!
//! ```text
//! cargo run --release --example volna_tsunami [n steps]
//! ```

use ump::apps::volna::{drivers, Volna};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args: n steps"))
        .collect();
    let n = args.first().copied().unwrap_or(128);
    let steps = args.get(1).copied().unwrap_or(200);

    let mut sim = Volna::<f32>::new(2 * n, n);
    println!(
        "Volna: {} triangles, source peak {:.2} m, total volume {:.4e}",
        sim.w.set_size,
        sim.max_eta(),
        sim.total_volume()
    );

    // gauges along the shore-normal line y = 25
    let gauges: Vec<usize> = [30.0, 50.0, 70.0, 85.0, 95.0]
        .iter()
        .map(|&gx| nearest_cell(&sim, gx, 25.0))
        .collect();

    let v0 = sim.total_volume();
    let mut time = 0.0f64;
    for step in 0..steps {
        let dt = drivers::step_simd::<f32, 8>(&mut sim, None);
        time += dt;
        if step % (steps / 10).max(1) == 0 {
            let etas: Vec<String> = gauges
                .iter()
                .map(|&c| {
                    let r = sim.w.row(c);
                    format!("{:+.3}", r[0] + r[3])
                })
                .collect();
            println!(
                "t = {time:7.2}  η at gauges (x=30,50,70,85,95): {}",
                etas.join("  ")
            );
        }
    }
    let v1 = sim.total_volume();
    println!("\nafter {steps} steps (t = {time:.2}):");
    println!("  max |η| = {:.4} m", sim.max_eta());
    println!("  volume drift = {:.3e} (relative)", (v1 - v0).abs() / v0);
    assert!((v1 - v0).abs() < 1e-3 * v0, "mass not conserved");
    assert!(sim.w.all_finite(), "solution blew up");
    println!("mass conserved, solution finite ✓");
}

fn nearest_cell(sim: &Volna<f32>, x: f64, y: f64) -> usize {
    let mesh = &sim.case.mesh;
    (0..mesh.n_cells())
        .min_by(|&a, &b| {
            let da = dist2(mesh.cell_centroid(a), x, y);
            let db = dist2(mesh.cell_centroid(b), x, y);
            da.partial_cmp(&db).unwrap()
        })
        .unwrap()
}

fn dist2(c: [f64; 2], x: f64, y: f64) -> f64 {
    (c[0] - x).powi(2) + (c[1] - y).powi(2)
}
