//! Inspect the machinery under the backends: partition a mesh, build all
//! three coloring schemes, and print the quality metrics the paper's
//! performance analysis turns on (edge cut, halo volume, reuse factors,
//! serialization depth, lane utilization).
//!
//! ```text
//! cargo run --release --example partition_color [nx ny ranks]
//! ```

use ump::color::{BlockPermutePlan, FullPermutePlan, PlanInputs, PlanStats, TwoLevelPlan};
use ump::core::distribute;
use ump::mesh::dual::cell_dual;
use ump::mesh::generators::quad_channel;
use ump::part::{greedy_bfs, rcb, refine_boundary, PartitionQuality};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args: nx ny ranks"))
        .collect();
    let nx = args.first().copied().unwrap_or(120);
    let ny = args.get(1).copied().unwrap_or(60);
    let ranks = args.get(2).copied().unwrap_or(4) as u32;

    let mesh = quad_channel(nx, ny).mesh;
    let dual = cell_dual(&mesh);
    println!("mesh: {} cells, {} edges\n", mesh.n_cells(), mesh.n_edges());

    // --- partitioners (the PT-Scotch substitutes) -------------------------
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let p_rcb = rcb(&pts, ranks);
    let mut p_bfs = greedy_bfs(&dual, ranks);
    let q_rcb = PartitionQuality::measure(&dual, &p_rcb);
    let q_bfs_before = PartitionQuality::measure(&dual, &p_bfs);
    let moves = refine_boundary(&dual, &mut p_bfs, 0.05);
    let q_bfs = PartitionQuality::measure(&dual, &p_bfs);
    println!("partitioners ({} ranks):", ranks);
    println!(
        "  RCB         cut {:>5}  imbalance {:.3}  halo {:>5}",
        q_rcb.edge_cut, q_rcb.imbalance, q_rcb.halo_volume
    );
    println!(
        "  greedy BFS  cut {:>5}  imbalance {:.3}  halo {:>5}  (refined: {} moves, cut {} -> {})",
        q_bfs.edge_cut,
        q_bfs.imbalance,
        q_bfs.halo_volume,
        moves,
        q_bfs_before.edge_cut,
        q_bfs.edge_cut
    );

    // --- distribution (owner-compute + exec halo) --------------------------
    let locals = distribute(&mesh, &p_rcb);
    let redundant: usize =
        locals.iter().map(|lm| lm.mesh.n_edges()).sum::<usize>() - mesh.n_edges();
    println!(
        "\ndistribution: redundantly executed edges {redundant} ({:.2}% of {})",
        100.0 * redundant as f64 / mesh.n_edges() as f64,
        mesh.n_edges()
    );
    for (r, lm) in locals.iter().enumerate() {
        println!(
            "  rank {r}: {} owned + {} ghost cells, {} edges ({} owned), halo recv {}",
            lm.n_owned_cells,
            lm.n_ghost_cells(),
            lm.mesh.n_edges(),
            lm.n_owned_edges,
            lm.cell_halo.recv_volume()
        );
    }

    // --- the three coloring schemes (paper §4, Fig. 8a) --------------------
    println!("\ncoloring schemes for the edges->cells increment (block 256, 4 lanes):");
    let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 256);
    let two = TwoLevelPlan::build(&inputs);
    let full = FullPermutePlan::build(&inputs);
    let block = BlockPermutePlan::build(&inputs);
    let maps = [&mesh.edge2cell];
    for (name, stats) in [
        ("two-level", PlanStats::of_two_level(&two, &maps, 4)),
        ("full permute", PlanStats::of_full_permute(&full, &maps, 4)),
        (
            "block permute",
            PlanStats::of_block_permute(&block, &maps, 4),
        ),
    ] {
        println!(
            "  {name:<14} blocks {:>4}  block-colors {:>2}  serialization {:>2}  reuse {:.2}  lane-util {:.2}",
            stats.n_blocks,
            stats.n_block_colors,
            stats.max_elem_colors,
            stats.reuse_factor,
            stats.lane_utilization
        );
    }
    println!("\nreading: full permute trades reuse (→1.0) for lane independence;");
    println!("block permute keeps block reuse but wastes lanes on small color groups.");
}
