//! The Airfoil benchmark end-to-end: run the solver through every
//! backend, print per-kernel breakdowns and the vectorization speedup —
//! a laptop-scale rendition of the paper's Fig. 6 measurement.
//!
//! ```text
//! cargo run --release --example airfoil [nx ny iters]
//! ```

use ump::apps::airfoil::{drivers, mpi, Airfoil};
use ump::core::{ExecPool, PlanCache, Recorder};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|a| a.parse().expect("numeric args: nx ny iters"))
        .collect();
    let nx = args.first().copied().unwrap_or(300);
    let ny = args.get(1).copied().unwrap_or(150);
    let iters = args.get(2).copied().unwrap_or(20);
    println!("Airfoil {nx}x{ny} cells, {iters} iterations per backend\n");

    let mut results: Vec<(&str, f64, f64)> = Vec::new(); // (name, seconds, final rms)

    // scalar sequential (the baseline of Fig. 5)
    {
        let rec = Recorder::new();
        let mut sim = Airfoil::<f64>::new(nx, ny);
        let mut rms = 0.0;
        for _ in 0..iters {
            rms = drivers::step_seq(&mut sim, Some(&rec));
        }
        print_breakdown("scalar sequential", &rec);
        results.push(("scalar", rec.total_seconds(), rms));
    }
    // explicit SIMD (Fig. 3b)
    {
        let rec = Recorder::new();
        let mut sim = Airfoil::<f64>::new(nx, ny);
        let mut rms = 0.0;
        for _ in 0..iters {
            rms = drivers::step_simd::<f64, 4>(&mut sim, Some(&rec));
        }
        print_breakdown("explicit SIMD (4 lanes, DP)", &rec);
        results.push(("simd", rec.total_seconds(), rms));
    }
    // threaded + SIMD hybrid, on a persistent worker team created once
    {
        let rec = Recorder::new();
        let cache = PlanCache::new();
        let pool = ExecPool::new(0);
        let mut sim = Airfoil::<f64>::new(nx, ny);
        let mut rms = 0.0;
        for _ in 0..iters {
            rms = drivers::step_simd_threaded_on::<f64, 4>(
                &pool,
                &mut sim,
                &cache,
                0,
                1024,
                Some(&rec),
            );
        }
        print_breakdown("threads × SIMD hybrid", &rec);
        results.push(("hybrid", rec.total_seconds(), rms));
    }
    // message-passing backend
    {
        let rec = Recorder::new();
        let case = ump::mesh::generators::quad_channel(nx, ny);
        let (_q, hist) = mpi::run_mpi::<f64>(&case, 2, iters, Some(&rec));
        println!(
            "message-passing (2 ranks): rms history tail = {:.3e}",
            hist.last().unwrap()
        );
        results.push(("mpi", rec.total_seconds(), *hist.last().unwrap()));
    }

    println!("\nsummary:");
    let base = results[0].1;
    for (name, secs, rms) in &results {
        println!(
            "  {name:<8} {secs:>8.3}s  speedup {:>5.2}x  final rms {rms:.6e}",
            base / secs
        );
    }
    let rms0 = results[0].2;
    assert!(
        results
            .iter()
            .all(|(_, _, r)| (r - rms0).abs() < 1e-9 * rms0),
        "backends disagree!"
    );
    println!("all backends converge to the same residual ✓");
}

fn print_breakdown(title: &str, rec: &Recorder) {
    println!("{title}:");
    for (name, s) in rec.report() {
        println!(
            "  {name:<12} {:>8.3}s  {:>7.2} GB/s  {:>7.2} GFLOP/s",
            s.seconds,
            s.gb_per_s(),
            s.gflop_per_s()
        );
    }
    println!("  total        {:>8.3}s\n", rec.total_seconds());
}
