//! # ump — vectorizing unstructured-mesh computations
//!
//! Facade crate for the `ump` workspace, a from-scratch Rust reproduction
//! of *"Vectorizing Unstructured Mesh Computations for Many-core
//! Architectures"* (Reguly, László, Mudalige, Giles): an OP2-style
//! domain-specific layer for unstructured-mesh parallel loops with
//! scalar, threaded (colored blocks), explicitly-SIMD, SIMT-emulated,
//! message-passing and fused lazy-execution ([`lazy`]) backends, plus
//! the two benchmark applications
//! (Airfoil CFD and the Volna tsunami code), an analytic model of the
//! paper's four machines, and a job-queue service layer ([`serve`])
//! multiplexing simulations over shared pools with deterministic
//! checkpoint/restart.
//!
//! ```
//! use ump::apps::airfoil::{drivers, Airfoil};
//!
//! // a small Airfoil instance, one scalar and one SIMD iteration
//! let mut sim = Airfoil::<f64>::new(24, 12);
//! let rms_scalar = drivers::step_seq(&mut sim, None);
//! let rms_simd = drivers::step_simd::<f64, 4>(&mut sim, None);
//! assert!(rms_scalar.is_finite() && rms_simd.is_finite());
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and paper-substitution notes, and `EXPERIMENTS.md`
//! for the reproduced tables and figures.

#![deny(missing_docs)]

pub use ump_apps as apps;
pub use ump_archsim as archsim;
pub use ump_color as color;
pub use ump_core as core;
pub use ump_core::Backend;
pub use ump_fault as fault;
pub use ump_lazy as lazy;
pub use ump_mesh as mesh;
pub use ump_minimpi as minimpi;
pub use ump_part as part;
pub use ump_serve as serve;
pub use ump_simd as simd;
pub use ump_tune as tune;
