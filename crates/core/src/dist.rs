//! Mesh distribution for the message-passing backend.
//!
//! OP2's MPI strategy (paper §3): partition the mesh, owner-computes, and
//! "redundant execution of certain set elements by different processes
//! may be necessary". Concretely, for our edge-centric loops:
//!
//! * **cells** are partitioned (the partitioner's output); each rank
//!   additionally holds one layer of *ghost* cells — the import non-exec
//!   halo — refreshed from owners by [`LocalMesh::cell_halo`] exchanges,
//! * **edges** touching an owned cell are *executed* by the rank; edges
//!   on partition boundaries are executed by both ranks (OP2's import
//!   exec halo). Increments into ghost cells are computed and discarded —
//!   the owner computes them itself via its own redundant copy — so no
//!   reverse communication is needed,
//! * **boundary edges** are executed only by the owner of their cell,
//! * **nodes** are replicated where referenced (their data — coordinates —
//!   is static, so they never need exchanging),
//! * **sum reductions** count *owned* elements only; min/max reductions
//!   are double-count-insensitive.
//!
//! Local numbering: `[owned | ghost]` for cells, `[owned-executed |
//! foreign-executed]` for edges, so loop drivers can bound reductions by
//! `n_owned_*` and halo refreshes by the ghost range.

use std::collections::HashMap;

use ump_mesh::{MapTable, Mesh2d};
use ump_minimpi::ExchangePlan;
use ump_part::Partition;
use ump_simd::Real;

/// One rank's share of the mesh (see module docs for layout).
#[derive(Clone, Debug)]
pub struct LocalMesh {
    /// Localized mesh: cells `[owned | ghost]`, edges `[owned | exec]`,
    /// maps rewritten to local indices.
    pub mesh: Mesh2d,
    /// Number of owned cells (the rest are ghosts).
    pub n_owned_cells: usize,
    /// Number of owned executed edges (the rest are redundantly executed
    /// foreign edges).
    pub n_owned_edges: usize,
    /// Global id of each local cell.
    pub cell_global: Vec<u32>,
    /// Global id of each local node.
    pub node_global: Vec<u32>,
    /// Global id of each local (executed) edge.
    pub edge_global: Vec<u32>,
    /// Global id of each local boundary edge.
    pub bedge_global: Vec<u32>,
    /// Halo-exchange plan refreshing ghost-cell data from owners.
    pub cell_halo: ExchangePlan,
}

impl LocalMesh {
    /// Number of ghost cells.
    pub fn n_ghost_cells(&self) -> usize {
        self.mesh.n_cells() - self.n_owned_cells
    }

    /// Per-local-edge halo classification: `true` for edges that touch a
    /// ghost cell and therefore *read halo data* — the boundary elements
    /// of the overlap schedule. Edges whose cells are both owned are
    /// interior: their inputs are complete before any exchange finishes,
    /// so fused executors run their blocks while halo messages are in
    /// flight and defer only the `true` blocks until after
    /// [`ExchangePlan::finish`](ump_minimpi::PendingExchange::finish).
    ///
    /// Local numbering puts owned cells first, so the test is one
    /// comparison per edge endpoint.
    pub fn boundary_edges(&self) -> Vec<bool> {
        (0..self.mesh.n_edges())
            .map(|e| {
                self.mesh
                    .edge2cell
                    .row(e)
                    .iter()
                    .any(|&c| c as usize >= self.n_owned_cells)
            })
            .collect()
    }
}

/// Split a mesh across the ranks of `partition` (a cell partition).
/// Returns one [`LocalMesh`] per rank; pure function of its inputs
/// (deterministic), computed globally — the simulated analogue of OP2's
/// parallel import phase.
pub fn distribute(mesh: &Mesh2d, partition: &Partition) -> Vec<LocalMesh> {
    assert_eq!(
        partition.part.len(),
        mesh.n_cells(),
        "cell partition expected"
    );
    let n_ranks = partition.n_parts as usize;
    let part = &partition.part;

    // --- per-rank element selections (global ids) -------------------------
    let mut owned_cells: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    for (c, &p) in part.iter().enumerate() {
        owned_cells[p as usize].push(c as u32);
    }
    let mut exec_edges_owned: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    let mut exec_edges_foreign: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    for e in 0..mesh.n_edges() {
        let r = mesh.edge2cell.row(e);
        let (p0, p1) = (part[r[0] as usize], part[r[1] as usize]);
        // owner of the edge = owner of its first cell
        exec_edges_owned[p0 as usize].push(e as u32);
        if p1 != p0 {
            // partition-boundary edge: redundantly executed by p1 too
            exec_edges_foreign[p1 as usize].push(e as u32);
        }
    }
    let mut owned_bedges: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    for be in 0..mesh.n_bedges() {
        let c = mesh.bedge2cell.at(be, 0);
        owned_bedges[part[c] as usize].push(be as u32);
    }

    // --- ghost cells and local numbering ----------------------------------
    let mut locals: Vec<LocalMesh> = Vec::with_capacity(n_ranks);
    // ghost lists per (rank, owner) needed for the exchange plans
    let mut ghosts_of: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    let mut cell_l2g: Vec<Vec<u32>> = vec![Vec::new(); n_ranks];
    let mut cell_g2l: Vec<HashMap<u32, u32>> = vec![HashMap::new(); n_ranks];
    for p in 0..n_ranks {
        let mut ghost: Vec<u32> = Vec::new();
        for &e in exec_edges_owned[p].iter().chain(&exec_edges_foreign[p]) {
            for &c in mesh.edge2cell.row(e as usize) {
                if part[c as usize] != p as u32 {
                    ghost.push(c as u32);
                }
            }
        }
        ghost.sort_unstable();
        ghost.dedup();
        let mut l2g = owned_cells[p].clone();
        l2g.extend_from_slice(&ghost);
        let g2l: HashMap<u32, u32> = l2g
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();
        ghosts_of[p] = ghost;
        cell_l2g[p] = l2g;
        cell_g2l[p] = g2l;
    }

    // --- exchange plans (ghosts ordered ascending on both sides) ----------
    let mut halos: Vec<ExchangePlan> = (0..n_ranks).map(|_| ExchangePlan::empty(n_ranks)).collect();
    for p in 0..n_ranks {
        for &g in &ghosts_of[p] {
            let owner = part[g as usize] as usize;
            halos[p].recvs[owner].push(cell_g2l[p][&g]);
            halos[owner].sends[p].push(cell_g2l[owner][&g]);
        }
    }

    // --- build localized meshes --------------------------------------------
    for p in 0..n_ranks {
        let l2g_cells = &cell_l2g[p];
        let g2l_cells = &cell_g2l[p];
        let edges: Vec<u32> = exec_edges_owned[p]
            .iter()
            .chain(&exec_edges_foreign[p])
            .copied()
            .collect();
        let bedges = &owned_bedges[p];

        // nodes referenced by local cells, executed edges, owned bedges
        let mut node_global: Vec<u32> = Vec::new();
        for &c in l2g_cells {
            node_global.extend(mesh.cell2node.row(c as usize).iter().map(|&n| n as u32));
        }
        for &e in &edges {
            node_global.extend(mesh.edge2node.row(e as usize).iter().map(|&n| n as u32));
        }
        for &be in bedges {
            node_global.extend(mesh.bedge2node.row(be as usize).iter().map(|&n| n as u32));
        }
        node_global.sort_unstable();
        node_global.dedup();
        let g2l_nodes: HashMap<u32, u32> = node_global
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l as u32))
            .collect();

        let node_xy: Vec<[f64; 2]> = node_global
            .iter()
            .map(|&g| mesh.node_xy[g as usize])
            .collect();
        let localize =
            |name: &str, rows: &[u32], src: &MapTable, g2l: &HashMap<u32, u32>, to_size: usize| {
                let mut data = Vec::with_capacity(rows.len() * src.dim);
                for &r in rows {
                    for &t in src.row(r as usize) {
                        data.push(g2l[&(t as u32)] as i32);
                    }
                }
                MapTable::new(name, rows.len(), to_size, src.dim, data)
            };
        let n_local_cells = l2g_cells.len();
        let n_local_nodes = node_global.len();
        let local = Mesh2d {
            node_xy,
            cell2node: localize(
                "cell2node",
                l2g_cells,
                &mesh.cell2node,
                &g2l_nodes,
                n_local_nodes,
            ),
            edge2node: localize(
                "edge2node",
                &edges,
                &mesh.edge2node,
                &g2l_nodes,
                n_local_nodes,
            ),
            edge2cell: localize(
                "edge2cell",
                &edges,
                &mesh.edge2cell,
                g2l_cells,
                n_local_cells,
            ),
            bedge2node: localize(
                "bedge2node",
                bedges,
                &mesh.bedge2node,
                &g2l_nodes,
                n_local_nodes,
            ),
            bedge2cell: localize(
                "bedge2cell",
                bedges,
                &mesh.bedge2cell,
                g2l_cells,
                n_local_cells,
            ),
        };
        locals.push(LocalMesh {
            mesh: local,
            n_owned_cells: owned_cells[p].len(),
            n_owned_edges: exec_edges_owned[p].len(),
            cell_global: l2g_cells.clone(),
            node_global,
            edge_global: edges,
            bedge_global: bedges.clone(),
            cell_halo: std::mem::take(&mut halos[p]),
        });
    }
    locals
}

/// Extract the local rows of a global dat (`dim` components) following a
/// local→global id list — rank-local initial conditions.
pub fn extract_rows<R: Real>(global: &[R], dim: usize, ids: &[u32]) -> Vec<R> {
    let mut out = Vec::with_capacity(ids.len() * dim);
    for &g in ids {
        let base = g as usize * dim;
        out.extend_from_slice(&global[base..base + dim]);
    }
    out
}

/// Assemble a global dat from per-rank owned rows: inverse of
/// [`extract_rows`] restricted to each rank's owned prefix — used to
/// compare the message-passing backend's result against the sequential
/// reference.
pub fn assemble_owned<R: Real>(
    parts: &[(&[R], &[u32], usize)], // (local data, local->global ids, n_owned)
    total: usize,
    dim: usize,
) -> Vec<R> {
    let mut out = vec![R::ZERO; total * dim];
    let mut seen = vec![false; total];
    for &(data, ids, n_owned) in parts {
        for (l, &g) in ids.iter().take(n_owned).enumerate() {
            assert!(!seen[g as usize], "element {g} owned twice");
            seen[g as usize] = true;
            let (src, dst) = (l * dim, g as usize * dim);
            out[dst..dst + dim].copy_from_slice(&data[src..src + dim]);
        }
    }
    assert!(seen.iter().all(|&s| s), "ownership does not cover the set");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::dual::cell_dual;
    use ump_mesh::generators::quad_channel;
    use ump_minimpi::Universe;
    use ump_part::rcb;

    fn setup(nx: usize, ny: usize, ranks: u32) -> (Mesh2d, Partition, Vec<LocalMesh>) {
        let mesh = quad_channel(nx, ny).mesh;
        let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
        let partition = rcb(&pts, ranks);
        let locals = distribute(&mesh, &partition);
        (mesh, partition, locals)
    }

    #[test]
    fn owned_cells_partition_the_mesh() {
        let (mesh, _, locals) = setup(12, 8, 4);
        let mut seen = vec![0usize; mesh.n_cells()];
        for lm in &locals {
            lm.mesh.validate().unwrap();
            for &g in lm.cell_global.iter().take(lm.n_owned_cells) {
                seen[g as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "each cell owned exactly once");
    }

    #[test]
    fn every_edge_executed_and_boundary_edges_twice() {
        let (mesh, partition, locals) = setup(10, 6, 3);
        let mut count = vec![0usize; mesh.n_edges()];
        for lm in &locals {
            for &g in &lm.edge_global {
                count[g as usize] += 1;
            }
        }
        for e in 0..mesh.n_edges() {
            let r = mesh.edge2cell.row(e);
            let cross = partition.part[r[0] as usize] != partition.part[r[1] as usize];
            assert_eq!(
                count[e],
                if cross { 2 } else { 1 },
                "edge {e} cross={cross}"
            );
        }
    }

    #[test]
    fn ghosts_are_exactly_the_cells_touched_by_executed_edges() {
        let (mesh, partition, locals) = setup(8, 8, 4);
        for (p, lm) in locals.iter().enumerate() {
            // every ghost belongs to another rank and neighbors an owned cell
            let dual = cell_dual(&mesh);
            for &g in lm.cell_global.iter().skip(lm.n_owned_cells) {
                assert_ne!(partition.part[g as usize], p as u32);
                let touches_owned = dual
                    .row(g as usize)
                    .iter()
                    .any(|&n| partition.part[n as usize] == p as u32);
                assert!(touches_owned, "ghost {g} does not touch rank {p}");
            }
        }
    }

    #[test]
    fn localized_maps_reference_local_elements() {
        let (mesh, _, locals) = setup(9, 5, 3);
        for lm in &locals {
            // spot-check: localized edge2cell recovers global connectivity
            for (le, &ge) in lm.edge_global.iter().enumerate() {
                let local_row = lm.mesh.edge2cell.row(le);
                let global_row = mesh.edge2cell.row(ge as usize);
                for (j, &lc) in local_row.iter().enumerate() {
                    assert_eq!(lm.cell_global[lc as usize], global_row[j] as u32);
                }
            }
            for (ln, &gn) in lm.node_global.iter().enumerate() {
                assert_eq!(lm.mesh.node_xy[ln], mesh.node_xy[gn as usize]);
            }
        }
    }

    #[test]
    fn halo_exchange_refreshes_ghosts() {
        let (_, _, locals) = setup(10, 10, 4);
        let locals = &locals;
        let out = Universe::new(4).run(|comm| {
            let lm = &locals[comm.rank()];
            let dim = 2;
            // owned values = f(global id); ghosts poisoned
            let mut data = vec![-1.0f64; lm.mesh.n_cells() * dim];
            for (l, &g) in lm.cell_global.iter().take(lm.n_owned_cells).enumerate() {
                data[l * dim] = g as f64;
                data[l * dim + 1] = g as f64 * 0.5;
            }
            lm.cell_halo.execute(comm, &mut data, dim, 0);
            // every ghost must now hold its owner's value
            for (l, &g) in lm.cell_global.iter().enumerate().skip(lm.n_owned_cells) {
                assert_eq!(data[l * dim], g as f64);
                assert_eq!(data[l * dim + 1], g as f64 * 0.5);
            }
            true
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn redundant_edge_execution_matches_sequential_increment() {
        // the core of the owner-compute scheme: local execution of all
        // touching edges makes owned cells complete without reverse comms
        let (mesh, _, locals) = setup(12, 7, 4);
        let mut reference = vec![0.0f64; mesh.n_cells()];
        for e in 0..mesh.n_edges() {
            let r = mesh.edge2cell.row(e);
            reference[r[0] as usize] += 1.0 + e as f64;
            reference[r[1] as usize] -= 0.5 * e as f64;
        }
        let mut rank_results = Vec::new();
        for lm in &locals {
            let mut res = vec![0.0f64; lm.mesh.n_cells()];
            for le in 0..lm.mesh.n_edges() {
                let ge = lm.edge_global[le] as f64;
                let r = lm.mesh.edge2cell.row(le);
                res[r[0] as usize] += 1.0 + ge;
                res[r[1] as usize] -= 0.5 * ge;
            }
            rank_results.push(res);
        }
        let parts: Vec<(&[f64], &[u32], usize)> = locals
            .iter()
            .zip(&rank_results)
            .map(|(lm, res)| (res.as_slice(), lm.cell_global.as_slice(), lm.n_owned_cells))
            .collect();
        let assembled = assemble_owned(&parts, mesh.n_cells(), 1);
        assert_eq!(assembled, reference);
    }

    #[test]
    fn boundary_edges_are_exactly_the_ghost_touching_ones() {
        let (mesh, partition, locals) = setup(11, 9, 4);
        for lm in &locals {
            let flags = lm.boundary_edges();
            assert_eq!(flags.len(), lm.mesh.n_edges());
            assert!(flags.iter().any(|&b| b), "every rank has a halo fringe");
            assert!(flags.iter().any(|&b| !b), "and an interior");
            for (le, &boundary) in flags.iter().enumerate() {
                let ge = lm.edge_global[le] as usize;
                let r = mesh.edge2cell.row(ge);
                let crosses = partition.part[r[0] as usize] != partition.part[r[1] as usize];
                assert_eq!(boundary, crosses, "local edge {le} (global {ge})");
            }
        }
        // a single rank owns everything: no boundary edges at all
        let single = setup(6, 4, 1).2;
        assert!(single[0].boundary_edges().iter().all(|&b| !b));
    }

    #[test]
    fn extract_assemble_roundtrip() {
        let (mesh, _, locals) = setup(6, 6, 2);
        let global: Vec<f64> = (0..mesh.n_cells() * 3).map(|i| i as f64).collect();
        let extracted: Vec<Vec<f64>> = locals
            .iter()
            .map(|lm| extract_rows(&global, 3, &lm.cell_global))
            .collect();
        let parts: Vec<(&[f64], &[u32], usize)> = locals
            .iter()
            .zip(&extracted)
            .map(|(lm, d)| (d.as_slice(), lm.cell_global.as_slice(), lm.n_owned_cells))
            .collect();
        assert_eq!(assemble_owned(&parts, mesh.n_cells(), 3), global);
    }

    #[test]
    fn bedges_are_owned_by_their_cells_rank() {
        let (mesh, partition, locals) = setup(7, 7, 3);
        let mut count = vec![0usize; mesh.n_bedges()];
        for (p, lm) in locals.iter().enumerate() {
            for &gbe in &lm.bedge_global {
                count[gbe as usize] += 1;
                let c = mesh.bedge2cell.at(gbe as usize, 0);
                assert_eq!(partition.part[c], p as u32);
            }
        }
        assert!(count.iter().all(|&c| c == 1));
    }
}
