//! A persistent worker-pool runtime for colored-block execution.
//!
//! The paper's OpenMP backend (§3–§4.1) runs every color round on a
//! *persistent* thread team: the `#pragma omp parallel` region is entered
//! once and the same OS threads pick up each colored batch of blocks.
//! Spawning a fresh scoped team per color round — what
//! [`par_colored_blocks`](crate::exec::par_colored_blocks) used to do —
//! charges every indirect loop several thread create/join cycles per
//! timestep, which drowns exactly the threading-vs-SIMT scheduling
//! comparison the paper measures. [`ExecPool`] restores the paper's cost
//! model: a fixed team of workers created once and dispatched per round.
//!
//! # Dispatch protocol
//!
//! Shared state between the dispatching thread and the workers:
//!
//! * `epoch: AtomicU64` — the round generation counter; a change is the
//!   wake signal. Workers wait for it with a **spin-then-park** hybrid
//!   (a bounded spin keeps back-to-back color rounds hot; only when the
//!   spin budget is exhausted does a worker park on the condvar).
//! * `round: AtomicPtr<Round>` — points at the current round descriptor,
//!   which lives *on the dispatcher's stack*. Published with `Release`
//!   **before** the epoch bump.
//! * `round_state: AtomicUsize` — a claim register: the low bits count
//!   workers currently *inside* the round, the high bit marks the round
//!   **closed**. A woken worker must CAS-increment the count — which
//!   fails once the closed bit is set — *before* it may dereference
//!   `round`; it decrements on the way out.
//!
//! One round proceeds as:
//!
//! 1. the dispatcher (serialized by an internal lock, so the pool is
//!    shareable) resets `round_state`, publishes `round`, bumps `epoch`
//!    and notifies the condvar only if someone is actually parked;
//! 2. woken workers claim entry and pull work as *chunks of block
//!    indices* from `Round::cursor` (`fetch_add(chunk)`, several blocks
//!    per fetch) — chunking cuts cursor contention roughly `chunk`-fold
//!    on fine-grained plans;
//! 3. the dispatcher pulls chunks itself, and when the cursor is
//!    exhausted sets the closed bit and waits for the entered count to
//!    drain to zero before returning.
//!
//! The claim register is what makes the pool cheap when the machine is
//! busy or small: a worker that wakes *after* the dispatcher finished the
//! round simply fails to claim entry and goes back to sleep — the
//! dispatcher never waits for a worker that did not join, so a round's
//! critical path is `max(work, wake latency of the workers that DID
//! join)`, not the scheduler latency of the whole team.
//!
//! A panic inside a round body (worker or dispatcher) is caught, the
//! cursor is drained so no further chunks start, the claim is released,
//! and the dispatcher re-raises after the round quiesces — no lost
//! workers, no dangling round pointer.
//!
//! # Safety argument (coloring invariant)
//!
//! `run_round` executes `body(i)` concurrently on many threads while the
//! closure borrows the caller's data through [`SharedDat`]/[`SharedMut`]
//! (raw-pointer views). Soundness rests on the same contract the old
//! scoped implementation had: **within one color round, no two block
//! bodies touch the same element** — guaranteed by the two-level plan,
//! which assigns conflicting blocks different colors, and validated by
//! tests and `debug_assert`s in `ump-color`. The pool adds the lifetime
//! half of the argument: a worker may only hold the round pointer while
//! the claim register counts it, and the dispatcher does not return
//! before the register drains with the closed bit set — so the
//! stack-borrowed `Round` (and the `body` closure behind its type-erased
//! pointer) strictly outlives all concurrent use. The `Acquire`/`Release`
//! pairs on the claim register order every write made inside the round
//! before the dispatcher's return: each per-color round ends in a
//! happens-before edge, exactly like the implicit barrier at the end of
//! an OpenMP `for`.
//!
//! [`SharedDat`]: crate::exec::SharedDat
//! [`SharedMut`]: crate::exec::SharedMut

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use ump_color::TwoLevelPlan;

use crate::exec::default_threads;

/// Spin iterations before a thread parks (worker) or yields (dispatcher).
/// Sized so the gap between two color rounds of one parallel loop
/// (microseconds) is bridged hot, while a pool idle between timesteps
/// costs no CPU.
const SPIN_BEFORE_PARK: u32 = 1 << 14;

/// High bit of `round_state`: the round takes no further entrants.
const CLOSED: usize = 1 << (usize::BITS - 1);

/// A round descriptor; lives on the dispatcher's stack for the duration
/// of one color round.
struct Round {
    /// Next unclaimed item index.
    cursor: AtomicUsize,
    /// Items in this round (`body` is called with `0..n_items`).
    n_items: usize,
    /// Items claimed per cursor fetch.
    chunk: usize,
    /// Type-erased `&'round (dyn Fn(usize) + Sync)`; the lifetime is
    /// enforced dynamically by the claim register (see module docs).
    body: *const (dyn Fn(usize) + Sync),
}

impl Round {
    /// Pull and execute chunks until the cursor is exhausted.
    fn pull(&self) {
        // SAFETY: the caller holds a claim on this round (or is the
        // dispatcher), so the closure is alive (see module docs).
        let body = unsafe { &*self.body };
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.n_items {
                break;
            }
            let end = (start + self.chunk).min(self.n_items);
            for i in start..end {
                body(i);
            }
        }
    }

    /// Skip remaining chunks (panic recovery path): new pulls see the
    /// cursor at or past `n_items` and stop. `n_items` rather than
    /// `usize::MAX`, so racing `fetch_add`s cannot wrap the counter.
    fn drain(&self) {
        self.cursor.store(self.n_items, Ordering::Relaxed);
    }
}

struct Shared {
    epoch: AtomicU64,
    round: AtomicPtr<Round>,
    /// Claim register: entered-worker count, plus [`CLOSED`] in the high
    /// bit. See module docs.
    round_state: AtomicUsize,
    /// Most workers a round admits (set per round, read by entrants).
    max_entrants: AtomicUsize,
    panicked: AtomicBool,
    /// Message of the first worker panic of the current round — carried
    /// to the dispatcher so the re-raised error names the actual
    /// failure instead of a generic "a worker panicked".
    panic_note: Mutex<Option<String>>,
    shutdown: AtomicBool,
    /// Workers currently parked on `cv` (maintained under `wake`).
    parked: AtomicUsize,
    /// Wake mutex; holds the last published epoch for parked waiters.
    wake: Mutex<u64>,
    cv: Condvar,
}

thread_local! {
    /// Set while this thread is executing a round body as a pool worker
    /// or dispatcher; nested dispatch on the same thread runs inline
    /// instead of deadlocking on the dispatch lock.
    static IN_ROUND: Cell<bool> = const { Cell::new(false) };
}

/// A persistent team of worker threads for colored-block execution.
///
/// Worker threads are spawned **exactly once**, at construction; every
/// [`run_round`](ExecPool::run_round) after that is a park/unpark
/// exchange, never a `thread::spawn`. The pool is `Sync`: concurrent
/// dispatchers (e.g. message-passing ranks sharing the
/// [global pool](ExecPool::global)) are serialized on an internal lock.
/// Dropping the pool wakes and joins the team.
pub struct ExecPool {
    shared: Arc<Shared>,
    /// Serializes dispatchers; a round owns the whole team.
    dispatch: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    team: usize,
    /// Lifetime count of dispatched rounds (see
    /// [`dispatch_rounds`](ExecPool::dispatch_rounds)).
    rounds: AtomicU64,
    /// Fast gate for the fault hook: one relaxed load per round when
    /// unarmed, so fault-free runs pay nothing measurable.
    fault_armed: AtomicBool,
    fault: Mutex<Option<Arc<ump_fault::FaultInjector>>>,
}

/// Typed form of a panic that escaped a color round — what
/// [`ExecPool::try_run_round`] returns instead of unwinding, so a
/// service worker can fail one job without tearing anything else down.
#[derive(Clone, Debug)]
pub struct PoolPanic {
    /// The panic payload's message (panic location metadata is not
    /// recoverable from a payload; string payloads are carried whole).
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool round panicked: {}", self.message)
    }
}

impl std::error::Error for PoolPanic {}

/// Best-effort message extraction from a panic payload.
pub fn panic_payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl ExecPool {
    /// Create a pool whose team (dispatching caller + spawned workers)
    /// has `n_threads` members; `0` means [`default_threads`]. A team of
    /// 1 spawns no workers and runs every round inline.
    pub fn new(n_threads: usize) -> ExecPool {
        let team = if n_threads == 0 {
            default_threads()
        } else {
            n_threads
        };
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            round: AtomicPtr::new(std::ptr::null_mut()),
            round_state: AtomicUsize::new(CLOSED),
            max_entrants: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            panic_note: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            parked: AtomicUsize::new(0),
            wake: Mutex::new(0),
            cv: Condvar::new(),
        });
        let workers = (0..team.saturating_sub(1))
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ump-pool-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning pool worker")
            })
            .collect();
        ExecPool {
            shared,
            dispatch: Mutex::new(()),
            workers,
            team,
            rounds: AtomicU64::new(0),
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
        }
    }

    /// Arm a fault injector: each subsequent round's lifetime index
    /// (the [`dispatch_rounds`](ExecPool::dispatch_rounds) counter) is
    /// offered to [`ump_fault::FaultInjector::on_round`], and a match
    /// panics inside that round's kernel body — on whichever thread
    /// pulls the first chunk, exercising the real containment path.
    pub fn arm_fault(&self, inj: Arc<ump_fault::FaultInjector>) {
        *self.fault.lock() = Some(inj);
        self.fault_armed.store(true, Ordering::Release);
    }

    /// Remove the armed fault injector, restoring the zero-cost path.
    pub fn disarm_fault(&self) {
        self.fault.lock().take();
        self.fault_armed.store(false, Ordering::Release);
    }

    /// Team size (dispatching caller + persistent workers).
    pub fn n_threads(&self) -> usize {
        self.team
    }

    /// Number of rounds dispatched on this pool so far — every
    /// [`run_round`](ExecPool::run_round) call counts as one, including
    /// rounds small enough to execute inline. The synchronization-cost
    /// metric behind the fusion instrumentation: one round ≈ one
    /// team-wide barrier.
    pub fn dispatch_rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// Effective concurrent-body cap for a round: `0` means the whole
    /// team, anything else is clamped to the team size.
    fn cap(&self, max_threads: usize) -> usize {
        if max_threads == 0 {
            self.team
        } else {
            max_threads.min(self.team)
        }
    }

    /// The process-wide pool, created on first use with
    /// `max(default_threads(), 4)` members. The headroom beyond the
    /// core count keeps small explicit thread counts (the 2- and 4-way
    /// configurations the tests pin) truly concurrent even on 1–2 core
    /// hosts; parked spare workers cost nothing. Backs the
    /// source-compatible
    /// [`par_colored_blocks`](crate::exec::par_colored_blocks) /
    /// [`simt_colored`](crate::exec::simt_colored) entry points, which
    /// translate `n_threads == 0` to [`default_threads`] themselves (at
    /// the pool API level `0` always means the whole team).
    ///
    /// A request for more threads than the team holds is clamped to the
    /// team size (see [`run_round`](ExecPool::run_round)) — for an
    /// *exact* oversubscribed count (the paper's 2–4 threads/core Phi
    /// configurations), create a dedicated [`ExecPool::new`]`(n)`,
    /// which always spawns exactly `n - 1` workers.
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecPool::new(default_threads().max(4)))
    }

    /// Run `body(i)` for every `i in 0..n_items` across at most
    /// `max_threads` team members (`0` = whole team), pulling indices in
    /// chunks of `chunk`. `max_threads` above the team size is clamped
    /// to the team — a pool never runs more concurrent bodies than it
    /// has members. Returns when every item has executed; any panic
    /// inside the round is re-raised here after the round quiesces.
    pub fn run_round(
        &self,
        n_items: usize,
        max_threads: usize,
        chunk: usize,
        body: &(dyn Fn(usize) + Sync),
    ) {
        let round_idx = self.rounds.fetch_add(1, Ordering::Relaxed);
        let injected_body;
        let body: &(dyn Fn(usize) + Sync) = if self.fault_armed.load(Ordering::Acquire)
            && self
                .fault
                .lock()
                .as_ref()
                .is_some_and(|inj| inj.on_round(round_idx))
        {
            injected_body = move |_i: usize| {
                panic!("injected fault: kernel body panic in pool round {round_idx}")
            };
            &injected_body
        } else {
            body
        };
        let cap = self.cap(max_threads);
        // Inline paths: trivial rounds, single-thread caps, and nested
        // dispatch from inside a round body (which would deadlock on the
        // dispatch lock while the outer round waits for this thread).
        if cap <= 1 || n_items <= 1 || self.workers.is_empty() || IN_ROUND.with(Cell::get) {
            for i in 0..n_items {
                body(i);
            }
            return;
        }
        let _own_team = self.dispatch.lock();
        let round = Round {
            cursor: AtomicUsize::new(0),
            n_items,
            chunk: chunk.max(1),
            // SAFETY (lifetime erasure): the closure is only reachable
            // through the claim register, which this function drains
            // before returning.
            body: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync),
                >(body as *const _)
            },
        };
        let shared = &*self.shared;
        shared.max_entrants.store(cap - 1, Ordering::Relaxed);
        shared
            .round
            .store(&round as *const Round as *mut Round, Ordering::Relaxed);
        // Open the claim register. `Release` publishes the two stores
        // above to any worker whose claim CAS reads this value.
        shared.round_state.store(0, Ordering::Release);
        {
            let mut published = shared.wake.lock();
            let next = shared.epoch.load(Ordering::Relaxed) + 1;
            shared.epoch.store(next, Ordering::Release);
            *published = next;
            // `parked` only changes under `wake`, so this read cannot
            // race a worker going to sleep: skip the syscall when every
            // worker is still spinning (the hot back-to-back case).
            if shared.parked.load(Ordering::Relaxed) > 0 {
                shared.cv.notify_all();
            }
        }

        // The dispatcher is a team member too.
        IN_ROUND.with(|f| f.set(true));
        let result = catch_unwind(AssertUnwindSafe(|| round.pull()));
        IN_ROUND.with(|f| f.set(false));
        if result.is_err() {
            round.drain();
        }

        // Close the round and quiesce: no worker may still hold the
        // round pointer when the stack frame (or the caller's borrowed
        // data) goes away.
        shared.round_state.fetch_or(CLOSED, Ordering::AcqRel);
        let mut spins = 0u32;
        while shared.round_state.load(Ordering::Acquire) != CLOSED {
            spins += 1;
            if spins < SPIN_BEFORE_PARK {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        shared.round.store(std::ptr::null_mut(), Ordering::Relaxed);

        if let Err(payload) = result {
            shared.panicked.store(false, Ordering::Relaxed);
            shared.panic_note.lock().take();
            std::panic::resume_unwind(payload);
        }
        if shared.panicked.swap(false, Ordering::Relaxed) {
            match shared.panic_note.lock().take() {
                Some(note) => {
                    panic!("ExecPool: a worker panicked during a color round: {note}")
                }
                None => panic!("ExecPool: a worker panicked during a color round"),
            }
        }
    }

    /// [`run_round`](ExecPool::run_round) with the escaped panic
    /// returned as a typed [`PoolPanic`] instead of unwinding. The
    /// round still quiesces fully before this returns (drained cursor,
    /// released claims), so the pool remains usable — the property the
    /// service workers rely on to fail one job and keep serving.
    pub fn try_run_round(
        &self,
        n_items: usize,
        max_threads: usize,
        chunk: usize,
        body: &(dyn Fn(usize) + Sync),
    ) -> Result<(), PoolPanic> {
        catch_unwind(AssertUnwindSafe(|| {
            self.run_round(n_items, max_threads, chunk, body)
        }))
        .map_err(|payload| PoolPanic {
            message: panic_payload_msg(payload.as_ref()),
        })
    }

    /// Colored-block execution on this pool (the OpenMP backend's shape):
    /// for each block color, the blocks of that color are distributed
    /// over at most `max_threads` team members (`0` = whole team);
    /// `body(block_id, range)` runs with exclusive access to everything
    /// its block writes (the plan's coloring invariant).
    pub fn colored_blocks(
        &self,
        plan: &TwoLevelPlan,
        max_threads: usize,
        body: impl Fn(usize, Range<u32>) + Sync,
    ) {
        self.colored_block_lists(plan, &plan.blocks_by_color, max_threads, &body);
    }

    /// As [`colored_blocks`](ExecPool::colored_blocks) over an explicit
    /// per-color block-id list instead of the plan's full
    /// `blocks_by_color` — the primitive behind the distributed overlap
    /// schedule, which dispatches a plan's *interior* blocks while halo
    /// messages are in flight and its *boundary* blocks after the
    /// exchange completes. `lists[c]` must be a subset of
    /// `plan.blocks_by_color[c]` (same color ⇒ same non-conflict
    /// guarantee); empty colors dispatch no round.
    pub fn colored_block_lists(
        &self,
        plan: &TwoLevelPlan,
        lists: &[Vec<u32>],
        max_threads: usize,
        body: impl Fn(usize, Range<u32>) + Sync,
    ) {
        for blocks in lists {
            if blocks.is_empty() {
                continue;
            }
            let run_block = |i: usize| {
                let b = blocks[i] as usize;
                body(b, plan.blocks[b].clone());
            };
            // Chunked pulls: a few blocks per fetch keeps the cursor off
            // the contention critical path while still load balancing
            // (blocks of one color have near-identical cost). Sized by
            // the round's effective thread cap, not the full team.
            let chunk = (blocks.len() / (self.cap(max_threads).max(1) * 8)).clamp(1, 16);
            self.run_round(blocks.len(), max_threads, chunk, &run_block);
        }
    }

    /// SIMT (OpenCL-on-CPU) emulation on this pool: work-groups = plan
    /// blocks; inside a group, work-items advance in lock-step chunks of
    /// `simt_width`, buffering private increments and applying them
    /// serialized by element color (paper Fig. 3a). Increments are
    /// bucketed by element color during the compute phase, so the apply
    /// phase visits each item once instead of rescanning the chunk per
    /// color. `sched_overhead_ns` busy-waits per work-group dispatch,
    /// modelling the OpenCL runtime's work-group scheduling cost (§4.1).
    pub fn simt_colored<I: Send>(
        &self,
        plan: &TwoLevelPlan,
        max_threads: usize,
        simt_width: usize,
        sched_overhead_ns: u64,
        compute: impl Fn(usize) -> I + Sync,
        apply: impl Fn(usize, &I) + Sync,
    ) {
        assert!(simt_width >= 1);
        let body = |block_id: usize, range: Range<u32>| {
            simt_block_sweep(
                plan,
                block_id,
                range,
                simt_width,
                sched_overhead_ns,
                &compute,
                &apply,
            );
        };
        self.colored_blocks(plan, max_threads, body);
    }
}

/// Busy-wait for `ns` nanoseconds (0 = no-op) — the scheduling-overhead
/// model shared by every SIMT-emulation dispatch site, so fused and
/// unfused executors charge identical per-work-group costs.
pub fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let t0 = std::time::Instant::now();
    while (t0.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

/// One work-group of the SIMT emulation: the work-items of `range`
/// advance in lock-step chunks of `simt_width`, buffering their private
/// increments and applying them serialized by element color (paper
/// Fig. 3a). The shared inner loop of [`ExecPool::simt_colored`] and of
/// the fused SIMT-shape executors in `ump-lazy` — callers supply the
/// block's plan (for element colors) and the two kernel phases.
///
/// `sched_overhead_ns` busy-waits once per call, modelling the OpenCL
/// runtime's work-group scheduling cost; pass 0 for none.
pub fn simt_block_sweep<I>(
    plan: &TwoLevelPlan,
    block_id: usize,
    range: Range<u32>,
    simt_width: usize,
    sched_overhead_ns: u64,
    compute: &(impl Fn(usize) -> I + ?Sized),
    apply: &(impl Fn(usize, &I) + ?Sized),
) {
    assert!(simt_width >= 1);
    spin_ns(sched_overhead_ns);
    let n_colors = plan.n_elem_colors[block_id];
    // per-color buckets of (item, increment), reused across the
    // block's chunks; within a bucket items stay in ascending
    // order, so the apply order matches the per-color rescan the
    // paper's Fig. 3a loop produces. Pre-sized so the lock-step
    // loop never reallocates (a chunk holds ≤ simt_width items
    // total, across all buckets).
    let mut buckets: Vec<Vec<(usize, I)>> = (0..n_colors)
        .map(|_| Vec::with_capacity(simt_width))
        .collect();
    let mut chunk_start = range.start as usize;
    let end = range.end as usize;
    while chunk_start < end {
        let chunk_end = (chunk_start + simt_width).min(end);
        // lock-step compute phase: all work-items of the chunk
        for e in chunk_start..chunk_end {
            buckets[plan.elem_colors[e] as usize].push((e, compute(e)));
        }
        // colored increment phase, one bucket per color
        for bucket in &mut buckets {
            for (e, inc) in bucket.iter() {
                apply(*e, inc);
            }
            bucket.clear();
        }
        chunk_start = chunk_end;
    }
}

/// One work-group of the vectorized (fused-SIMD) execution shape: the
/// lane-aware sibling of [`simt_block_sweep`]. Decomposes a colored
/// block's element range into the paper's three-sweep structure (§4.2) —
/// a scalar pre-sweep up to the next `lanes`-aligned index (alignment
/// relative to element 0, where direct data is vector-aligned), a vector
/// body of whole `lanes`-wide chunks, and a scalar post-sweep for the
/// leftovers — and drives the two bodies:
///
/// * `scalar(e)` for every pre-/post-sweep element,
/// * `vector(chunk_start)` once per aligned chunk, covering
///   `chunk_start..chunk_start + lanes`.
///
/// The decomposition matches `ump_simd::split_sweep(range, lanes, 0)`
/// exactly (property-tested in `tests/simd_sweep_properties.rs`): every
/// element of `range` is covered exactly once, chunks never cross the
/// block boundary, and a block executes on one thread — so serialized
/// lane scatters inside `vector` are race-free under the same coloring
/// invariant every other engine relies on.
pub fn simd_block_sweep(
    range: Range<u32>,
    lanes: usize,
    scalar: &(impl Fn(usize) + ?Sized),
    vector: &(impl Fn(usize) + ?Sized),
) {
    assert!(lanes >= 1, "lanes must be >= 1");
    let (start, end) = (range.start as usize, range.end as usize);
    let misalign = start % lanes;
    let body_start = if misalign == 0 {
        start
    } else {
        (start + lanes - misalign).min(end)
    };
    let body_end = body_start + (end - body_start) / lanes * lanes;
    for e in start..body_start {
        scalar(e);
    }
    let mut chunk = body_start;
    while chunk < body_end {
        vector(chunk);
        chunk += lanes;
    }
    for e in body_end..end {
        scalar(e);
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        {
            let mut published = self.shared.wake.lock();
            let next = self.shared.epoch.load(Ordering::Relaxed) + 1;
            self.shared.epoch.store(next, Ordering::Release);
            *published = next;
            self.shared.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        // spin-then-park until the epoch moves past what we've handled
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < SPIN_BEFORE_PARK {
                std::hint::spin_loop();
            } else {
                let mut published = shared.wake.lock();
                while *published == seen && !shared.shutdown.load(Ordering::Relaxed) {
                    shared.parked.fetch_add(1, Ordering::Relaxed);
                    shared.cv.wait(&mut published);
                    shared.parked.fetch_sub(1, Ordering::Relaxed);
                }
                seen = *published;
                break;
            }
        }
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        // Claim entry into whatever round is currently open. The CAS is
        // the only licence to dereference the round pointer; a closed
        // round (the dispatcher already finished it) is simply skipped.
        loop {
            let state = shared.round_state.load(Ordering::Acquire);
            if state & CLOSED != 0 || state >= shared.max_entrants.load(Ordering::Relaxed) {
                break;
            }
            if shared
                .round_state
                .compare_exchange_weak(state, state + 1, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            // SAFETY: the claim above keeps the dispatcher from
            // retiring the round until we release it below.
            let round = unsafe { &*shared.round.load(Ordering::Relaxed) };
            IN_ROUND.with(|f| f.set(true));
            let result = catch_unwind(AssertUnwindSafe(|| round.pull()));
            IN_ROUND.with(|f| f.set(false));
            if let Err(payload) = &result {
                let mut note = shared.panic_note.lock();
                if note.is_none() {
                    *note = Some(panic_payload_msg(payload.as_ref()));
                }
                drop(note);
                shared.panicked.store(true, Ordering::Relaxed);
                round.drain();
            }
            shared.round_state.fetch_sub(1, Ordering::Release);
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_color::PlanInputs;
    use ump_mesh::generators::quad_channel;

    #[test]
    fn run_round_visits_every_item_once() {
        let pool = ExecPool::new(4);
        for n_items in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicUsize> = (0..n_items).map(|_| AtomicUsize::new(0)).collect();
            pool.run_round(n_items, 0, 3, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "n_items={n_items}"
            );
        }
    }

    #[test]
    fn many_back_to_back_rounds_on_one_pool() {
        let pool = ExecPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run_round(17, 0, 2, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500 * 17);
    }

    #[test]
    fn max_threads_cap_is_respected_and_correct() {
        let pool = ExecPool::new(8);
        for cap in [1usize, 2, 3, 8, 99] {
            let counter = AtomicUsize::new(0);
            pool.run_round(100, cap, 4, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 100, "cap={cap}");
        }
    }

    #[test]
    fn colored_blocks_matches_scoped_reference() {
        let m = quad_channel(16, 12).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 32);
        let plan = TwoLevelPlan::build(&inputs);

        let mut reference = vec![0.0f64; m.n_cells()];
        for e in 0..m.n_edges() {
            let c = m.edge2cell.row(e);
            reference[c[0] as usize] += 1.0;
            reference[c[1] as usize] += 1.0;
        }

        let pool = ExecPool::new(4);
        let mut out = vec![0.0f64; m.n_cells()];
        let shared = crate::exec::SharedDat::new(&mut out);
        pool.colored_blocks(&plan, 0, |_b, range| {
            for e in range {
                let c = m.edge2cell.row(e as usize);
                unsafe {
                    shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                    shared.slice_mut(c[1] as usize, 1)[0] += 1.0;
                }
            }
        });
        assert_eq!(out, reference);
    }

    /// Splitting a plan's blocks into two complementary per-color lists
    /// and dispatching them back to back (the interior/boundary overlap
    /// schedule) must cover every block exactly once and produce the
    /// same result as the single dispatch — and two serialized passes
    /// never co-schedule conflicting blocks, whatever the split.
    #[test]
    fn colored_block_lists_split_covers_like_single_dispatch() {
        let m = quad_channel(16, 12).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 32);
        let plan = TwoLevelPlan::build(&inputs);

        // arbitrary split: even block ids "interior", odd "boundary"
        let mut first: Vec<Vec<u32>> = vec![Vec::new(); plan.blocks_by_color.len()];
        let mut second = first.clone();
        for (c, blocks) in plan.blocks_by_color.iter().enumerate() {
            for &b in blocks {
                let dst = if b % 2 == 0 { &mut first } else { &mut second };
                dst[c].push(b);
            }
        }

        let mut reference = vec![0.0f64; m.n_cells()];
        for e in 0..m.n_edges() {
            let c = m.edge2cell.row(e);
            reference[c[0] as usize] += 1.0;
            reference[c[1] as usize] += 1.0;
        }

        let pool = ExecPool::new(4);
        let r0 = pool.dispatch_rounds();
        let mut out = vec![0.0f64; m.n_cells()];
        let shared = crate::exec::SharedDat::new(&mut out);
        let body = |_b: usize, range: Range<u32>| {
            for e in range {
                let c = m.edge2cell.row(e as usize);
                unsafe {
                    shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                    shared.slice_mut(c[1] as usize, 1)[0] += 1.0;
                }
            }
        };
        pool.colored_block_lists(&plan, &first, 0, body);
        pool.colored_block_lists(&plan, &second, 0, body);
        assert_eq!(out, reference);
        // rounds dispatched = non-empty colors of each pass
        let nonempty = |lists: &[Vec<u32>]| lists.iter().filter(|l| !l.is_empty()).count() as u64;
        assert_eq!(
            pool.dispatch_rounds() - r0,
            nonempty(&first) + nonempty(&second)
        );
    }

    #[test]
    fn pool_is_reusable_across_different_plans() {
        let pool = ExecPool::new(4);
        let m = quad_channel(12, 9).mesh;
        let edge_inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let edge_plan = TwoLevelPlan::build(&edge_inputs);
        let cell_inputs = PlanInputs::new(m.n_cells(), vec![], 16);
        let cell_plan = TwoLevelPlan::build(&cell_inputs);

        for _ in 0..50 {
            let edges = AtomicUsize::new(0);
            pool.colored_blocks(&edge_plan, 0, |_b, range| {
                edges.fetch_add(range.len(), Ordering::Relaxed);
            });
            assert_eq!(edges.load(Ordering::Relaxed), m.n_edges());
            let cells = AtomicUsize::new(0);
            pool.colored_blocks(&cell_plan, 0, |_b, range| {
                cells.fetch_add(range.len(), Ordering::Relaxed);
            });
            assert_eq!(cells.load(Ordering::Relaxed), m.n_cells());
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ExecPool::new(1);
        assert!(pool.workers.is_empty());
        let counter = AtomicUsize::new(0);
        pool.run_round(10, 0, 1, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_dispatch_runs_inline_instead_of_deadlocking() {
        let pool = ExecPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.run_round(8, 0, 1, &|_| {
            pool.run_round(5, 0, 1, &|_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn dispatcher_panic_propagates_and_pool_survives() {
        let pool = ExecPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_round(64, 0, 1, &|i| {
                if i == 33 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // the team must still be fully functional
        let counter = AtomicUsize::new(0);
        pool.run_round(100, 0, 4, &|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_dispatchers_serialize_safely() {
        let pool = ExecPool::new(4);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        pool.run_round(20, 0, 2, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 20);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = ExecPool::global() as *const ExecPool;
        let b = ExecPool::global() as *const ExecPool;
        assert_eq!(a, b);
        assert!(ExecPool::global().n_threads() >= 1);
    }

    #[test]
    fn dispatch_rounds_counts_every_round() {
        let pool = ExecPool::new(2);
        let r0 = pool.dispatch_rounds();
        pool.run_round(10, 0, 1, &|_| {});
        pool.run_round(1, 0, 1, &|_| {}); // inline path still counts
        assert_eq!(pool.dispatch_rounds() - r0, 2);

        let m = quad_channel(8, 8).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let plan = TwoLevelPlan::build(&inputs);
        let active = plan
            .blocks_by_color
            .iter()
            .filter(|b| !b.is_empty())
            .count() as u64;
        let r1 = pool.dispatch_rounds();
        pool.colored_blocks(&plan, 0, |_b, _r| {});
        assert_eq!(pool.dispatch_rounds() - r1, active);
    }

    #[test]
    fn simd_block_sweep_tiles_exactly_once() {
        use std::cell::RefCell;
        for lanes in [1usize, 2, 4, 8] {
            for start in 0..10u32 {
                for len in 0..30u32 {
                    let range = start..start + len;
                    let visits = RefCell::new(vec![0usize; (start + len) as usize]);
                    simd_block_sweep(
                        range.clone(),
                        lanes,
                        &|e| visits.borrow_mut()[e] += 1,
                        &|cs| {
                            // vector chunks are lane-aligned relative to 0
                            // and never cross the range end
                            assert_eq!(cs % lanes, 0, "lanes={lanes} cs={cs}");
                            assert!(cs + lanes <= (start + len) as usize);
                            for e in cs..cs + lanes {
                                visits.borrow_mut()[e] += 1;
                            }
                        },
                    );
                    let v = visits.borrow();
                    for e in 0..(start + len) as usize {
                        let expect = usize::from(e >= start as usize);
                        assert_eq!(v[e], expect, "lanes={lanes} range={range:?} e={e}");
                    }
                }
            }
        }
    }

    #[test]
    fn simt_bucketed_increments_match_reference() {
        let m = quad_channel(10, 10).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let plan = TwoLevelPlan::build(&inputs);

        let mut reference = vec![0.0f64; m.n_cells()];
        for e in 0..m.n_edges() {
            let c = m.edge2cell.row(e);
            reference[c[0] as usize] += (e % 7) as f64;
            reference[c[1] as usize] -= 1.0;
        }

        let pool = ExecPool::new(2);
        let mut out = vec![0.0f64; m.n_cells()];
        let shared = crate::exec::SharedDat::new(&mut out);
        let e2c = &m.edge2cell;
        pool.simt_colored(
            &plan,
            0,
            8,
            0,
            |e| {
                let c = e2c.row(e);
                [(c[0], (e % 7) as f64), (c[1], -1.0)]
            },
            |_e, inc| {
                for &(target, v) in inc {
                    unsafe {
                        shared.slice_mut(target as usize, 1)[0] += v;
                    }
                }
            },
        );
        assert_eq!(out, reference);
    }
}
