//! # ump-core — the OP2-style abstraction layer
//!
//! OP2 (paper §3) describes unstructured-mesh computation as parallel
//! loops over sets with access-annotated arguments, and compiles each
//! loop to backend-specific stub code. The Rust equivalent here:
//!
//! * [`dat::OpDat`] — typed data on a set with an arity (`op_dat`),
//! * [`arg::ArgInfo`]/[`arg::Access`] — the access descriptors of
//!   `op_arg_dat(dat, idx, map, dim, "typ", access)`,
//! * [`profile::LoopProfile`] — per-loop metadata from which the
//!   Table II/III transfer & FLOP characteristics are *derived* rather
//!   than hard-coded,
//! * [`plan::PlanCache`] — `op_plan_get`: coloring plans computed once per
//!   (loop shape, block size, scheme) and reused,
//! * [`exec`] — the execution engines shared by every "generated" loop
//!   driver: sequential, colored-blocks threaded (the OpenMP analogue),
//!   lock-step SIMT emulation (the OpenCL analogue), plus the raw-pointer
//!   wrappers that let colored concurrency mutate dats race-free,
//! * [`pool`] — the persistent worker-pool runtime ([`pool::ExecPool`])
//!   behind both parallel engines: a fixed team of parked threads
//!   dispatched per color round, mirroring the persistent OpenMP
//!   `parallel` region the paper's threading measurements assume,
//! * [`dist`] — mesh distribution for the message-passing backend:
//!   owner-compute cells, redundantly executed boundary edges (OP2's
//!   import-exec halo), ghost-cell exchange plans,
//! * [`instrument`] — the per-loop time/bytes/FLOP registry behind every
//!   reproduced table,
//! * [`backend`] — the unified backend registry ([`Backend`]): every
//!   execution shape as one enumerable, parseable surface, behind which
//!   the applications expose a single `step_on` dispatcher.
//!
//! Per-kernel loop *drivers* (what OP2's code generator emits, Figs
//! 2b/3a/3b) live in `ump-apps`, assembled from these building blocks.

#![deny(missing_docs)]

pub mod arg;
pub mod backend;
pub mod dat;
pub mod dist;
pub mod exec;
pub mod instrument;
pub mod plan;
pub mod pool;
pub mod profile;

pub use arg::{Access, ArgInfo, Indirection};
pub use backend::Backend;
pub use dat::{OpDat, DAT_SNAPSHOT_MAGIC, DAT_SNAPSHOT_VERSION};
pub use dist::{assemble_owned, distribute, extract_rows, LocalMesh};
pub use exec::{
    apply_edge_inc, global_pool_cap, par_colored_blocks, seq_loop, simt_colored, EdgeInc,
    SharedDat, SharedMut,
};
pub use instrument::{FusionStats, LoopStats, Recorder};
pub use plan::{PlanCache, Scheme};
pub use pool::{simd_block_sweep, simt_block_sweep, ExecPool, PoolPanic};
pub use profile::LoopProfile;
pub use ump_simd::{DatView, Layout};
