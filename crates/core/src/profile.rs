//! Per-loop characteristics derived from the access descriptors — the
//! machinery behind Tables II and III.
//!
//! The paper counts, for each kernel, the *useful* floating-point words
//! moved per set element (ignoring mapping tables and caching) split into
//! direct/indirect reads/writes, plus useful FLOPs (transcendentals
//! counted as one). `OP_INC`/`OP_RW` arguments count on both sides. These
//! counts come straight out of the `op_par_loop` signature; we reproduce
//! them from [`ArgInfo`] lists rather than hard-coding the table.

use crate::arg::{ArgInfo, Indirection};

/// Static profile of a parallel loop.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopProfile {
    /// Kernel name (`res_calc`, …).
    pub name: String,
    /// Name of the iteration set (`edges`, `cells`, …).
    pub set: String,
    /// The loop's arguments.
    pub args: Vec<ArgInfo>,
    /// Useful floating-point operations per element (paper's counting:
    /// transcendentals = 1).
    pub flops_per_elem: f64,
    /// Of which transcendental (sqrt etc.) — they dominate scalar cost
    /// (§6.2: 44-cycle sqrt).
    pub transcendentals_per_elem: f64,
    /// One-line description (Table II's "Description" column).
    pub description: String,
}

/// Per-element word-transfer counts (Table II/III columns).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferCounts {
    /// Directly-accessed words read.
    pub direct_read: usize,
    /// Directly-accessed words written.
    pub direct_write: usize,
    /// Indirectly-accessed words read.
    pub indirect_read: usize,
    /// Indirectly-accessed words written.
    pub indirect_write: usize,
}

impl TransferCounts {
    /// Total words moved per element.
    pub fn total_words(self) -> usize {
        self.direct_read + self.direct_write + self.indirect_read + self.indirect_write
    }
}

impl LoopProfile {
    /// Derive the per-element transfer counts from the argument list.
    pub fn transfers(&self) -> TransferCounts {
        let mut t = TransferCounts::default();
        for a in &self.args {
            match a.ind {
                Indirection::Direct => {
                    if a.access.reads() {
                        t.direct_read += a.dim;
                    }
                    if a.access.writes() {
                        t.direct_write += a.dim;
                    }
                }
                Indirection::Indirect { .. } => {
                    if a.access.reads() {
                        t.indirect_read += a.dim;
                    }
                    if a.access.writes() {
                        t.indirect_write += a.dim;
                    }
                }
                // global reduction scalars are asymptotically free
                Indirection::Global => {}
            }
        }
        t
    }

    /// Useful bytes per element for a word size.
    pub fn bytes_per_elem(&self, word_bytes: usize) -> f64 {
        (self.transfers().total_words() * word_bytes) as f64
    }

    /// FLOP-per-byte ratio at a word size (Table II/III's last column; the
    /// quantity compared against machine balance in §6.1).
    pub fn flop_per_byte(&self, word_bytes: usize) -> f64 {
        self.flops_per_elem / self.bytes_per_elem(word_bytes)
    }

    /// Does this loop write indirectly (and hence need coloring)?
    pub fn needs_coloring(&self) -> bool {
        self.args
            .iter()
            .any(|a| a.is_indirect() && a.access.writes())
    }

    /// Does the loop access anything indirectly (gathers)?
    pub fn is_indirect(&self) -> bool {
        self.args.iter().any(ArgInfo::is_indirect)
    }

    /// Does the loop carry a global reduction?
    pub fn has_reduction(&self) -> bool {
        self.args.iter().any(|a| a.ind == Indirection::Global)
    }

    /// Names of maps written through (the plan-cache key contribution).
    pub fn written_maps(&self) -> Vec<String> {
        let mut maps: Vec<String> = self
            .args
            .iter()
            .filter(|a| a.access.writes())
            .filter_map(|a| match &a.ind {
                Indirection::Indirect { map, .. } => Some(map.clone()),
                _ => None,
            })
            .collect();
        maps.sort();
        maps.dedup();
        maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arg::{Access, ArgInfo};

    /// The paper's res_calc signature (Fig. 2a + Table II row).
    fn res_calc_profile() -> LoopProfile {
        LoopProfile {
            name: "res_calc".into(),
            set: "edges".into(),
            args: vec![
                ArgInfo::indirect("x", 2, Access::Read, "edge2node", 0),
                ArgInfo::indirect("x", 2, Access::Read, "edge2node", 1),
                ArgInfo::indirect("q", 4, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("q", 4, Access::Read, "edge2cell", 1),
                ArgInfo::indirect("adt", 1, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("adt", 1, Access::Read, "edge2cell", 1),
                ArgInfo::indirect("res", 4, Access::Inc, "edge2cell", 0),
                ArgInfo::indirect("res", 4, Access::Inc, "edge2cell", 1),
            ],
            flops_per_elem: 73.0,
            transcendentals_per_elem: 0.0,
            description: "Gather, colored scatter".into(),
        }
    }

    #[test]
    fn res_calc_matches_paper_table_ii() {
        let p = res_calc_profile();
        let t = p.transfers();
        assert_eq!(t.direct_read, 0);
        assert_eq!(t.direct_write, 0);
        // paper: 22 indirect reads = x(4) + q(8) + adt(2) + res-INC(8)
        assert_eq!(t.indirect_read, 22);
        assert_eq!(t.indirect_write, 8);
        // paper: 0.3 DP / 0.6 SP
        assert!((p.flop_per_byte(8) - 0.3).abs() < 0.01);
        assert!((p.flop_per_byte(4) - 0.6).abs() < 0.02);
        assert!(p.needs_coloring());
        assert!(p.is_indirect());
        assert!(!p.has_reduction());
        assert_eq!(p.written_maps(), vec!["edge2cell".to_string()]);
    }

    #[test]
    fn adt_calc_matches_paper_table_ii() {
        // adt_calc: reads x on 4 nodes (dim 2), reads q direct (4),
        // writes adt direct (1); 64 flops
        let p = LoopProfile {
            name: "adt_calc".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 0),
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 1),
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 2),
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 3),
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("adt", 1, Access::Write),
            ],
            flops_per_elem: 64.0,
            transcendentals_per_elem: 4.0,
            description: "Gather, direct write".into(),
        };
        let t = p.transfers();
        assert_eq!(
            (
                t.direct_read,
                t.direct_write,
                t.indirect_read,
                t.indirect_write
            ),
            (4, 1, 8, 0)
        );
        // paper: 0.57 DP, 1.14 SP (printed rounded to 2 digits)
        assert!((p.flop_per_byte(8) - 0.615).abs() < 0.07);
        assert!(!p.needs_coloring());
        assert!(p.is_indirect());
    }

    #[test]
    fn update_matches_paper_table_ii() {
        let p = LoopProfile {
            name: "update".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("qold", 4, Access::Read),
                ArgInfo::direct("q", 4, Access::Write),
                ArgInfo::direct("res", 4, Access::Rw),
                ArgInfo::direct("adt", 1, Access::Read),
                ArgInfo::global("rms", 1, Access::Inc),
            ],
            flops_per_elem: 17.0,
            transcendentals_per_elem: 0.0,
            description: "Direct, reduction".into(),
        };
        let t = p.transfers();
        assert_eq!((t.direct_read, t.direct_write), (9, 8));
        assert!(p.has_reduction());
        assert!(!p.needs_coloring());
        assert!(!p.is_indirect());
        // paper: 0.1 DP
        assert!((p.flop_per_byte(8) - 0.125).abs() < 0.03);
    }

    #[test]
    fn direct_copy_kernel() {
        let p = LoopProfile {
            name: "save_soln".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("qold", 4, Access::Write),
            ],
            flops_per_elem: 4.0,
            transcendentals_per_elem: 0.0,
            description: "Direct copy".into(),
        };
        let t = p.transfers();
        assert_eq!(t.total_words(), 8);
        assert!(p.written_maps().is_empty());
    }
}
