//! Execution engines shared by all generated loop drivers.
//!
//! Three engines mirror the paper's shared-memory backends:
//!
//! * [`seq_loop`] — the scalar reference (also the per-rank inner loop of
//!   the message-passing backend),
//! * [`par_colored_blocks`] — the OpenMP analogue: blocks of one color
//!   dispatched to a *persistent* thread pool, no synchronization needed
//!   inside a color round (paper §3),
//! * [`simt_colored`] — the OpenCL-on-CPU analogue: each block is a
//!   work-group executed by one thread; work-items advance in lock-step
//!   chunks of the SIMT width, buffering their indirect increments in
//!   private storage and applying them serialized by element color
//!   (paper Fig. 3a, with the work-group barrier removed exactly as §4.1
//!   describes for sequential work-group execution).
//!
//! Both parallel engines are thin wrappers over the lazily-created
//! process-wide [`ExecPool`] — the persistent
//! worker team the paper's OpenMP `parallel` region corresponds to.
//! Drivers that want an explicitly owned team (per-rank pools in the
//! hybrid backends, benchmarks comparing team sizes) call the
//! [`ExecPool`] methods directly.
//!
//! Mutation from multiple threads is funnelled through [`SharedDat`], a
//! raw-pointer wrapper whose safety contract is the coloring invariant:
//! *within one color round no two concurrent bodies touch the same
//! element*. Plans are validated (tests + `debug_assert`) to uphold it.

use std::marker::PhantomData;
use std::ops::Range;

use ump_color::TwoLevelPlan;

use crate::pool::ExecPool;

/// A shared mutable view of a dat's storage for colored concurrency.
///
/// # Safety contract
/// Callers may only touch element ranges that the active plan guarantees
/// conflict-free for the current color round. All constructors are safe;
/// the access methods are `unsafe` to mark that contract.
pub struct SharedDat<'a, R> {
    ptr: *mut R,
    len: usize,
    _marker: PhantomData<&'a mut [R]>,
}

unsafe impl<R: Send> Send for SharedDat<'_, R> {}
unsafe impl<R: Send> Sync for SharedDat<'_, R> {}

impl<'a, R> SharedDat<'a, R> {
    /// Wrap a mutable slice.
    pub fn new(data: &'a mut [R]) -> SharedDat<'a, R> {
        SharedDat {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying storage.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable subslice `[start, start+len)`.
    ///
    /// # Safety
    /// The range must be disjoint from every range other threads access
    /// during the current color round (the coloring invariant).
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [R] {
        debug_assert!(start + len <= self.len, "SharedDat range out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), len) }
    }

    /// Shared view of the whole storage.
    ///
    /// # Safety
    /// No thread may be mutating the elements read.
    #[inline(always)]
    pub unsafe fn as_slice(&self) -> &[R] {
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Shared subslice `[start, start+len)` — the read-side counterpart of
    /// [`slice_mut`](SharedDat::slice_mut), for loops that *read* a dat
    /// other loops of the same colored round write.
    ///
    /// # Safety
    /// No concurrent writer may overlap the range during the current
    /// color round (the coloring invariant again: for per-element data
    /// this holds whenever the range stays within the caller's own
    /// block).
    #[inline(always)]
    pub unsafe fn slice(&self, start: usize, len: usize) -> &[R] {
        debug_assert!(start + len <= self.len, "SharedDat range out of bounds");
        unsafe { std::slice::from_raw_parts(self.ptr.add(start), len) }
    }
}

/// The private increment record of a two-sided edge kernel: the two
/// target rows and their per-component increments — the `arg_l` buffers
/// of paper Fig. 3a for kernels like Airfoil's `res_calc` and Volna's
/// `space_disc` that increment both cells of an edge.
pub type EdgeInc<R, const D: usize> = (usize, [R; D], usize, [R; D]);

/// Apply a two-sided increment to `dat` (rows of width `D`). The shared
/// colored-increment applier both applications' SIMT drivers and the
/// fused executors use instead of open-coding the two-row add.
///
/// # Safety
/// The caller must hold the coloring invariant for both target rows: no
/// other thread may touch rows `c0`/`c1` during the current color round
/// (two-level plans guarantee it for the increment phase).
#[inline(always)]
pub unsafe fn apply_edge_inc<R, const D: usize>(dat: &SharedDat<'_, R>, inc: &EdgeInc<R, D>)
where
    R: Copy + std::ops::AddAssign,
{
    let (c0, r0, c1, r1) = inc;
    let d0 = unsafe { dat.slice_mut(c0 * D, D) };
    for d in 0..D {
        d0[d] += r0[d];
    }
    let d1 = unsafe { dat.slice_mut(c1 * D, D) };
    for d in 0..D {
        d1[d] += r1[d];
    }
}

/// A shared mutable handle to an arbitrary value for colored concurrency,
/// when a whole structure (not just a flat slice) must be reachable from
/// block bodies. Same safety contract as [`SharedDat`]: bodies may only
/// touch parts of the value that the plan proves conflict-free for the
/// current color round.
pub struct SharedMut<'a, T> {
    ptr: *mut T,
    _marker: PhantomData<&'a mut T>,
}

unsafe impl<T: Send> Send for SharedMut<'_, T> {}
unsafe impl<T: Send> Sync for SharedMut<'_, T> {}

impl<'a, T> SharedMut<'a, T> {
    /// Wrap an exclusive reference.
    pub fn new(value: &'a mut T) -> SharedMut<'a, T> {
        SharedMut {
            ptr: value,
            _marker: PhantomData,
        }
    }

    /// Reborrow mutably.
    ///
    /// # Safety
    /// Concurrent callers must touch disjoint parts of the value, per the
    /// active plan's coloring invariant.
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        unsafe { &mut *self.ptr }
    }
}

/// The scalar reference executor: `body(e)` for every element in order.
#[inline]
pub fn seq_loop(range: Range<usize>, mut body: impl FnMut(usize)) {
    for e in range {
        body(e);
    }
}

/// Number of worker threads to use when the caller passes 0.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolve a legacy `n_threads: usize` argument for dispatch on the
/// [global pool](ExecPool::global): `0` means [`default_threads`]
/// (the pre-pool behaviour), anything else is the explicit count. At
/// the pool API level `0` means "whole team", which for the global
/// pool includes small-host headroom — hence this translation.
pub fn global_pool_cap(n_threads: usize) -> usize {
    if n_threads == 0 {
        default_threads()
    } else {
        n_threads
    }
}

/// Colored-block parallel execution (the OpenMP backend's shape):
/// for each block color, the blocks of that color are distributed over
/// at most `n_threads` members (`0` = all) of the lazily-created
/// process-wide [`ExecPool`]; `body(block_id, range)` runs with
/// exclusive access to everything its block writes.
///
/// This entry point never spawns threads — the global pool's team is
/// created once per process, and `n_threads` beyond that team size is
/// clamped to it. Drivers that need an isolated team or an exact
/// oversubscribed thread count (e.g. one pool per message-passing
/// rank, or the paper's threads-per-core sweeps) should hold their own
/// [`ExecPool`] and call [`ExecPool::colored_blocks`] on it.
pub fn par_colored_blocks(
    plan: &TwoLevelPlan,
    n_threads: usize,
    body: impl Fn(usize, Range<u32>) + Sync,
) {
    ExecPool::global().colored_blocks(plan, global_pool_cap(n_threads), body);
}

/// SIMT (OpenCL-on-CPU) emulation: work-groups = plan blocks, executed
/// over at most `n_threads` members (`0` = all) of the process-wide
/// [`ExecPool`]; inside a group, work-items run in lock-step chunks of
/// `simt_width`. `compute(e)` produces the element's private increment
/// record; `apply(e, inc)` commits it, called serialized in
/// element-color order within each chunk — the "colored increment" of
/// paper Fig. 3a.
///
/// `sched_overhead_ns` busy-waits per work-group dispatch, modelling the
/// OpenCL runtime's work-group scheduling cost the paper measures against
/// static OpenMP loops (§4.1); pass 0 for none.
pub fn simt_colored<I: Send>(
    plan: &TwoLevelPlan,
    n_threads: usize,
    simt_width: usize,
    sched_overhead_ns: u64,
    compute: impl Fn(usize) -> I + Sync,
    apply: impl Fn(usize, &I) + Sync,
) {
    ExecPool::global().simt_colored(
        plan,
        global_pool_cap(n_threads),
        simt_width,
        sched_overhead_ns,
        compute,
        apply,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_color::PlanInputs;
    use ump_mesh::generators::quad_channel;

    #[test]
    fn seq_loop_visits_in_order() {
        let mut seen = Vec::new();
        seq_loop(3..7, |e| seen.push(e));
        assert_eq!(seen, vec![3, 4, 5, 6]);
    }

    #[test]
    fn shared_dat_disjoint_writes() {
        let mut data = vec![0.0f64; 100];
        let shared = SharedDat::new(&mut data);
        std::thread::scope(|s| {
            let sh = &shared;
            s.spawn(move || unsafe {
                sh.slice_mut(0, 50).iter_mut().for_each(|x| *x = 1.0);
            });
            s.spawn(move || unsafe {
                sh.slice_mut(50, 50).iter_mut().for_each(|x| *x = 2.0);
            });
        });
        assert!(data[..50].iter().all(|&x| x == 1.0));
        assert!(data[50..].iter().all(|&x| x == 2.0));
    }

    /// Edge-loop increment executed through the colored engine must equal
    /// the sequential result exactly (same per-target accumulation order
    /// is NOT guaranteed across colors, but targets are hit by one color
    /// at a time and within a block sequentially — with f64 and small
    /// counts the check below is exact for these integer-valued data).
    #[test]
    fn colored_blocks_reproduce_sequential_increment() {
        let m = quad_channel(16, 12).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 32);
        let plan = TwoLevelPlan::build(&inputs);

        let mut reference = vec![0.0f64; m.n_cells()];
        for e in 0..m.n_edges() {
            let c = m.edge2cell.row(e);
            reference[c[0] as usize] += 1.0;
            reference[c[1] as usize] += 1.0;
        }

        let mut out = vec![0.0f64; m.n_cells()];
        let shared = SharedDat::new(&mut out);
        let e2c = &m.edge2cell;
        par_colored_blocks(&plan, 4, |_b, range| {
            for e in range {
                let c = e2c.row(e as usize);
                unsafe {
                    shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                    shared.slice_mut(c[1] as usize, 1)[0] += 1.0;
                }
            }
        });
        assert_eq!(out, reference);
    }

    #[test]
    fn simt_emulation_reproduces_sequential_increment() {
        let m = quad_channel(10, 10).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let plan = TwoLevelPlan::build(&inputs);

        let mut reference = vec![0.0f64; m.n_cells()];
        for e in 0..m.n_edges() {
            let c = m.edge2cell.row(e);
            reference[c[0] as usize] += (e % 7) as f64;
            reference[c[1] as usize] -= 1.0;
        }

        let mut out = vec![0.0f64; m.n_cells()];
        let shared = SharedDat::new(&mut out);
        let e2c = &m.edge2cell;
        simt_colored(
            &plan,
            2,
            8,
            0,
            |e| {
                let c = e2c.row(e);
                [(c[0], (e % 7) as f64), (c[1], -1.0)]
            },
            |_e, inc| {
                for &(target, v) in inc {
                    unsafe {
                        shared.slice_mut(target as usize, 1)[0] += v;
                    }
                }
            },
        );
        assert_eq!(out, reference);
    }

    #[test]
    fn single_thread_path_equals_multithread_path() {
        let m = quad_channel(8, 8).mesh;
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let plan = TwoLevelPlan::build(&inputs);
        let run = |threads: usize| {
            let mut out = vec![0.0f64; m.n_cells()];
            let shared = SharedDat::new(&mut out);
            par_colored_blocks(&plan, threads, |_b, range| {
                for e in range {
                    let c = m.edge2cell.row(e as usize);
                    unsafe {
                        shared.slice_mut(c[0] as usize, 1)[0] += e as f64;
                    }
                }
            });
            out
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn edge_inc_applies_both_rows() {
        let mut data = vec![0.0f64; 12];
        let shared = SharedDat::new(&mut data);
        let inc: EdgeInc<f64, 4> = (0, [1.0, 2.0, 3.0, 4.0], 2, [-1.0, -2.0, -3.0, -4.0]);
        unsafe {
            apply_edge_inc(&shared, &inc);
            apply_edge_inc(&shared, &inc);
        }
        assert_eq!(&data[0..4], &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(&data[4..8], &[0.0; 4]);
        assert_eq!(&data[8..12], &[-2.0, -4.0, -6.0, -8.0]);
    }
}
