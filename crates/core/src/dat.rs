//! Data on sets: the `op_dat`.

use ump_simd::Real;

/// A dataset over a set: `dim` components of type `R` per element,
/// AoS layout (`data[e*dim + c]`) as the paper's CPU backends use.
#[derive(Clone, Debug, PartialEq)]
pub struct OpDat<R: Real> {
    /// Dataset name (diagnostics / table rows).
    pub name: String,
    /// Number of set elements.
    pub set_size: usize,
    /// Components per element.
    pub dim: usize,
    /// The values, `set_size * dim` long.
    pub data: Vec<R>,
}

impl<R: Real> OpDat<R> {
    /// Zero-initialized dat.
    pub fn zeros(name: impl Into<String>, set_size: usize, dim: usize) -> OpDat<R> {
        OpDat {
            name: name.into(),
            set_size,
            dim,
            data: vec![R::ZERO; set_size * dim],
        }
    }

    /// Dat initialized per element by `f(element) -> [components]`.
    pub fn from_fn(
        name: impl Into<String>,
        set_size: usize,
        dim: usize,
        mut f: impl FnMut(usize) -> Vec<R>,
    ) -> OpDat<R> {
        let mut data = Vec::with_capacity(set_size * dim);
        for e in 0..set_size {
            let row = f(e);
            assert_eq!(row.len(), dim, "initializer arity mismatch");
            data.extend_from_slice(&row);
        }
        OpDat {
            name: name.into(),
            set_size,
            dim,
            data,
        }
    }

    /// Wrap existing storage.
    pub fn from_vec(
        name: impl Into<String>,
        set_size: usize,
        dim: usize,
        data: Vec<R>,
    ) -> OpDat<R> {
        assert_eq!(data.len(), set_size * dim, "dat storage size mismatch");
        OpDat {
            name: name.into(),
            set_size,
            dim,
            data,
        }
    }

    /// The component slice of element `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[R] {
        &self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Mutable component slice of element `e`.
    #[inline]
    pub fn row_mut(&mut self, e: usize) -> &mut [R] {
        &mut self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Total bytes of payload (Table IV memory accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * R::BYTES
    }

    /// Maximum |difference| against another dat (backend equivalence
    /// tests).
    pub fn max_abs_diff(&self, other: &OpDat<R>) -> f64 {
        assert_eq!(self.data.len(), other.data.len(), "dat shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when every value is finite — failure-injection guard used
    /// by integration tests after each backend run.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Convert precision (used to set up SP runs from DP initial data).
    pub fn convert<T: Real>(&self) -> OpDat<T> {
        OpDat {
            name: self.name.clone(),
            set_size: self.set_size,
            dim: self.dim,
            data: self.data.iter().map(|&v| T::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let d: OpDat<f64> = OpDat::zeros("q", 10, 4);
        assert_eq!(d.data.len(), 40);
        assert_eq!(d.bytes(), 320);
        assert_eq!(d.row(3), &[0.0; 4]);
    }

    #[test]
    fn from_fn_rows() {
        let d: OpDat<f32> = OpDat::from_fn("x", 3, 2, |e| vec![e as f32, -(e as f32)]);
        assert_eq!(d.row(2), &[2.0, -2.0]);
        assert_eq!(d.bytes(), 24);
    }

    #[test]
    fn row_mut_updates() {
        let mut d: OpDat<f64> = OpDat::zeros("r", 4, 2);
        d.row_mut(1)[0] = 5.0;
        assert_eq!(d.data[2], 5.0);
    }

    #[test]
    fn diff_and_finite() {
        let a: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.0, 2.0]);
        let b: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.all_finite());
        let nan: OpDat<f64> = OpDat::from_vec("n", 1, 1, vec![f64::NAN]);
        assert!(!nan.all_finite());
    }

    #[test]
    fn precision_conversion() {
        let a: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.25, -3.5]);
        let s: OpDat<f32> = a.convert();
        assert_eq!(s.data, vec![1.25f32, -3.5]);
    }

    #[test]
    #[should_panic(expected = "storage size mismatch")]
    fn from_vec_validates_shape() {
        let _: OpDat<f64> = OpDat::from_vec("bad", 3, 2, vec![0.0; 5]);
    }
}
