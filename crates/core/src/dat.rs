//! Data on sets: the `op_dat`, plus its versioned binary snapshot
//! format (the persistence layer under `ump_serve`'s deterministic
//! checkpoint/restart).

use std::io::{self, Read, Write};

use ump_simd::{DatView, Layout, Real};

/// Magic prefix of the [`OpDat::save`] binary format.
pub const DAT_SNAPSHOT_MAGIC: [u8; 4] = *b"UMPD";

/// Current version of the [`OpDat::save`] binary format. Bump on any
/// layout change; [`OpDat::load`] rejects other versions instead of
/// guessing.
pub const DAT_SNAPSHOT_VERSION: u32 = 1;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// A dataset over a set: `dim` components of type `R` per element.
///
/// Storage defaults to AoS (`data[e*dim + c]`) as the paper's CPU
/// backends use; [`OpDat::to_layout`] re-permutes the same values into
/// SoA or AoSoA so `VecR::load/store` on direct data become contiguous
/// vector moves (tentpole of the fused-SIMD fix). Code that indexes
/// `data` directly assumes AoS — use [`OpDat::view`] / [`OpDat::at`]
/// for layout-aware access.
#[derive(Clone, Debug, PartialEq)]
pub struct OpDat<R: Real> {
    /// Dataset name (diagnostics / table rows).
    pub name: String,
    /// Number of set elements.
    pub set_size: usize,
    /// Components per element.
    pub dim: usize,
    /// Storage layout of `data`. Always `set_size * dim` values; only
    /// the index formula changes between layouts.
    pub layout: Layout,
    /// The values, `set_size * dim` long, indexed per `layout`.
    pub data: Vec<R>,
}

impl<R: Real> OpDat<R> {
    /// Zero-initialized dat.
    pub fn zeros(name: impl Into<String>, set_size: usize, dim: usize) -> OpDat<R> {
        OpDat {
            name: name.into(),
            set_size,
            dim,
            layout: Layout::Aos,
            data: vec![R::ZERO; set_size * dim],
        }
    }

    /// Dat initialized per element by `f(element) -> [components]`.
    pub fn from_fn(
        name: impl Into<String>,
        set_size: usize,
        dim: usize,
        mut f: impl FnMut(usize) -> Vec<R>,
    ) -> OpDat<R> {
        let mut data = Vec::with_capacity(set_size * dim);
        for e in 0..set_size {
            let row = f(e);
            assert_eq!(row.len(), dim, "initializer arity mismatch");
            data.extend_from_slice(&row);
        }
        OpDat {
            name: name.into(),
            set_size,
            dim,
            layout: Layout::Aos,
            data,
        }
    }

    /// Wrap existing storage.
    pub fn from_vec(
        name: impl Into<String>,
        set_size: usize,
        dim: usize,
        data: Vec<R>,
    ) -> OpDat<R> {
        assert_eq!(data.len(), set_size * dim, "dat storage size mismatch");
        OpDat {
            name: name.into(),
            set_size,
            dim,
            layout: Layout::Aos,
            data,
        }
    }

    /// The component slice of element `e` (AoS layouts only — rows are
    /// not contiguous under SoA/AoSoA, except for `dim == 1` dats whose
    /// storage is identical under every layout).
    #[inline]
    pub fn row(&self, e: usize) -> &[R] {
        debug_assert!(
            self.layout == Layout::Aos || self.dim == 1,
            "row() on non-AoS dat"
        );
        &self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Mutable component slice of element `e` (AoS layouts only; `dim ==
    /// 1` dats are layout-invariant).
    #[inline]
    pub fn row_mut(&mut self, e: usize) -> &mut [R] {
        debug_assert!(
            self.layout == Layout::Aos || self.dim == 1,
            "row_mut() on non-AoS dat"
        );
        &mut self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Layout-aware index view over the storage (see
    /// [`ump_simd::DatView`] for the vector load/store/gather helpers).
    #[inline]
    pub fn view(&self) -> DatView {
        DatView::new(self.set_size, self.dim, self.layout)
    }

    /// Component `c` of element `e`, valid under every layout.
    #[inline]
    pub fn at(&self, e: usize, c: usize) -> R {
        self.data[self.view().idx(e, c)]
    }

    /// Mutable component `c` of element `e`, valid under every layout.
    #[inline]
    pub fn at_mut(&mut self, e: usize, c: usize) -> &mut R {
        let i = self.view().idx(e, c);
        &mut self.data[i]
    }

    /// Re-permute storage into `to` layout. A pure permutation of the
    /// same values — bit-exact, so conformance and checkpoint tests are
    /// unaffected by layout choice.
    pub fn set_layout(&mut self, to: Layout) {
        if self.layout == to {
            return;
        }
        self.data = self.view().convert(&self.data, to);
        self.layout = to;
    }

    /// Copy of this dat in `to` layout.
    pub fn to_layout(&self, to: Layout) -> OpDat<R> {
        let mut out = self.clone();
        out.set_layout(to);
        out
    }

    /// Total bytes of payload (Table IV memory accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * R::BYTES
    }

    /// Maximum |difference| against another dat (backend equivalence
    /// tests). Compares logical `(element, component)` values, so dats
    /// in different layouts compare correctly.
    pub fn max_abs_diff(&self, other: &OpDat<R>) -> f64 {
        assert_eq!(
            (self.set_size, self.dim),
            (other.set_size, other.dim),
            "dat shape mismatch"
        );
        if self.layout == other.layout {
            return self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
                .fold(0.0, f64::max);
        }
        let (va, vb) = (self.view(), other.view());
        let mut worst = 0.0f64;
        for e in 0..self.set_size {
            for c in 0..self.dim {
                let d =
                    (self.data[va.idx(e, c)].to_f64() - other.data[vb.idx(e, c)].to_f64()).abs();
                worst = worst.max(d);
            }
        }
        worst
    }

    /// `true` when every value is finite — failure-injection guard used
    /// by integration tests after each backend run.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Serialize to a versioned binary snapshot.
    ///
    /// Values are stored as the bit pattern of their exact `f64`
    /// widening: for `f64` dats that *is* the value, and every finite
    /// `f32` widens and narrows back to the identical bits, so a
    /// save/load round trip is bit-exact at either precision — the
    /// property `ump_serve`'s checkpoint/restart golden tests assert.
    ///
    /// ```
    /// use ump_core::OpDat;
    ///
    /// let dat: OpDat<f64> = OpDat::from_vec("q", 2, 2, vec![1.0, -2.5, 0.125, 3.0]);
    /// let mut buf = Vec::new();
    /// dat.save(&mut buf).unwrap();
    /// let back = OpDat::<f64>::load(&mut buf.as_slice()).unwrap();
    /// assert_eq!(dat, back);
    /// ```
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&DAT_SNAPSHOT_MAGIC)?;
        w.write_all(&DAT_SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(R::BYTES as u32).to_le_bytes())?;
        let name = self.name.as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(self.set_size as u64).to_le_bytes())?;
        w.write_all(&(self.dim as u64).to_le_bytes())?;
        // one buffered pass over the payload: 8 bytes per value, always
        // in canonical AoS (element, component) order regardless of the
        // in-memory layout — snapshots are layout-independent
        let v = self.view();
        let mut buf = Vec::with_capacity(self.data.len() * 8);
        for e in 0..self.set_size {
            for c in 0..self.dim {
                buf.extend_from_slice(&self.data[v.idx(e, c)].to_f64().to_bits().to_le_bytes());
            }
        }
        w.write_all(&buf)
    }

    /// Deserialize a snapshot written by [`OpDat::save`]. Fails with
    /// `InvalidData` on a wrong magic, version, or element width (an
    /// `f32` snapshot is not silently widened into an `f64` dat).
    pub fn load<Rd: Read>(r: &mut Rd) -> io::Result<OpDat<R>> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != DAT_SNAPSHOT_MAGIC {
            return Err(bad_data(format!("not an OpDat snapshot: magic {magic:?}")));
        }
        let version = read_u32(r)?;
        if version != DAT_SNAPSHOT_VERSION {
            return Err(bad_data(format!(
                "OpDat snapshot version {version}, expected {DAT_SNAPSHOT_VERSION}"
            )));
        }
        let word = read_u32(r)? as usize;
        if word != R::BYTES {
            return Err(bad_data(format!(
                "OpDat snapshot holds {word}-byte words, loading as {}-byte {}",
                R::BYTES,
                R::NAME
            )));
        }
        let name_len = read_u32(r)? as usize;
        // length fields are untrusted (a corrupt snapshot can hold any
        // bits): bound them so damage surfaces as InvalidData, not as a
        // multi-gigabyte allocation
        if name_len > 4096 {
            return Err(bad_data(format!("dat name length {name_len} implausible")));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|e| bad_data(format!("dat name: {e}")))?;
        let set_size = read_u64(r)? as usize;
        let dim = read_u64(r)? as usize;
        let n = set_size
            .checked_mul(dim)
            .ok_or_else(|| bad_data("dat shape overflow".into()))?;
        // grow-on-demand past a sane pre-size: a truncated stream then
        // fails in read_u64 long before a bogus `n` can exhaust memory
        let mut data = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            data.push(R::from_f64(f64::from_bits(read_u64(r)?)));
        }
        Ok(OpDat {
            name,
            set_size,
            dim,
            layout: Layout::Aos,
            data,
        })
    }

    /// Convert precision (used to set up SP runs from DP initial data).
    pub fn convert<T: Real>(&self) -> OpDat<T> {
        OpDat {
            name: self.name.clone(),
            set_size: self.set_size,
            dim: self.dim,
            layout: self.layout,
            data: self.data.iter().map(|&v| T::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let d: OpDat<f64> = OpDat::zeros("q", 10, 4);
        assert_eq!(d.data.len(), 40);
        assert_eq!(d.bytes(), 320);
        assert_eq!(d.row(3), &[0.0; 4]);
    }

    #[test]
    fn from_fn_rows() {
        let d: OpDat<f32> = OpDat::from_fn("x", 3, 2, |e| vec![e as f32, -(e as f32)]);
        assert_eq!(d.row(2), &[2.0, -2.0]);
        assert_eq!(d.bytes(), 24);
    }

    #[test]
    fn row_mut_updates() {
        let mut d: OpDat<f64> = OpDat::zeros("r", 4, 2);
        d.row_mut(1)[0] = 5.0;
        assert_eq!(d.data[2], 5.0);
    }

    #[test]
    fn diff_and_finite() {
        let a: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.0, 2.0]);
        let b: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.all_finite());
        let nan: OpDat<f64> = OpDat::from_vec("n", 1, 1, vec![f64::NAN]);
        assert!(!nan.all_finite());
    }

    #[test]
    fn precision_conversion() {
        let a: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.25, -3.5]);
        let s: OpDat<f32> = a.convert();
        assert_eq!(s.data, vec![1.25f32, -3.5]);
    }

    #[test]
    #[should_panic(expected = "storage size mismatch")]
    fn from_vec_validates_shape() {
        let _: OpDat<f64> = OpDat::from_vec("bad", 3, 2, vec![0.0; 5]);
    }

    #[test]
    fn layout_round_trip_is_bit_exact() {
        let d: OpDat<f64> = OpDat::from_fn("q", 11, 4, |e| {
            (0..4).map(|c| (e * 4 + c) as f64 * 0.37 - 2.0).collect()
        });
        for to in [
            Layout::Soa,
            Layout::AoSoA { block: 4 },
            Layout::AoSoA { block: 6 }, // ragged: 11 % 6 != 0
        ] {
            let mut s = d.clone();
            s.set_layout(to);
            assert_eq!(s.layout, to);
            assert_eq!(s.max_abs_diff(&d), 0.0);
            for e in 0..11 {
                for c in 0..4 {
                    assert_eq!(s.at(e, c).to_bits(), d.at(e, c).to_bits());
                }
            }
            s.set_layout(Layout::Aos);
            assert_eq!(s, d);
        }
    }

    #[test]
    fn snapshot_is_canonical_across_layouts() {
        let d: OpDat<f64> = OpDat::from_fn("q", 9, 3, |e| {
            (0..3).map(|c| (e + c) as f64 * 1.5).collect()
        });
        let mut aos_bytes = Vec::new();
        d.save(&mut aos_bytes).unwrap();
        let mut soa = d.clone();
        soa.set_layout(Layout::Soa);
        let mut soa_bytes = Vec::new();
        soa.save(&mut soa_bytes).unwrap();
        assert_eq!(aos_bytes, soa_bytes);
        // load always yields AoS, equal to the original
        let back = OpDat::<f64>::load(&mut soa_bytes.as_slice()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn at_mut_writes_through_layout() {
        let mut d: OpDat<f64> = OpDat::zeros("r", 7, 2);
        d.set_layout(Layout::AoSoA { block: 4 });
        *d.at_mut(6, 1) = 9.0;
        *d.at_mut(0, 0) = -1.0;
        d.set_layout(Layout::Aos);
        assert_eq!(d.row(6), &[0.0, 9.0]);
        assert_eq!(d.row(0), &[-1.0, 0.0]);
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_dp() {
        let d: OpDat<f64> = OpDat::from_fn("q", 7, 3, |e| {
            vec![e as f64 * 0.1, -(e as f64).sqrt(), 1.0 / (e as f64 + 1.0)]
        });
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let back = OpDat::<f64>::load(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name, "q");
        assert_eq!((back.set_size, back.dim), (7, 3));
        for (a, b) in d.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_sp() {
        let d: OpDat<f32> = OpDat::from_fn("w", 5, 4, |e| {
            vec![e as f32 * 0.3, -1.5, f32::MIN_POSITIVE, (e as f32).exp()]
        });
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let back = OpDat::<f32>::load(&mut buf.as_slice()).unwrap();
        for (a, b) in d.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_rejects_foreign_bytes() {
        let d: OpDat<f32> = OpDat::zeros("w", 2, 1);
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        // wrong precision
        let err = OpDat::<f64>::load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("4-byte words"), "{err}");
        // wrong magic
        let err = OpDat::<f32>::load(&mut b"XXXX\0\0\0\0".as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // wrong version
        let mut bad = buf.clone();
        bad[4] = 99;
        let err = OpDat::<f32>::load(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // truncated payload
        let err = OpDat::<f32>::load(&mut buf[..buf.len() - 3].as_ref()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
