//! Data on sets: the `op_dat`, plus its versioned binary snapshot
//! format (the persistence layer under `ump_serve`'s deterministic
//! checkpoint/restart).

use std::io::{self, Read, Write};

use ump_simd::Real;

/// Magic prefix of the [`OpDat::save`] binary format.
pub const DAT_SNAPSHOT_MAGIC: [u8; 4] = *b"UMPD";

/// Current version of the [`OpDat::save`] binary format. Bump on any
/// layout change; [`OpDat::load`] rejects other versions instead of
/// guessing.
pub const DAT_SNAPSHOT_VERSION: u32 = 1;

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// A dataset over a set: `dim` components of type `R` per element,
/// AoS layout (`data[e*dim + c]`) as the paper's CPU backends use.
#[derive(Clone, Debug, PartialEq)]
pub struct OpDat<R: Real> {
    /// Dataset name (diagnostics / table rows).
    pub name: String,
    /// Number of set elements.
    pub set_size: usize,
    /// Components per element.
    pub dim: usize,
    /// The values, `set_size * dim` long.
    pub data: Vec<R>,
}

impl<R: Real> OpDat<R> {
    /// Zero-initialized dat.
    pub fn zeros(name: impl Into<String>, set_size: usize, dim: usize) -> OpDat<R> {
        OpDat {
            name: name.into(),
            set_size,
            dim,
            data: vec![R::ZERO; set_size * dim],
        }
    }

    /// Dat initialized per element by `f(element) -> [components]`.
    pub fn from_fn(
        name: impl Into<String>,
        set_size: usize,
        dim: usize,
        mut f: impl FnMut(usize) -> Vec<R>,
    ) -> OpDat<R> {
        let mut data = Vec::with_capacity(set_size * dim);
        for e in 0..set_size {
            let row = f(e);
            assert_eq!(row.len(), dim, "initializer arity mismatch");
            data.extend_from_slice(&row);
        }
        OpDat {
            name: name.into(),
            set_size,
            dim,
            data,
        }
    }

    /// Wrap existing storage.
    pub fn from_vec(
        name: impl Into<String>,
        set_size: usize,
        dim: usize,
        data: Vec<R>,
    ) -> OpDat<R> {
        assert_eq!(data.len(), set_size * dim, "dat storage size mismatch");
        OpDat {
            name: name.into(),
            set_size,
            dim,
            data,
        }
    }

    /// The component slice of element `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[R] {
        &self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Mutable component slice of element `e`.
    #[inline]
    pub fn row_mut(&mut self, e: usize) -> &mut [R] {
        &mut self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Total bytes of payload (Table IV memory accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * R::BYTES
    }

    /// Maximum |difference| against another dat (backend equivalence
    /// tests).
    pub fn max_abs_diff(&self, other: &OpDat<R>) -> f64 {
        assert_eq!(self.data.len(), other.data.len(), "dat shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when every value is finite — failure-injection guard used
    /// by integration tests after each backend run.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Serialize to a versioned binary snapshot.
    ///
    /// Values are stored as the bit pattern of their exact `f64`
    /// widening: for `f64` dats that *is* the value, and every finite
    /// `f32` widens and narrows back to the identical bits, so a
    /// save/load round trip is bit-exact at either precision — the
    /// property `ump_serve`'s checkpoint/restart golden tests assert.
    ///
    /// ```
    /// use ump_core::OpDat;
    ///
    /// let dat: OpDat<f64> = OpDat::from_vec("q", 2, 2, vec![1.0, -2.5, 0.125, 3.0]);
    /// let mut buf = Vec::new();
    /// dat.save(&mut buf).unwrap();
    /// let back = OpDat::<f64>::load(&mut buf.as_slice()).unwrap();
    /// assert_eq!(dat, back);
    /// ```
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&DAT_SNAPSHOT_MAGIC)?;
        w.write_all(&DAT_SNAPSHOT_VERSION.to_le_bytes())?;
        w.write_all(&(R::BYTES as u32).to_le_bytes())?;
        let name = self.name.as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(self.set_size as u64).to_le_bytes())?;
        w.write_all(&(self.dim as u64).to_le_bytes())?;
        // one buffered pass over the payload: 8 bytes per value
        let mut buf = Vec::with_capacity(self.data.len() * 8);
        for &v in &self.data {
            buf.extend_from_slice(&v.to_f64().to_bits().to_le_bytes());
        }
        w.write_all(&buf)
    }

    /// Deserialize a snapshot written by [`OpDat::save`]. Fails with
    /// `InvalidData` on a wrong magic, version, or element width (an
    /// `f32` snapshot is not silently widened into an `f64` dat).
    pub fn load<Rd: Read>(r: &mut Rd) -> io::Result<OpDat<R>> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != DAT_SNAPSHOT_MAGIC {
            return Err(bad_data(format!("not an OpDat snapshot: magic {magic:?}")));
        }
        let version = read_u32(r)?;
        if version != DAT_SNAPSHOT_VERSION {
            return Err(bad_data(format!(
                "OpDat snapshot version {version}, expected {DAT_SNAPSHOT_VERSION}"
            )));
        }
        let word = read_u32(r)? as usize;
        if word != R::BYTES {
            return Err(bad_data(format!(
                "OpDat snapshot holds {word}-byte words, loading as {}-byte {}",
                R::BYTES,
                R::NAME
            )));
        }
        let name_len = read_u32(r)? as usize;
        // length fields are untrusted (a corrupt snapshot can hold any
        // bits): bound them so damage surfaces as InvalidData, not as a
        // multi-gigabyte allocation
        if name_len > 4096 {
            return Err(bad_data(format!("dat name length {name_len} implausible")));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|e| bad_data(format!("dat name: {e}")))?;
        let set_size = read_u64(r)? as usize;
        let dim = read_u64(r)? as usize;
        let n = set_size
            .checked_mul(dim)
            .ok_or_else(|| bad_data("dat shape overflow".into()))?;
        // grow-on-demand past a sane pre-size: a truncated stream then
        // fails in read_u64 long before a bogus `n` can exhaust memory
        let mut data = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            data.push(R::from_f64(f64::from_bits(read_u64(r)?)));
        }
        Ok(OpDat {
            name,
            set_size,
            dim,
            data,
        })
    }

    /// Convert precision (used to set up SP runs from DP initial data).
    pub fn convert<T: Real>(&self) -> OpDat<T> {
        OpDat {
            name: self.name.clone(),
            set_size: self.set_size,
            dim: self.dim,
            data: self.data.iter().map(|&v| T::from_f64(v.to_f64())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let d: OpDat<f64> = OpDat::zeros("q", 10, 4);
        assert_eq!(d.data.len(), 40);
        assert_eq!(d.bytes(), 320);
        assert_eq!(d.row(3), &[0.0; 4]);
    }

    #[test]
    fn from_fn_rows() {
        let d: OpDat<f32> = OpDat::from_fn("x", 3, 2, |e| vec![e as f32, -(e as f32)]);
        assert_eq!(d.row(2), &[2.0, -2.0]);
        assert_eq!(d.bytes(), 24);
    }

    #[test]
    fn row_mut_updates() {
        let mut d: OpDat<f64> = OpDat::zeros("r", 4, 2);
        d.row_mut(1)[0] = 5.0;
        assert_eq!(d.data[2], 5.0);
    }

    #[test]
    fn diff_and_finite() {
        let a: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.0, 2.0]);
        let b: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert!(a.all_finite());
        let nan: OpDat<f64> = OpDat::from_vec("n", 1, 1, vec![f64::NAN]);
        assert!(!nan.all_finite());
    }

    #[test]
    fn precision_conversion() {
        let a: OpDat<f64> = OpDat::from_vec("a", 2, 1, vec![1.25, -3.5]);
        let s: OpDat<f32> = a.convert();
        assert_eq!(s.data, vec![1.25f32, -3.5]);
    }

    #[test]
    #[should_panic(expected = "storage size mismatch")]
    fn from_vec_validates_shape() {
        let _: OpDat<f64> = OpDat::from_vec("bad", 3, 2, vec![0.0; 5]);
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_dp() {
        let d: OpDat<f64> = OpDat::from_fn("q", 7, 3, |e| {
            vec![e as f64 * 0.1, -(e as f64).sqrt(), 1.0 / (e as f64 + 1.0)]
        });
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let back = OpDat::<f64>::load(&mut buf.as_slice()).unwrap();
        assert_eq!(back.name, "q");
        assert_eq!((back.set_size, back.dim), (7, 3));
        for (a, b) in d.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact_sp() {
        let d: OpDat<f32> = OpDat::from_fn("w", 5, 4, |e| {
            vec![e as f32 * 0.3, -1.5, f32::MIN_POSITIVE, (e as f32).exp()]
        });
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        let back = OpDat::<f32>::load(&mut buf.as_slice()).unwrap();
        for (a, b) in d.data.iter().zip(&back.data) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_rejects_foreign_bytes() {
        let d: OpDat<f32> = OpDat::zeros("w", 2, 1);
        let mut buf = Vec::new();
        d.save(&mut buf).unwrap();
        // wrong precision
        let err = OpDat::<f64>::load(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("4-byte words"), "{err}");
        // wrong magic
        let err = OpDat::<f32>::load(&mut b"XXXX\0\0\0\0".as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        // wrong version
        let mut bad = buf.clone();
        bad[4] = 99;
        let err = OpDat::<f32>::load(&mut bad.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // truncated payload
        let err = OpDat::<f32>::load(&mut buf[..buf.len() - 3].as_ref()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
