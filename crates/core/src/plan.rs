//! Plan caching — OP2's `op_plan_get`.
//!
//! Coloring plans are expensive to build and depend only on the loop
//! *shape* (iteration set, written maps, block size, scheme), not on the
//! data, so OP2 computes them on first execution and reuses them across
//! the time loop. Same here.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use ump_color::{BlockPermutePlan, FullPermutePlan, PlanInputs, TwoLevelPlan};

/// Which coloring/execution scheme a plan uses (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Original two-level coloring (colored blocks + colored increments).
    TwoLevel,
    /// Global color permutation (lane independence, no locality).
    FullPermute,
    /// Per-block color permutation (lane independence within blocks).
    BlockPermute,
}

/// A built plan of any scheme.
#[derive(Clone, Debug)]
pub enum AnyPlan {
    /// Two-level plan.
    TwoLevel(TwoLevelPlan),
    /// Full-permute plan.
    Full(FullPermutePlan),
    /// Block-permute plan.
    Block(BlockPermutePlan),
}

impl AnyPlan {
    /// The two-level plan, panicking otherwise (driver/scheme mismatch is
    /// a programming error).
    pub fn two_level(&self) -> &TwoLevelPlan {
        match self {
            AnyPlan::TwoLevel(p) => p,
            _ => panic!("expected a two-level plan"),
        }
    }

    /// The full-permute plan.
    pub fn full_permute(&self) -> &FullPermutePlan {
        match self {
            AnyPlan::Full(p) => p,
            _ => panic!("expected a full-permute plan"),
        }
    }

    /// The block-permute plan.
    pub fn block_permute(&self) -> &BlockPermutePlan {
        match self {
            AnyPlan::Block(p) => p,
            _ => panic!("expected a block-permute plan"),
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    set_size: usize,
    written_maps: Vec<String>,
    block_size: usize,
    scheme: Scheme,
}

/// Cache of built plans. Cheap to clone handles out; `get` builds at most
/// once per key.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<AnyPlan>>>,
    builds: Mutex<usize>,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Fetch (building if needed) the plan for a loop shape.
    ///
    /// `written_map_names` must parallel `inputs.written_maps` — names are
    /// the cache key, tables the build input.
    pub fn get(
        &self,
        scheme: Scheme,
        written_map_names: &[&str],
        inputs: &PlanInputs<'_>,
    ) -> Arc<AnyPlan> {
        let key = PlanKey {
            set_size: inputs.n_elems,
            written_maps: written_map_names.iter().map(|s| s.to_string()).collect(),
            block_size: inputs.block_size,
            scheme,
        };
        if let Some(plan) = self.plans.lock().get(&key) {
            return Arc::clone(plan);
        }
        // build outside the lock (plans can take a while on big meshes)
        let plan = Arc::new(match scheme {
            Scheme::TwoLevel => AnyPlan::TwoLevel(TwoLevelPlan::build(inputs)),
            Scheme::FullPermute => AnyPlan::Full(FullPermutePlan::build(inputs)),
            Scheme::BlockPermute => AnyPlan::Block(BlockPermutePlan::build(inputs)),
        });
        *self.builds.lock() += 1;
        Arc::clone(self.plans.lock().entry(key).or_insert(plan))
    }

    /// Number of plans actually built (cache-effectiveness metric).
    pub fn builds(&self) -> usize {
        *self.builds.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::generators::quad_channel;

    #[test]
    fn cache_builds_once_per_shape() {
        let m = quad_channel(8, 8).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 64);
        let a = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        let b = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        // different block size -> different plan
        let inputs2 = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 128);
        let c = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.builds(), 2);
        // different scheme -> different plan
        cache.get(Scheme::FullPermute, &["edge2cell"], &inputs);
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn accessors_match_scheme() {
        let m = quad_channel(4, 4).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        assert!(matches!(
            &*cache.get(Scheme::BlockPermute, &["edge2cell"], &inputs),
            AnyPlan::Block(_)
        ));
        let p = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        let _ = p.two_level();
    }

    #[test]
    #[should_panic(expected = "expected a two-level plan")]
    fn wrong_accessor_panics() {
        let m = quad_channel(4, 4).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let p = cache.get(Scheme::FullPermute, &["edge2cell"], &inputs);
        let _ = p.two_level();
    }
}
