//! Plan caching — OP2's `op_plan_get`.
//!
//! Coloring plans are expensive to build and depend only on the loop
//! *shape* (iteration set, written maps, block size, scheme), not on the
//! data, so OP2 computes them on first execution and reuses them across
//! the time loop. Same here.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use ump_color::{BlockPermutePlan, FullPermutePlan, PlanInputs, TwoLevelPlan};

/// Which coloring/execution scheme a plan uses (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Original two-level coloring (colored blocks + colored increments).
    TwoLevel,
    /// Global color permutation (lane independence, no locality).
    FullPermute,
    /// Per-block color permutation (lane independence within blocks).
    BlockPermute,
}

/// A built plan of any scheme.
#[derive(Clone, Debug)]
pub enum AnyPlan {
    /// Two-level plan.
    TwoLevel(TwoLevelPlan),
    /// Full-permute plan.
    Full(FullPermutePlan),
    /// Block-permute plan.
    Block(BlockPermutePlan),
}

impl AnyPlan {
    /// The two-level plan, panicking otherwise (driver/scheme mismatch is
    /// a programming error).
    pub fn two_level(&self) -> &TwoLevelPlan {
        match self {
            AnyPlan::TwoLevel(p) => p,
            _ => panic!("expected a two-level plan"),
        }
    }

    /// The full-permute plan.
    pub fn full_permute(&self) -> &FullPermutePlan {
        match self {
            AnyPlan::Full(p) => p,
            _ => panic!("expected a full-permute plan"),
        }
    }

    /// The block-permute plan.
    pub fn block_permute(&self) -> &BlockPermutePlan {
        match self {
            AnyPlan::Block(p) => p,
            _ => panic!("expected a block-permute plan"),
        }
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    /// Scope of the handle that issued the `get` (see
    /// [`PlanCache::scoped`]); `""` for the root handle.
    namespace: Arc<str>,
    set_size: usize,
    written_maps: Vec<String>,
    block_size: usize,
    scheme: Scheme,
}

/// Default [`PlanCache`] capacity: generous for production time loops
/// (an app reuses a handful of shapes) while bounding the block-size ×
/// scheme sweeps that used to grow the cache without limit.
pub const DEFAULT_PLAN_CAPACITY: usize = 64;

struct CacheEntry {
    plan: Arc<AnyPlan>,
    /// Tick of the most recent `get` returning this entry (LRU key).
    last_used: u64,
}

#[derive(Default)]
struct CacheInner {
    plans: HashMap<PlanKey, CacheEntry>,
    tick: u64,
    hits: usize,
    builds: usize,
}

/// Bounded cache of built plans. Cheap to clone handles out; `get`
/// builds at most once per *resident* key and evicts the
/// least-recently-used plan beyond the capacity (handles already cloned
/// out stay alive — eviction only drops the cache's reference).
///
/// A `PlanCache` value is itself a cheap handle onto shared storage:
/// cloning it (or deriving a [`scoped`](PlanCache::scoped) view) shares
/// the plans, the LRU state, and the hit/build counters. The service
/// layer leans on this to reuse one cache across thousands of
/// concurrent jobs.
#[derive(Clone)]
pub struct PlanCache {
    inner: Arc<Mutex<CacheInner>>,
    capacity: usize,
    namespace: Arc<str>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_capacity(DEFAULT_PLAN_CAPACITY)
    }
}

impl PlanCache {
    /// Cache with the [default capacity](DEFAULT_PLAN_CAPACITY).
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Cache holding at most `capacity` plans (min 1).
    pub fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Arc::new(Mutex::new(CacheInner::default())),
            capacity: capacity.max(1),
            namespace: Arc::from(""),
        }
    }

    /// A view onto the same cache whose keys live under `namespace`.
    ///
    /// The plan key covers the loop *shape* — set size, written-map
    /// names, block size, scheme — but not the map contents, which is
    /// sound while one process runs one mesh. A service multiplexing
    /// *different* meshes over one cache could collide two topologies
    /// that happen to share a set size and a map name ("edge2cell"
    /// says nothing about whose edges). Scoping the handle per mesh
    /// identity (e.g. `"airfoil:48x24"`) keeps sharing within a scope —
    /// every job of the same shape hits the same plans — while making
    /// cross-mesh collisions structurally impossible. Storage, LRU
    /// order, and the [`hits`](PlanCache::hits)/[`builds`](PlanCache::builds)
    /// counters remain shared across all views.
    ///
    /// ```
    /// use ump_core::PlanCache;
    ///
    /// let root = PlanCache::new();
    /// let a = root.scoped("airfoil:48x24");
    /// let b = root.scoped("volna:20x14");
    /// // same storage: counters visible from every handle
    /// assert_eq!(root.builds(), 0);
    /// drop((a, b));
    /// ```
    pub fn scoped(&self, namespace: &str) -> PlanCache {
        PlanCache {
            inner: Arc::clone(&self.inner),
            capacity: self.capacity,
            namespace: Arc::from(namespace),
        }
    }

    /// Fetch (building if needed) the plan for a loop shape.
    ///
    /// `written_map_names` must parallel `inputs.written_maps` — names are
    /// the cache key, tables the build input.
    pub fn get(
        &self,
        scheme: Scheme,
        written_map_names: &[&str],
        inputs: &PlanInputs<'_>,
    ) -> Arc<AnyPlan> {
        let key = PlanKey {
            namespace: Arc::clone(&self.namespace),
            set_size: inputs.n_elems,
            written_maps: written_map_names.iter().map(|s| s.to_string()).collect(),
            block_size: inputs.block_size,
            scheme,
        };
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(entry) = inner.plans.get_mut(&key) {
                entry.last_used = tick;
                let plan = Arc::clone(&entry.plan);
                inner.hits += 1;
                return plan;
            }
        }
        // build outside the lock (plans can take a while on big meshes)
        let plan = Arc::new(match scheme {
            Scheme::TwoLevel => AnyPlan::TwoLevel(TwoLevelPlan::build(inputs)),
            Scheme::FullPermute => AnyPlan::Full(FullPermutePlan::build(inputs)),
            Scheme::BlockPermute => AnyPlan::Block(BlockPermutePlan::build(inputs)),
        });
        let mut inner = self.inner.lock();
        inner.builds += 1;
        inner.tick += 1;
        let tick = inner.tick;
        let out = {
            let entry = inner.plans.entry(key).or_insert_with(|| CacheEntry {
                plan,
                last_used: tick,
            });
            entry.last_used = tick;
            Arc::clone(&entry.plan)
        };
        // LRU eviction; the just-inserted entry carries the newest tick,
        // so it is never the victim.
        while inner.plans.len() > self.capacity {
            let victim = inner
                .plans
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity cache");
            inner.plans.remove(&victim);
        }
        out
    }

    /// Number of plans actually built (cache-effectiveness metric).
    pub fn builds(&self) -> usize {
        self.inner.lock().builds
    }

    /// Number of `get` calls answered from the cache.
    pub fn hits(&self) -> usize {
        self.inner.lock().hits
    }

    /// Number of plans currently resident (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().plans.len()
    }

    /// `true` when no plan is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::generators::quad_channel;

    #[test]
    fn cache_builds_once_per_shape() {
        let m = quad_channel(8, 8).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 64);
        let a = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        let b = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.builds(), 1);
        // different block size -> different plan
        let inputs2 = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 128);
        let c = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.builds(), 2);
        // different scheme -> different plan
        cache.get(Scheme::FullPermute, &["edge2cell"], &inputs);
        assert_eq!(cache.builds(), 3);
    }

    #[test]
    fn hits_and_builds_counters() {
        let m = quad_channel(8, 8).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 64);
        assert_eq!((cache.hits(), cache.builds()), (0, 0));
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        assert_eq!((cache.hits(), cache.builds()), (0, 1));
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        assert_eq!((cache.hits(), cache.builds()), (2, 1));
    }

    #[test]
    fn lru_eviction_bounds_the_cache() {
        let m = quad_channel(8, 8).mesh;
        let cache = PlanCache::with_capacity(2);
        let inputs = |bs: usize| PlanInputs::new(m.n_edges(), vec![&m.edge2cell], bs);
        let a = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(16));
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(32));
        assert_eq!(cache.len(), 2);
        // third shape evicts the least-recently-used (block 16)
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(64));
        assert_eq!((cache.len(), cache.builds()), (2, 3));
        // block 32 and 64 are resident: hits
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(32));
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(64));
        assert_eq!(cache.hits(), 2);
        // block 16 was evicted: rebuilt, and the evicted handle stays valid
        let a2 = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(16));
        assert_eq!(cache.builds(), 4);
        assert!(!Arc::ptr_eq(&a, &a2));
        assert_eq!(a.two_level().blocks.len(), a2.two_level().blocks.len());
        // recency, not insertion order, picks the victim: touch 16 then
        // insert a fourth shape — 64 (least recent) must go, 16 stays
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(16));
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(128));
        let builds_before = cache.builds();
        cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs(16));
        assert_eq!(cache.builds(), builds_before, "16 should still be resident");
    }

    #[test]
    fn scoped_views_share_storage_but_not_keys() {
        let m = quad_channel(8, 8).mesh;
        let root = PlanCache::new();
        let a = root.scoped("airfoil:8x8");
        let b = root.scoped("volna:8x8");
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 64);
        // identical shape in two scopes builds twice: no cross-mesh reuse
        let pa = a.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        let pb = b.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!((root.builds(), root.hits()), (2, 0));
        // within a scope (and across clones of it) the plan is shared
        let pa2 = a.clone().get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        assert!(Arc::ptr_eq(&pa, &pa2));
        // counters are one surface, visible through every handle
        assert_eq!((b.builds(), b.hits()), (2, 1));
        assert_eq!(root.len(), 2);
    }

    #[test]
    fn accessors_match_scheme() {
        let m = quad_channel(4, 4).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        assert!(matches!(
            &*cache.get(Scheme::BlockPermute, &["edge2cell"], &inputs),
            AnyPlan::Block(_)
        ));
        let p = cache.get(Scheme::TwoLevel, &["edge2cell"], &inputs);
        let _ = p.two_level();
    }

    #[test]
    #[should_panic(expected = "expected a two-level plan")]
    fn wrong_accessor_panics() {
        let m = quad_channel(4, 4).mesh;
        let cache = PlanCache::new();
        let inputs = PlanInputs::new(m.n_edges(), vec![&m.edge2cell], 16);
        let p = cache.get(Scheme::FullPermute, &["edge2cell"], &inputs);
        let _ = p.two_level();
    }
}
