//! Per-loop instrumentation: the timing/bandwidth/GFLOP bookkeeping
//! behind Tables V–VIII ("useful bandwidth, calculated based on the
//! minimal amount of data moved", §6.1).

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

use crate::profile::LoopProfile;

/// Accumulated statistics of one parallel loop.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LoopStats {
    /// Number of invocations.
    pub calls: usize,
    /// Total wall seconds.
    pub seconds: f64,
    /// Total useful bytes moved (paper counting: per-element words ×
    /// word size × elements, no cache or map-table corrections).
    pub bytes: f64,
    /// Total useful FLOPs.
    pub flops: f64,
}

impl LoopStats {
    /// Achieved useful bandwidth in GB/s.
    pub fn gb_per_s(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.bytes / self.seconds / 1e9
        }
    }

    /// Achieved computational throughput in GFLOP/s.
    pub fn gflop_per_s(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.flops / self.seconds / 1e9
        }
    }
}

/// Accumulated cross-loop fusion statistics of one recorded chain (the
/// `ump-lazy` runtime reports these): how many pool dispatch rounds and
/// how much re-streamed memory traffic fusion saved versus running the
/// same chain loop-by-loop.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FusionStats {
    /// Chain executions recorded.
    pub executions: usize,
    /// Loops recorded, summed over executions.
    pub loops: usize,
    /// Groups dispatched (fused and sequential), summed over executions.
    pub groups: usize,
    /// Pool dispatch rounds the fused execution issued.
    pub fused_rounds: usize,
    /// Rounds the same chain issues when every loop runs alone (the
    /// unfused drivers' dispatch count).
    pub unfused_rounds: usize,
    /// Read bytes *not* re-streamed from memory because a fused group
    /// revisits a dat while its block is still cache-resident (paper
    /// counting: useful words × word size, no cache modelling).
    pub bytes_saved: f64,
    /// Timesteps covered per execution, summed over executions: 1 for a
    /// per-step chain, N for a cross-timestep tiled super-chain.
    pub steps: usize,
    /// Dat bytes that stayed tile-resident *across* timestep boundaries
    /// instead of making a memory round trip per step — the
    /// bandwidth-elimination a cross-timestep tiled execution adds on
    /// top of within-step fusion (0 for per-step chains).
    pub cross_step_bytes_saved: f64,
}

impl FusionStats {
    /// Dispatch rounds (≈ team-wide barriers) fusion removed.
    pub fn rounds_saved(&self) -> usize {
        self.unfused_rounds.saturating_sub(self.fused_rounds)
    }
}

/// A per-run recorder of loop statistics.
#[derive(Default)]
pub struct Recorder {
    stats: Mutex<HashMap<String, LoopStats>>,
    fusion: Mutex<HashMap<String, FusionStats>>,
}

impl Recorder {
    /// Fresh recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Time `f` as one invocation of `profile` over `n_elems` elements of
    /// a `word_bytes` application (4 = SP, 8 = DP).
    pub fn time<T>(
        &self,
        profile: &LoopProfile,
        word_bytes: usize,
        n_elems: usize,
        f: impl FnOnce() -> T,
    ) -> T {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        self.record(
            &profile.name,
            dt,
            profile.bytes_per_elem(word_bytes) * n_elems as f64,
            profile.flops_per_elem * n_elems as f64,
        );
        out
    }

    /// Record a pre-measured invocation.
    pub fn record(&self, name: &str, seconds: f64, bytes: f64, flops: f64) {
        let mut stats = self.stats.lock();
        let entry = stats.entry(name.to_string()).or_default();
        entry.calls += 1;
        entry.seconds += seconds;
        entry.bytes += bytes;
        entry.flops += flops;
    }

    /// Statistics of one loop, if recorded.
    pub fn get(&self, name: &str) -> Option<LoopStats> {
        self.stats.lock().get(name).copied()
    }

    /// All statistics sorted by loop name.
    pub fn report(&self) -> Vec<(String, LoopStats)> {
        let stats = self.stats.lock();
        let mut rows: Vec<_> = stats.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Sum of wall seconds over all loops.
    pub fn total_seconds(&self) -> f64 {
        self.stats.lock().values().map(|s| s.seconds).sum()
    }

    /// Accumulate one chain execution's fusion statistics under the
    /// chain's name.
    pub fn record_fusion(&self, chain: &str, delta: FusionStats) {
        let mut fusion = self.fusion.lock();
        let e = fusion.entry(chain.to_string()).or_default();
        e.executions += delta.executions.max(1);
        e.loops += delta.loops;
        e.groups += delta.groups;
        e.fused_rounds += delta.fused_rounds;
        e.unfused_rounds += delta.unfused_rounds;
        e.bytes_saved += delta.bytes_saved;
        e.steps += delta.steps.max(1);
        e.cross_step_bytes_saved += delta.cross_step_bytes_saved;
    }

    /// Fusion statistics of one chain, if recorded.
    pub fn fusion(&self, chain: &str) -> Option<FusionStats> {
        self.fusion.lock().get(chain).copied()
    }

    /// All fusion statistics sorted by chain name.
    pub fn fusion_report(&self) -> Vec<(String, FusionStats)> {
        let fusion = self.fusion.lock();
        let mut rows: Vec<_> = fusion.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Merge another recorder into this one (used to combine per-rank
    /// recorders of the message-passing backend; times are maxed, volumes
    /// summed, matching how MPI runtimes are reported). Fusion statistics
    /// follow the same convention: counts of the per-rank chain (loops,
    /// groups, rounds) are maxed — every rank runs the same chain — and
    /// the volume-like `bytes_saved` sums across ranks.
    pub fn merge_rank(&self, other: &Recorder) {
        {
            let other_stats = other.stats.lock();
            let mut stats = self.stats.lock();
            for (name, s) in other_stats.iter() {
                let e = stats.entry(name.clone()).or_default();
                e.calls = e.calls.max(s.calls);
                e.seconds = e.seconds.max(s.seconds);
                e.bytes += s.bytes;
                e.flops += s.flops;
            }
        }
        let other_fusion = other.fusion.lock();
        let mut fusion = self.fusion.lock();
        for (name, s) in other_fusion.iter() {
            let e = fusion.entry(name.clone()).or_default();
            e.executions = e.executions.max(s.executions);
            e.loops = e.loops.max(s.loops);
            e.groups = e.groups.max(s.groups);
            e.fused_rounds = e.fused_rounds.max(s.fused_rounds);
            e.unfused_rounds = e.unfused_rounds.max(s.unfused_rounds);
            e.bytes_saved += s.bytes_saved;
            e.steps = e.steps.max(s.steps);
            e.cross_step_bytes_saved += s.cross_step_bytes_saved;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arg::{Access, ArgInfo};

    fn copy_profile() -> LoopProfile {
        LoopProfile {
            name: "save_soln".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("qold", 4, Access::Write),
            ],
            flops_per_elem: 4.0,
            transcendentals_per_elem: 0.0,
            description: "Direct copy".into(),
        }
    }

    #[test]
    fn time_accumulates_volume() {
        let rec = Recorder::new();
        let p = copy_profile();
        rec.time(&p, 8, 1000, || {});
        rec.time(&p, 8, 1000, || {});
        let s = rec.get("save_soln").unwrap();
        assert_eq!(s.calls, 2);
        // 8 words/elem * 8 B * 1000 elems * 2 calls
        assert_eq!(s.bytes, 2.0 * 8.0 * 8.0 * 1000.0);
        assert_eq!(s.flops, 2.0 * 4.0 * 1000.0);
        assert!(s.seconds >= 0.0);
    }

    #[test]
    fn derived_rates() {
        let rec = Recorder::new();
        rec.record("k", 0.5, 1e9, 2e9);
        let s = rec.get("k").unwrap();
        assert!((s.gb_per_s() - 2.0).abs() < 1e-12);
        assert!((s.gflop_per_s() - 4.0).abs() < 1e-12);
        let zero = LoopStats::default();
        assert_eq!(zero.gb_per_s(), 0.0);
    }

    #[test]
    fn report_is_sorted_and_total_sums() {
        let rec = Recorder::new();
        rec.record("b", 1.0, 0.0, 0.0);
        rec.record("a", 2.0, 0.0, 0.0);
        let rows = rec.report();
        assert_eq!(rows[0].0, "a");
        assert_eq!(rows[1].0, "b");
        assert_eq!(rec.total_seconds(), 3.0);
    }

    #[test]
    fn fusion_stats_accumulate_per_chain() {
        let rec = Recorder::new();
        assert!(rec.fusion("airfoil_step").is_none());
        let delta = FusionStats {
            executions: 1,
            loops: 9,
            groups: 7,
            fused_rounds: 9,
            unfused_rounds: 11,
            bytes_saved: 1000.0,
            steps: 0,
            cross_step_bytes_saved: 0.0,
        };
        rec.record_fusion("airfoil_step", delta);
        rec.record_fusion("airfoil_step", delta);
        let s = rec.fusion("airfoil_step").unwrap();
        assert_eq!(s.executions, 2);
        assert_eq!(s.loops, 18);
        assert_eq!(s.fused_rounds, 18);
        assert_eq!(s.rounds_saved(), 4);
        assert_eq!(s.bytes_saved, 2000.0);
        // legacy per-step chains (steps: 0 in the delta) count 1 step
        // per execution so steps-per-execution stays meaningful
        assert_eq!(s.steps, 2);
        assert_eq!(s.cross_step_bytes_saved, 0.0);
        assert_eq!(rec.fusion_report().len(), 1);
        // a tiled super-chain reports its real step count and the
        // cross-step traffic it kept tile-resident
        rec.record_fusion(
            "airfoil_tiled",
            FusionStats {
                executions: 1,
                loops: 36,
                groups: 1,
                fused_rounds: 2,
                unfused_rounds: 36,
                bytes_saved: 0.0,
                steps: 4,
                cross_step_bytes_saved: 4096.0,
            },
        );
        let t = rec.fusion("airfoil_tiled").unwrap();
        assert_eq!(t.steps, 4);
        assert_eq!(t.cross_step_bytes_saved, 4096.0);
    }

    #[test]
    fn rank_merge_maxes_time_sums_volume() {
        let a = Recorder::new();
        a.record("k", 1.0, 100.0, 10.0);
        let b = Recorder::new();
        b.record("k", 2.0, 100.0, 10.0);
        a.merge_rank(&b);
        let s = a.get("k").unwrap();
        assert_eq!(s.seconds, 2.0);
        assert_eq!(s.bytes, 200.0);
    }

    #[test]
    fn rank_merge_carries_fusion_stats() {
        let delta = FusionStats {
            executions: 2,
            loops: 18,
            groups: 14,
            fused_rounds: 14,
            unfused_rounds: 18,
            bytes_saved: 500.0,
            steps: 2,
            cross_step_bytes_saved: 100.0,
        };
        let a = Recorder::new();
        a.record_fusion("chain", delta);
        let b = Recorder::new();
        b.record_fusion("chain", delta);
        a.merge_rank(&b);
        let s = a.fusion("chain").unwrap();
        // per-rank counts max (same chain on every rank), volumes sum
        assert_eq!(s.executions, 2);
        assert_eq!(s.fused_rounds, 14);
        assert_eq!(s.rounds_saved(), 4);
        assert_eq!(s.bytes_saved, 1000.0);
        assert_eq!(s.steps, 2);
        assert_eq!(s.cross_step_bytes_saved, 200.0);
    }
}
