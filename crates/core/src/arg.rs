//! Access descriptors: the information carried by
//! `op_arg_dat(dat, idx, map, dim, "typ", access)` in the OP2 API
//! (paper Fig. 2a). The loop drivers are statically generated, so at run
//! time these descriptors serve two purposes: deriving the per-kernel
//! transfer characteristics of Tables II/III, and identifying the written
//! maps that a coloring plan must respect.

/// How an argument is accessed (OP2's `OP_READ` / `OP_WRITE` / `OP_INC` /
/// `OP_RW`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Access {
    /// Read only.
    Read,
    /// Write only (every component overwritten).
    Write,
    /// Increment (read-modify-write; needs race protection when indirect).
    Inc,
    /// Read and write.
    Rw,
}

impl Access {
    /// Words *read* per component under the paper's counting convention
    /// (INC and RW touch the value both ways).
    pub fn reads(self) -> bool {
        !matches!(self, Access::Write)
    }

    /// Words *written* per component.
    pub fn writes(self) -> bool {
        !matches!(self, Access::Read)
    }
}

/// Whether the argument is direct on the iteration set or reached through
/// a mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Indirection {
    /// Direct (`OP_ID`): element `n` touches `dat[n]`.
    Direct,
    /// Indirect through the named map at slot `idx`:
    /// element `n` touches `dat[map[n*map_dim + idx]]`.
    Indirect {
        /// Map name (plan cache key component).
        map: String,
        /// Slot within the map row.
        idx: usize,
    },
    /// A global argument (reduction target or constant), `dim` words.
    Global,
}

/// One argument of a parallel loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgInfo {
    /// Dataset name.
    pub dat: String,
    /// Components per element.
    pub dim: usize,
    /// Access mode.
    pub access: Access,
    /// Direct / indirect / global.
    pub ind: Indirection,
}

impl ArgInfo {
    /// Direct argument.
    pub fn direct(dat: impl Into<String>, dim: usize, access: Access) -> ArgInfo {
        ArgInfo {
            dat: dat.into(),
            dim,
            access,
            ind: Indirection::Direct,
        }
    }

    /// Indirect argument through `map` slot `idx`.
    pub fn indirect(
        dat: impl Into<String>,
        dim: usize,
        access: Access,
        map: impl Into<String>,
        idx: usize,
    ) -> ArgInfo {
        ArgInfo {
            dat: dat.into(),
            dim,
            access,
            ind: Indirection::Indirect {
                map: map.into(),
                idx,
            },
        }
    }

    /// Global (reduction) argument.
    pub fn global(dat: impl Into<String>, dim: usize, access: Access) -> ArgInfo {
        ArgInfo {
            dat: dat.into(),
            dim,
            access,
            ind: Indirection::Global,
        }
    }

    /// Is this argument indirect?
    pub fn is_indirect(&self) -> bool {
        matches!(self.ind, Indirection::Indirect { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_read_write_flags() {
        assert!(Access::Read.reads() && !Access::Read.writes());
        assert!(!Access::Write.reads() && Access::Write.writes());
        assert!(Access::Inc.reads() && Access::Inc.writes());
        assert!(Access::Rw.reads() && Access::Rw.writes());
    }

    #[test]
    fn constructors() {
        let a = ArgInfo::direct("q", 4, Access::Read);
        assert!(!a.is_indirect());
        let b = ArgInfo::indirect("x", 2, Access::Read, "edge2node", 1);
        assert!(b.is_indirect());
        match &b.ind {
            Indirection::Indirect { map, idx } => {
                assert_eq!(map, "edge2node");
                assert_eq!(*idx, 1);
            }
            _ => unreachable!(),
        }
        let g = ArgInfo::global("rms", 1, Access::Inc);
        assert_eq!(g.ind, Indirection::Global);
    }
}
