//! The unified backend registry: every execution shape of the runtime as
//! one enumerable surface.
//!
//! The paper evaluates vectorization and execution-shape choices as
//! separate axes (threads, SIMT emulation, explicit SIMD, coloring
//! schemes); this reproduction adds cross-loop fusion on top. Before this
//! module those shapes existed only as ~10 ad-hoc `step_*` driver
//! functions per application — nothing could *enumerate* them, so every
//! cross-backend test had to be written by hand per backend.
//!
//! [`Backend`] names each shape as data. [`Backend::all`] enumerates the
//! registry, [`Backend::parse`]/[`Backend::name`] round-trip CLI
//! spellings, and the capability accessors ([`needs_pool`], [`lanes`],
//! [`is_fused`], [`scheme`]) tell harnesses what a backend requires
//! without hard-coding its identity. The applications expose a single
//! `step_on(backend, …)` dispatcher keyed on this enum, so a backend
//! added here is automatically reachable from the conformance matrix
//! (`tests/backend_conformance.rs`), the `repro --smoke --backends …`
//! sweep, and any future harness that iterates [`Backend::all`].
//!
//! Lane counts are *data* here but *const generics* in the drivers, so
//! the registry only lists widths the applications actually instantiate:
//! 4 (the AVX double-precision shape) and 8 (IMCI/AVX-512). A request
//! for a width outside the registry panics in the dispatcher with the
//! backend's name — add the instantiation to `step_on` alongside the
//! registry entry.
//!
//! [`needs_pool`]: Backend::needs_pool
//! [`lanes`]: Backend::lanes
//! [`is_fused`]: Backend::is_fused
//! [`scheme`]: Backend::scheme

use crate::plan::Scheme;

/// One execution shape of the runtime — the unified registry the
/// applications' `step_on` dispatchers and the conformance harness
/// enumerate. See the module docs for how to add a backend.
///
/// ```
/// use ump_core::Backend;
///
/// // every registered shape round-trips its CLI spelling
/// for b in Backend::all() {
///     assert_eq!(Backend::parse(&b.name()), Some(b));
/// }
/// // capability flags describe a backend without hard-coding identity
/// let b = Backend::parse("mpi_fused_simd4").unwrap();
/// assert!(b.is_distributed() && b.is_fused() && !b.needs_pool());
/// assert_eq!((b.ranks(), b.lanes()), (2, 4));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Scalar sequential reference (the paper's per-rank loop, Fig. 2b).
    Seq,
    /// Colored-block threading on the persistent pool (OpenMP analogue).
    Threaded,
    /// Explicit SIMD at `lanes` lanes, single thread (Fig. 3b).
    Simd {
        /// Vector width (4 = AVX DP, 8 = IMCI/AVX-512 DP).
        lanes: usize,
    },
    /// Threads × explicit SIMD (the vectorized MPI+OpenMP shape).
    SimdThreaded {
        /// Vector width inside each colored block.
        lanes: usize,
    },
    /// SIMD `res_calc`-class loops under an explicit coloring scheme
    /// (Fig. 8a's comparison), single thread, L = 4.
    SimdScheme {
        /// Coloring scheme for the indirect-increment loop.
        scheme: Scheme,
    },
    /// SIMT (OpenCL-on-CPU) emulation: lock-step work-items, colored
    /// increments (Fig. 3a).
    Simt,
    /// Fused loop chains (`ump_lazy`), threaded shape.
    Fused,
    /// Fused loop chains executed in the SIMT shape.
    FusedSimt,
    /// Fused loop chains with vectorized lane bodies — cross-loop fusion
    /// *and* the paper's explicit SIMD composed on one dispatch path.
    FusedSimd {
        /// Vector width of the fused lane bodies.
        lanes: usize,
    },
    /// Distributed fused execution: message-passing ranks own mesh
    /// partitions, each running the fused loop chain with halo/compute
    /// overlap — non-blocking halo exchanges posted before the flux
    /// group, interior blocks executed while messages are in flight,
    /// boundary blocks after the exchange completes (paper §2, §6.5
    /// composed with the lazy runtime). Registry entries run at
    /// [`ranks`](Backend::ranks) ranks; the `run_mpi_fused` drivers take
    /// any rank count.
    MpiFused,
    /// Distributed fused execution with vectorized lane bodies — the
    /// full composition: ranks × fusion × explicit SIMD.
    MpiFusedSimd {
        /// Vector width of the fused lane bodies inside each rank.
        lanes: usize,
    },
    /// Cross-timestep sparse tiling (`ump_lazy::TiledChain`): N recorded
    /// timesteps swept tile-by-tile through per-tile dependency cones
    /// with redundant fringe compute — bandwidth elimination on top of
    /// fusion's barrier reduction.
    Tiled,
    /// Cross-timestep tiling with vectorized run bodies on the direct
    /// cell loops (indirect loops stay scalar inside the tile sweep).
    TiledSimd {
        /// Vector width of the tiled run bodies.
        lanes: usize,
    },
}

impl Backend {
    /// Every registered execution shape, in a stable order. A backend
    /// added here is automatically covered by the conformance matrix and
    /// the `repro` smoke sweep.
    pub fn all() -> Vec<Backend> {
        vec![
            Backend::Seq,
            Backend::Threaded,
            Backend::Simd { lanes: 4 },
            Backend::Simd { lanes: 8 },
            Backend::SimdThreaded { lanes: 4 },
            Backend::SimdThreaded { lanes: 8 },
            Backend::SimdScheme {
                scheme: Scheme::TwoLevel,
            },
            Backend::SimdScheme {
                scheme: Scheme::FullPermute,
            },
            Backend::SimdScheme {
                scheme: Scheme::BlockPermute,
            },
            Backend::Simt,
            Backend::Fused,
            Backend::FusedSimt,
            Backend::FusedSimd { lanes: 4 },
            Backend::FusedSimd { lanes: 8 },
            Backend::MpiFused,
            Backend::MpiFusedSimd { lanes: 4 },
            Backend::MpiFusedSimd { lanes: 8 },
            Backend::Tiled,
            Backend::TiledSimd { lanes: 4 },
            Backend::TiledSimd { lanes: 8 },
        ]
    }

    /// Canonical CLI spelling; [`parse`](Backend::parse) round-trips it.
    pub fn name(self) -> String {
        match self {
            Backend::Seq => "seq".into(),
            Backend::Threaded => "threaded".into(),
            Backend::Simd { lanes } => format!("simd{lanes}"),
            Backend::SimdThreaded { lanes } => format!("simd_threaded{lanes}"),
            Backend::SimdScheme { scheme } => match scheme {
                Scheme::TwoLevel => "simd_scheme_two_level".into(),
                Scheme::FullPermute => "simd_scheme_full_permute".into(),
                Scheme::BlockPermute => "simd_scheme_block_permute".into(),
            },
            Backend::Simt => "simt".into(),
            Backend::Fused => "fused".into(),
            Backend::FusedSimt => "fused_simt".into(),
            Backend::FusedSimd { lanes } => format!("fused_simd{lanes}"),
            Backend::MpiFused => "mpi_fused".into(),
            Backend::MpiFusedSimd { lanes } => format!("mpi_fused_simd{lanes}"),
            Backend::Tiled => "tiled".into(),
            Backend::TiledSimd { lanes } => format!("tiled_simd{lanes}"),
        }
    }

    /// Parse a canonical backend name (the inverse of
    /// [`name`](Backend::name), over the registered set).
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::all().into_iter().find(|b| b.name() == s)
    }

    /// `true` when execution dispatches rounds on an [`ExecPool`]
    /// (worker-pool backends); the conformance harness asserts these
    /// backends actually move the pool's round counter.
    ///
    /// [`ExecPool`]: crate::pool::ExecPool
    pub fn needs_pool(self) -> bool {
        match self {
            // distributed backends give every *rank* its own pool and
            // never touch the caller's — harnesses must not expect the
            // shared pool's counters to move
            Backend::Seq
            | Backend::Simd { .. }
            | Backend::SimdScheme { .. }
            | Backend::MpiFused
            | Backend::MpiFusedSimd { .. } => false,
            Backend::Threaded
            | Backend::SimdThreaded { .. }
            | Backend::Simt
            | Backend::Fused
            | Backend::FusedSimt
            | Backend::FusedSimd { .. }
            | Backend::Tiled
            | Backend::TiledSimd { .. } => true,
        }
    }

    /// Vector width of the backend's lane bodies (1 for scalar shapes;
    /// the SIMT emulation's lock-step width is a work-group parameter,
    /// not a register shape, so it reports 1 too).
    pub fn lanes(self) -> usize {
        match self {
            Backend::Simd { lanes }
            | Backend::SimdThreaded { lanes }
            | Backend::FusedSimd { lanes }
            | Backend::MpiFusedSimd { lanes }
            | Backend::TiledSimd { lanes } => lanes,
            Backend::SimdScheme { .. } => 4,
            _ => 1,
        }
    }

    /// `true` for the deferred-execution (`ump_lazy` chain) backends.
    pub fn is_fused(self) -> bool {
        matches!(
            self,
            Backend::Fused
                | Backend::FusedSimt
                | Backend::FusedSimd { .. }
                | Backend::MpiFused
                | Backend::MpiFusedSimd { .. }
                | Backend::Tiled
                | Backend::TiledSimd { .. }
        )
    }

    /// `true` for the message-passing (multi-rank) backends.
    pub fn is_distributed(self) -> bool {
        matches!(self, Backend::MpiFused | Backend::MpiFusedSimd { .. })
    }

    /// Rank count a registry entry runs at in the conformance matrix and
    /// the smoke sweep (1 for every shared-memory shape). The `run_mpi_*`
    /// drivers accept any rank count; 2 is the smallest configuration
    /// that exercises real halo traffic.
    pub fn ranks(self) -> usize {
        if self.is_distributed() {
            2
        } else {
            1
        }
    }

    /// The coloring scheme the backend's indirect-increment loop uses.
    pub fn scheme(self) -> Scheme {
        match self {
            Backend::SimdScheme { scheme } => scheme,
            _ => Scheme::TwoLevel,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn registry_covers_every_shape_once() {
        let all = Backend::all();
        assert!(all.len() >= 20, "registry shrank: {}", all.len());
        let names: HashSet<String> = all.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), all.len(), "duplicate backend names");
        // the acceptance shapes are all present
        for required in [
            "seq",
            "threaded",
            "simd4",
            "simd8",
            "simd_threaded4",
            "simd_threaded8",
            "simd_scheme_two_level",
            "simt",
            "fused",
            "fused_simt",
            "fused_simd4",
            "fused_simd8",
            "mpi_fused",
            "mpi_fused_simd4",
            "mpi_fused_simd8",
            "tiled",
            "tiled_simd4",
            "tiled_simd8",
        ] {
            assert!(names.contains(required), "missing {required}");
        }
    }

    #[test]
    fn names_parse_back_to_themselves() {
        for b in Backend::all() {
            assert_eq!(Backend::parse(&b.name()), Some(b), "{b}");
        }
        assert_eq!(Backend::parse("bogus"), None);
    }

    #[test]
    fn capability_flags_are_consistent() {
        assert!(!Backend::Seq.needs_pool());
        assert!(!Backend::Simd { lanes: 4 }.needs_pool());
        assert!(Backend::Threaded.needs_pool());
        assert!(Backend::FusedSimd { lanes: 8 }.needs_pool());
        assert_eq!(Backend::FusedSimd { lanes: 8 }.lanes(), 8);
        assert_eq!(Backend::Threaded.lanes(), 1);
        assert!(Backend::FusedSimd { lanes: 4 }.is_fused());
        assert!(!Backend::Simt.is_fused());
        assert!(Backend::MpiFused.is_fused());
        assert!(Backend::MpiFused.is_distributed());
        assert!(!Backend::MpiFused.needs_pool(), "ranks own their pools");
        assert_eq!(Backend::MpiFused.ranks(), 2);
        assert_eq!(Backend::MpiFusedSimd { lanes: 8 }.lanes(), 8);
        assert!(!Backend::Fused.is_distributed());
        assert_eq!(Backend::Threaded.ranks(), 1);
        assert!(Backend::Tiled.needs_pool(), "tile sweeps dispatch rounds");
        assert!(Backend::Tiled.is_fused() && !Backend::Tiled.is_distributed());
        assert_eq!(Backend::Tiled.lanes(), 1);
        assert_eq!(Backend::TiledSimd { lanes: 4 }.lanes(), 4);
        assert!(Backend::TiledSimd { lanes: 8 }.needs_pool());
        assert_eq!(
            Backend::SimdScheme {
                scheme: Scheme::FullPermute
            }
            .scheme(),
            Scheme::FullPermute
        );
    }
}
