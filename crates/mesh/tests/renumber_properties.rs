//! Property tests for the renumbering layer: `rcm_order` must always
//! produce a true permutation whose inverse round-trips, and — with the
//! identity-fallback guard — must never increase CSR bandwidth, on
//! arbitrary (shuffled, perturbed, disconnected) meshes.

use proptest::prelude::*;
use ump_mesh::dual::node_graph;
use ump_mesh::generators::{perturbed_quads, quad_channel};
use ump_mesh::renumber::{
    bandwidth, lane_local_edge_order, order_to_perm, perm_to_order, rcm_order, renumber_nodes,
    shared_cell_fraction,
};
use ump_mesh::SplitMix64;

proptest! {
    #[test]
    fn rcm_round_trips_and_never_increases_bandwidth(
        nx in 2usize..12,
        ny in 2usize..9,
        seed in 0u64..1u64 << 32,
    ) {
        // arbitrary starting labels: shuffle the node numbering first
        let mut m = quad_channel(nx, ny).mesh;
        let mut shuffle: Vec<u32> = (0..m.n_nodes() as u32).collect();
        SplitMix64::new(seed).shuffle(&mut shuffle);
        renumber_nodes(&mut m, &shuffle);
        let g = node_graph(&m);

        let order = rcm_order(&g);
        // permutation round-trip: order -> perm -> order is the identity
        let perm = order_to_perm(&order);
        prop_assert_eq!(&perm_to_order(&perm), &order);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.rows() as u32).collect::<Vec<_>>());

        // never worse than the labels we started from
        let ident: Vec<u32> = (0..g.rows() as u32).collect();
        prop_assert!(bandwidth(&g, &perm) <= bandwidth(&g, &ident));
    }

    #[test]
    fn rcm_is_deterministic_on_perturbed_meshes(
        nx in 2usize..9,
        ny in 2usize..7,
        seed in 0u64..1u64 << 20,
    ) {
        let m = perturbed_quads(nx, ny, 0.2, seed);
        let g = node_graph(&m);
        prop_assert_eq!(rcm_order(&g), rcm_order(&g));
    }

    #[test]
    fn lane_local_order_permutes_and_does_not_hurt(
        nx in 2usize..10,
        ny in 2usize..8,
        seed in 0u64..1u64 << 32,
    ) {
        let mut m = quad_channel(nx, ny).mesh;
        let mut shuffle: Vec<u32> = (0..m.n_edges() as u32).collect();
        SplitMix64::new(seed).shuffle(&mut shuffle);
        ump_mesh::renumber::reorder_edges(&mut m, &shuffle);

        let order = lane_local_edge_order(&m.edge2cell);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..m.n_edges() as u32).collect::<Vec<_>>());

        let before = shared_cell_fraction(&m.edge2cell);
        let (b, a) = ump_mesh::renumber::lane_localize_edges(&mut m);
        prop_assert_eq!(b, before);
        prop_assert!(a >= before);
        m.validate().unwrap();
    }
}
