//! The 2-D finite-volume mesh and its derivation from cell connectivity.
//!
//! Airfoil and Volna both iterate over four sets — nodes, interior edges,
//! boundary edges, cells — connected by `edge→node`, `edge→cell`,
//! `bedge→node`, `bedge→cell` and `cell→node` maps (paper Fig. 2, Tables
//! II/III). Mesh inputs only supply node coordinates and cell→node
//! connectivity; [`Mesh2d::from_cells`] derives the edge sets by pairing
//! cell sides, exactly as OP2 application setup code does.

use std::collections::HashMap;

use crate::topology::MapTable;

/// A 2-D unstructured mesh with derived edge connectivity.
#[derive(Clone, Debug)]
pub struct Mesh2d {
    /// Node coordinates.
    pub node_xy: Vec<[f64; 2]>,
    /// Cell→node connectivity (arity 3 for triangles, 4 for quads),
    /// counter-clockwise winding.
    pub cell2node: MapTable,
    /// Interior-edge→node connectivity (arity 2). Edge node order is the
    /// *reverse* of the first adjacent cell's winding, so the directed
    /// edge `a → b` has `edge2cell[0]` on its **right** — the orientation
    /// OP2's Airfoil kernels assume (`res1 += f` drains the right cell,
    /// and at walls `res1[1] += p·dy` is the outward pressure force).
    pub edge2node: MapTable,
    /// Interior-edge→cell connectivity (arity 2): `[left, right]`.
    pub edge2cell: MapTable,
    /// Boundary-edge→node connectivity (arity 2), reverse winding of its
    /// only cell (cell on the right, outward normal `(dy, -dx)` for
    /// `d = a - b`).
    pub bedge2node: MapTable,
    /// Boundary-edge→cell connectivity (arity 1).
    pub bedge2cell: MapTable,
}

impl Mesh2d {
    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.node_xy.len()
    }
    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.cell2node.from_size
    }
    /// Number of interior edges.
    pub fn n_edges(&self) -> usize {
        self.edge2node.from_size
    }
    /// Number of boundary edges.
    pub fn n_bedges(&self) -> usize {
        self.bedge2node.from_size
    }
    /// Nodes per cell (3 or 4).
    pub fn cell_arity(&self) -> usize {
        self.cell2node.dim
    }

    /// Derive the full mesh from node coordinates and cell→node
    /// connectivity.
    ///
    /// Pairs up cell sides on their (unordered) node pair: a side seen by
    /// two cells becomes an interior edge, a side seen once becomes a
    /// boundary edge. Side pairing is sort-based for determinism; edges
    /// are emitted ordered by their first-touching cell, which preserves
    /// the locality of the incoming cell numbering.
    ///
    /// # Panics
    /// When a node pair is shared by more than two cells (non-manifold
    /// input).
    pub fn from_cells(node_xy: Vec<[f64; 2]>, cell2node: MapTable) -> Mesh2d {
        let n_nodes = node_xy.len();
        assert_eq!(cell2node.to_size, n_nodes, "cell2node target size mismatch");
        let arity = cell2node.dim;
        assert!(arity == 3 || arity == 4, "only tri/quad meshes supported");
        let n_cells = cell2node.from_size;

        // side key -> (cell, oriented (a, b)) of first occurrence
        let mut open: HashMap<(i32, i32), (u32, i32, i32)> =
            HashMap::with_capacity(n_cells * arity);
        // (first_cell, a, b, second_cell) for interior edges; emitted in
        // first-seen order for locality.
        let mut interior: Vec<(u32, i32, i32, u32)> = Vec::new();

        for c in 0..n_cells {
            let row = cell2node.row(c);
            for s in 0..arity {
                let a = row[s];
                let b = row[(s + 1) % arity];
                assert_ne!(a, b, "degenerate cell side in cell {c}");
                let key = (a.min(b), a.max(b));
                match open.remove(&key) {
                    None => {
                        open.insert(key, (c as u32, a, b));
                    }
                    Some((c0, a0, b0)) => {
                        interior.push((c0, a0, b0, c as u32));
                        debug_assert!(
                            (a0, b0) == (b, a) || (a0, b0) == (a, b),
                            "inconsistent side orientation between cells {c0} and {c}"
                        );
                    }
                }
            }
        }

        interior.sort_unstable_by_key(|&(c0, a, b, _)| (c0, a, b));
        let mut boundary: Vec<(u32, i32, i32)> = open
            .into_iter()
            .map(|((_min, _max), (c, a, b))| (c, a, b))
            .collect();
        boundary.sort_unstable_by_key(|&(c, a, b)| (c, a, b));

        let n_edges = interior.len();
        let n_bedges = boundary.len();

        let mut e2n = Vec::with_capacity(n_edges * 2);
        let mut e2c = Vec::with_capacity(n_edges * 2);
        for &(c0, a, b, c1) in &interior {
            // reversed winding of c0 puts c0 on the right of the edge
            e2n.push(b);
            e2n.push(a);
            e2c.push(c0 as i32);
            e2c.push(c1 as i32);
        }
        let mut be2n = Vec::with_capacity(n_bedges * 2);
        let mut be2c = Vec::with_capacity(n_bedges);
        for &(c, a, b) in &boundary {
            be2n.push(b);
            be2n.push(a);
            be2c.push(c as i32);
        }

        Mesh2d {
            node_xy,
            cell2node,
            edge2node: MapTable::new("edge2node", n_edges, n_nodes, 2, e2n),
            edge2cell: MapTable::new("edge2cell", n_edges, n_cells, 2, e2c),
            bedge2node: MapTable::new("bedge2node", n_bedges, n_nodes, 2, be2n),
            bedge2cell: MapTable::new("bedge2cell", n_bedges, n_cells, 1, be2c),
        }
    }

    /// Signed area of cell `c` (shoelace; positive for CCW winding).
    pub fn cell_area(&self, c: usize) -> f64 {
        let row = self.cell2node.row(c);
        let mut acc = 0.0;
        for s in 0..row.len() {
            let [x0, y0] = self.node_xy[row[s] as usize];
            let [x1, y1] = self.node_xy[row[(s + 1) % row.len()] as usize];
            acc += x0 * y1 - x1 * y0;
        }
        0.5 * acc
    }

    /// Centroid of cell `c` (vertex average — adequate for partitioning).
    pub fn cell_centroid(&self, c: usize) -> [f64; 2] {
        let row = self.cell2node.row(c);
        let mut cx = 0.0;
        let mut cy = 0.0;
        for &n in row {
            cx += self.node_xy[n as usize][0];
            cy += self.node_xy[n as usize][1];
        }
        let inv = 1.0 / row.len() as f64;
        [cx * inv, cy * inv]
    }

    /// Euler characteristic `V - E + F` counting interior and boundary
    /// edges and the mesh cells (not the outer face). A simply-connected
    /// planar mesh gives 1.
    pub fn euler_characteristic(&self) -> i64 {
        self.n_nodes() as i64 - (self.n_edges() + self.n_bedges()) as i64 + self.n_cells() as i64
    }

    /// Structural validation: map invariants, edge/cell consistency, and
    /// positive cell areas.
    pub fn validate(&self) -> Result<(), String> {
        self.cell2node.validate()?;
        self.edge2node.validate()?;
        self.edge2cell.validate()?;
        self.bedge2node.validate()?;
        self.bedge2cell.validate()?;
        for e in 0..self.n_edges() {
            let c = self.edge2cell.row(e);
            if c[0] == c[1] {
                return Err(format!("edge {e} connects cell {} to itself", c[0]));
            }
        }
        for c in 0..self.n_cells() {
            let a = self.cell_area(c);
            if a <= 0.0 {
                return Err(format!("cell {c} has non-positive area {a}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×1 quad strip: 6 nodes, 2 cells, 1 interior edge, 6 boundary edges.
    ///
    /// ```text
    /// 3---4---5
    /// | 0 | 1 |
    /// 0---1---2
    /// ```
    fn two_quads() -> Mesh2d {
        let nodes = vec![
            [0.0, 0.0],
            [1.0, 0.0],
            [2.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [2.0, 1.0],
        ];
        let c2n = MapTable::new("cell2node", 2, 6, 4, vec![0, 1, 4, 3, 1, 2, 5, 4]);
        Mesh2d::from_cells(nodes, c2n)
    }

    #[test]
    fn two_quad_strip_topology() {
        let m = two_quads();
        assert_eq!(m.n_nodes(), 6);
        assert_eq!(m.n_cells(), 2);
        assert_eq!(m.n_edges(), 1);
        assert_eq!(m.n_bedges(), 6);
        assert_eq!(m.euler_characteristic(), 1);
        m.validate().unwrap();

        // The one interior edge joins nodes 1-4 and cells 0,1.
        assert_eq!(m.edge2cell.row(0), &[0, 1]);
        let mut en = m.edge2node.row(0).to_vec();
        en.sort_unstable();
        assert_eq!(en, vec![1, 4]);
    }

    #[test]
    fn interior_edge_puts_first_cell_on_the_right() {
        let m = two_quads();
        // cell 0's winding traverses its side through nodes {1,4} as
        // 1 -> 4; the stored edge is the reverse, 4 -> 1, so that the
        // directed edge has cell 0 on its right.
        assert_eq!(m.edge2node.row(0), &[4, 1]);
        // cross product check: for edge a->b with right cell c, the cell
        // centroid must lie right of the direction, i.e.
        // cross(b - a, centroid - a) < 0.
        let a = m.node_xy[m.edge2node.at(0, 0)];
        let b = m.node_xy[m.edge2node.at(0, 1)];
        let c = m.cell_centroid(m.edge2cell.at(0, 0));
        let cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
        assert!(cross < 0.0, "first cell must be on the right");
    }

    #[test]
    fn boundary_edge_puts_its_cell_on_the_right() {
        let m = two_quads();
        for be in 0..m.n_bedges() {
            let a = m.node_xy[m.bedge2node.at(be, 0)];
            let b = m.node_xy[m.bedge2node.at(be, 1)];
            let c = m.cell_centroid(m.bedge2cell.at(be, 0));
            let cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
            assert!(cross < 0.0, "bedge {be}: cell must be on the right");
        }
    }

    #[test]
    fn areas_and_centroids() {
        let m = two_quads();
        assert!((m.cell_area(0) - 1.0).abs() < 1e-12);
        assert!((m.cell_area(1) - 1.0).abs() < 1e-12);
        let c = m.cell_centroid(1);
        assert!((c[0] - 1.5).abs() < 1e-12 && (c[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn triangle_pair_topology() {
        // unit square split along the diagonal 0-2:
        // nodes 0(0,0) 1(1,0) 2(1,1) 3(0,1); tris (0,1,2) and (0,2,3)
        let nodes = vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        let c2n = MapTable::new("cell2node", 2, 4, 3, vec![0, 1, 2, 0, 2, 3]);
        let m = Mesh2d::from_cells(nodes, c2n);
        assert_eq!(m.n_edges(), 1);
        assert_eq!(m.n_bedges(), 4);
        assert_eq!(m.euler_characteristic(), 1);
        m.validate().unwrap();
        assert!((m.cell_area(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "degenerate cell side")]
    fn degenerate_cell_rejected() {
        let nodes = vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]];
        let c2n = MapTable::new("cell2node", 1, 3, 3, vec![0, 0, 2]);
        Mesh2d::from_cells(nodes, c2n);
    }

    #[test]
    fn clockwise_cell_fails_validation() {
        let nodes = vec![[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]];
        // clockwise winding -> negative area
        let c2n = MapTable::new("cell2node", 1, 4, 4, vec![0, 3, 2, 1]);
        let m = Mesh2d::from_cells(nodes, c2n);
        assert!(m.validate().is_err());
    }

    #[test]
    fn boundary_edges_reference_their_only_cell() {
        let m = two_quads();
        for be in 0..m.n_bedges() {
            let c = m.bedge2cell.at(be, 0);
            assert!(c < m.n_cells());
            // the bedge's nodes must be nodes of that cell
            let cell_nodes = m.cell2node.row(c);
            for &n in m.bedge2node.row(be) {
                assert!(cell_nodes.contains(&n));
            }
        }
    }
}
