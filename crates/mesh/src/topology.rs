//! Set-to-set mapping tables (OP2's `op_map`).
//!
//! A [`MapTable`] is the connectivity building block of the abstraction:
//! "connectivity from one set to another, with a given arity, e.g. each
//! edge connects to two vertices" (paper §3). Storage is row-major
//! (`data[e*dim + j]` = the `j`-th target of element `e`), matching the
//! AoS layout the CPU backends use; the SIMT/GPU backend transposes on
//! the fly.

use crate::Csr;

/// A fixed-arity mapping between two sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapTable {
    /// Human-readable name (`"edge2node"`, …) used in diagnostics.
    pub name: String,
    /// Size of the *from* set (number of rows).
    pub from_size: usize,
    /// Size of the *to* set (bound on stored indices).
    pub to_size: usize,
    /// Arity: number of targets per element.
    pub dim: usize,
    /// Row-major index table, `from_size * dim` entries, each in
    /// `[0, to_size)`.
    pub data: Vec<i32>,
}

impl MapTable {
    /// Construct and validate a mapping.
    ///
    /// # Panics
    /// When `data.len() != from_size * dim` or an index is out of range.
    pub fn new(
        name: impl Into<String>,
        from_size: usize,
        to_size: usize,
        dim: usize,
        data: Vec<i32>,
    ) -> MapTable {
        let m = MapTable {
            name: name.into(),
            from_size,
            to_size,
            dim,
            data,
        };
        m.validate()
            .unwrap_or_else(|e| panic!("MapTable {}: {e}", m.name));
        m
    }

    /// Check structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.data.len() != self.from_size * self.dim {
            return Err(format!(
                "data length {} != from_size {} * dim {}",
                self.data.len(),
                self.from_size,
                self.dim
            ));
        }
        for (i, &v) in self.data.iter().enumerate() {
            if v < 0 || v as usize >= self.to_size {
                return Err(format!(
                    "entry {i} (element {}, slot {}) = {v} out of range [0,{})",
                    i / self.dim.max(1),
                    i % self.dim.max(1),
                    self.to_size
                ));
            }
        }
        Ok(())
    }

    /// The targets of element `e`.
    #[inline]
    pub fn row(&self, e: usize) -> &[i32] {
        &self.data[e * self.dim..(e + 1) * self.dim]
    }

    /// Single target lookup: `j`-th target of element `e`.
    #[inline]
    pub fn at(&self, e: usize, j: usize) -> usize {
        debug_assert!(j < self.dim);
        self.data[e * self.dim + j] as usize
    }

    /// Invert the mapping into CSR form over the *to* set: row `t` lists
    /// every `from` element that references `t`.
    ///
    /// This reverse map drives conflict-graph construction for coloring
    /// ("which edges write into the same cell") and halo construction for
    /// the message-passing backend ("which foreign edges touch my cells").
    pub fn invert(&self) -> Csr {
        let pairs = self
            .data
            .iter()
            .enumerate()
            .map(|(i, &t)| (t as u32, (i / self.dim) as i32));
        let mut csr = Csr::from_pairs(self.to_size, pairs);
        csr.sort_rows();
        csr.dedup_rows();
        csr
    }

    /// Renumber the *targets* through `perm` (`new_index = perm[old_index]`).
    pub fn permute_targets(&mut self, perm: &[u32]) {
        assert_eq!(perm.len(), self.to_size);
        for v in &mut self.data {
            *v = perm[*v as usize] as i32;
        }
    }

    /// Reorder the *rows* so that new element `i` is old element
    /// `order[i]`.
    pub fn reorder_rows(&mut self, order: &[u32]) {
        assert_eq!(order.len(), self.from_size);
        let mut out = Vec::with_capacity(self.data.len());
        for &old in order {
            out.extend_from_slice(self.row(old as usize));
        }
        self.data = out;
    }

    /// Bytes occupied by the index table (counted in the Table IV memory
    /// footprints; the paper's "useful bytes" metric excludes them).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge2node_square() -> MapTable {
        // 4 nodes in a square, 4 edges around it
        MapTable::new("edge2node", 4, 4, 2, vec![0, 1, 1, 2, 2, 3, 3, 0])
    }

    #[test]
    fn rows_and_lookup() {
        let m = edge2node_square();
        assert_eq!(m.row(1), &[1, 2]);
        assert_eq!(m.at(3, 1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        MapTable::new("bad", 1, 2, 2, vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn wrong_length_rejected() {
        MapTable::new("bad", 2, 2, 2, vec![0, 1, 1]);
    }

    #[test]
    fn inversion_lists_referencing_elements() {
        let m = edge2node_square();
        let inv = m.invert();
        assert_eq!(inv.rows(), 4);
        // node 0 is touched by edges 0 and 3
        assert_eq!(inv.row(0), &[0, 3]);
        assert_eq!(inv.row(2), &[1, 2]);
    }

    #[test]
    fn inversion_dedups_multi_slot_references() {
        // degenerate edge referencing the same node twice
        let m = MapTable::new("loop", 1, 2, 2, vec![1, 1]);
        let inv = m.invert();
        assert_eq!(inv.row(1), &[0]);
        assert!(inv.row(0).is_empty());
    }

    #[test]
    fn permute_targets_relabels() {
        let mut m = edge2node_square();
        // swap node labels 0 <-> 3
        m.permute_targets(&[3, 1, 2, 0]);
        assert_eq!(m.row(0), &[3, 1]);
        assert_eq!(m.row(3), &[0, 3]);
        m.validate().unwrap();
    }

    #[test]
    fn reorder_rows_permutes_elements() {
        let mut m = edge2node_square();
        m.reorder_rows(&[2, 3, 0, 1]);
        assert_eq!(m.row(0), &[2, 3]);
        assert_eq!(m.row(2), &[0, 1]);
    }

    #[test]
    fn byte_accounting() {
        let m = edge2node_square();
        assert_eq!(m.bytes(), 8 * 4);
    }
}
