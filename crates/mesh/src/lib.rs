//! # ump-mesh — unstructured mesh substrate
//!
//! The OP2 abstraction (paper §3) describes a mesh as *sets* (nodes, edges,
//! cells, boundary edges), *mappings* between sets, and *data* on sets.
//! This crate provides the concrete substrate behind that abstraction:
//!
//! * [`MapTable`] — a fixed-arity mapping between two sets (OP2's `op_map`),
//!   with validation and CSR inversion,
//! * [`Csr`] — compressed sparse row adjacency used by the coloring and
//!   partitioning crates,
//! * [`Mesh2d`] — a two-dimensional finite-volume mesh: node coordinates,
//!   cell→node connectivity, and *derived* edge sets (interior edges with
//!   `edge→node`/`edge→cell` maps, boundary edges with `bedge→node`/
//!   `bedge→cell`), exactly the sets and maps the Airfoil and Volna
//!   applications declare,
//! * generators for the two benchmark families:
//!   [`generators::quad_channel`] (Airfoil's structured-quad-stored-as-
//!   unstructured mesh; the paper's 720k/2.8M-cell grids are
//!   1200×600 / 2400×1200 instances) and [`generators::tri_coastal`]
//!   (Volna's triangle mesh with synthetic coastal bathymetry replacing
//!   the proprietary NE-Pacific survey data — see DESIGN.md substitutions),
//! * [`renumber`] — reverse Cuthill–McKee reordering (OP2 renumbers for
//!   locality before forming mini-partitions),
//! * [`stats`] — set sizes and memory footprints (Table IV),
//! * [`io`] — a small self-describing binary format on top of `bytes`.

#![deny(missing_docs)]

pub mod csr;
pub mod dual;
pub mod generators;
pub mod io;
pub mod mesh;
pub mod renumber;
pub mod rng;
pub mod stats;
pub mod topology;

pub use csr::Csr;
pub use mesh::Mesh2d;
pub use rng::SplitMix64;
pub use stats::MeshStats;
pub use topology::MapTable;
