//! Adjacency graphs derived from mesh connectivity.
//!
//! The partitioner works on the *dual graph* (cells adjacent through
//! shared edges — what PT-Scotch partitions in OP2's MPI backend), and
//! RCM renumbering works on the node graph (nodes adjacent through
//! edges).

use crate::csr::Csr;
use crate::mesh::Mesh2d;
use crate::topology::MapTable;

/// Cell dual graph: cells are adjacent when they share an interior edge.
pub fn cell_dual(mesh: &Mesh2d) -> Csr {
    let mut pairs = Vec::with_capacity(mesh.n_edges() * 2);
    for e in 0..mesh.n_edges() {
        let c = mesh.edge2cell.row(e);
        pairs.push((c[0] as u32, c[1]));
        pairs.push((c[1] as u32, c[0]));
    }
    let mut csr = Csr::from_pairs(mesh.n_cells(), pairs);
    csr.sort_rows();
    csr.dedup_rows();
    csr
}

/// Node graph: nodes are adjacent when joined by an (interior or
/// boundary) edge.
pub fn node_graph(mesh: &Mesh2d) -> Csr {
    let mut pairs = Vec::with_capacity((mesh.n_edges() + mesh.n_bedges()) * 2);
    let mut push_map = |m: &MapTable| {
        for e in 0..m.from_size {
            let n = m.row(e);
            pairs.push((n[0] as u32, n[1]));
            pairs.push((n[1] as u32, n[0]));
        }
    };
    push_map(&mesh.edge2node);
    push_map(&mesh.bedge2node);
    let mut csr = Csr::from_pairs(mesh.n_nodes(), pairs);
    csr.sort_rows();
    csr.dedup_rows();
    csr
}

/// Generic symmetric adjacency over the *from* set of any arity-2 map:
/// two `from` elements are adjacent when they share a target. This is the
/// conflict graph underlying loop coloring ("edges that increment the
/// same cell must get different colors").
pub fn share_target_graph(map: &MapTable) -> Csr {
    let inv = map.invert();
    let mut pairs = Vec::new();
    for t in 0..inv.rows() {
        let elems = inv.row(t);
        for (i, &a) in elems.iter().enumerate() {
            for &b in &elems[i + 1..] {
                pairs.push((a as u32, b));
                pairs.push((b as u32, a));
            }
        }
    }
    let mut csr = Csr::from_pairs(map.from_size, pairs);
    csr.sort_rows();
    csr.dedup_rows();
    csr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::quad_channel;

    #[test]
    fn dual_graph_of_grid_has_lattice_degrees() {
        let m = quad_channel(4, 3).mesh;
        let dual = cell_dual(&m);
        dual.validate(Some(m.n_cells())).unwrap();
        assert_eq!(dual.rows(), 12);
        // corner cells have 2 neighbors, edge cells 3, interior 4
        let degrees: Vec<usize> = (0..dual.rows()).map(|c| dual.row(c).len()).collect();
        assert_eq!(*degrees.iter().min().unwrap(), 2);
        assert_eq!(*degrees.iter().max().unwrap(), 4);
        let total: usize = degrees.iter().sum();
        assert_eq!(total, 2 * m.n_edges());
    }

    #[test]
    fn dual_graph_is_symmetric() {
        let m = quad_channel(5, 4).mesh;
        let dual = cell_dual(&m);
        for c in 0..dual.rows() {
            for &n in dual.row(c) {
                assert!(dual.row(n as usize).contains(&(c as i32)));
            }
        }
    }

    #[test]
    fn node_graph_matches_grid_structure() {
        let m = quad_channel(3, 3).mesh;
        let g = node_graph(&m);
        assert_eq!(g.rows(), 16);
        // grid interior node has 4 neighbors, corner 2
        let degrees: Vec<usize> = (0..g.rows()).map(|n| g.row(n).len()).collect();
        assert_eq!(*degrees.iter().min().unwrap(), 2);
        assert_eq!(*degrees.iter().max().unwrap(), 4);
    }

    #[test]
    fn share_target_graph_links_edges_through_cells() {
        let m = quad_channel(3, 1).mesh;
        let g = share_target_graph(&m.edge2cell);
        g.validate(Some(m.n_edges())).unwrap();
        // every interior edge of a 3x1 strip shares a cell with the other:
        // edges (0-1) and (1-2) both touch cell 1
        for e in 0..g.rows() {
            for &n in g.row(e) {
                // adjacency implies a genuinely shared cell
                let a = m.edge2cell.row(e);
                let b = m.edge2cell.row(n as usize);
                assert!(a.iter().any(|x| b.contains(x)));
            }
        }
    }
}
