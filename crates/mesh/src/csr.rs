//! Compressed sparse row adjacency.
//!
//! The coloring, partitioning and halo-construction passes all consume
//! element adjacency in CSR form: `offsets[i]..offsets[i+1]` indexes the
//! neighbor list of element `i` in `values`.

/// CSR adjacency structure over `n = offsets.len() - 1` rows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// Row start offsets; `offsets.len() == rows + 1`, monotone,
    /// `offsets[rows] == values.len()`.
    pub offsets: Vec<u32>,
    /// Concatenated neighbor/value lists.
    pub values: Vec<i32>,
}

impl Csr {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The value slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[i32] {
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Build a CSR from per-row pair lists: `pairs` holds `(row, value)`
    /// entries in any order.
    pub fn from_pairs(rows: usize, pairs: impl IntoIterator<Item = (u32, i32)>) -> Csr {
        let mut counts = vec![0u32; rows + 1];
        let pairs: Vec<(u32, i32)> = pairs.into_iter().collect();
        for &(r, _) in &pairs {
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut values = vec![0i32; pairs.len()];
        let mut cursor = counts.clone();
        for (r, v) in pairs {
            let slot = cursor[r as usize] as usize;
            values[slot] = v;
            cursor[r as usize] += 1;
        }
        Csr {
            offsets: counts,
            values,
        }
    }

    /// Sort the entries of each row in place (canonical form for tests and
    /// deterministic iteration).
    pub fn sort_rows(&mut self) {
        for i in 0..self.rows() {
            let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            self.values[s..e].sort_unstable();
        }
    }

    /// Remove duplicate entries within each row (requires sorted rows).
    pub fn dedup_rows(&mut self) {
        let rows = self.rows();
        let mut new_offsets = Vec::with_capacity(rows + 1);
        let mut new_values = Vec::with_capacity(self.values.len());
        new_offsets.push(0u32);
        for i in 0..rows {
            let row = self.row(i);
            let mut last: Option<i32> = None;
            for &v in row {
                if last != Some(v) {
                    new_values.push(v);
                    last = Some(v);
                }
            }
            new_offsets.push(new_values.len() as u32);
        }
        self.offsets = new_offsets;
        self.values = new_values;
    }

    /// Validate structural invariants; returns an error description on
    /// failure. Used by `debug_assert!` call sites.
    pub fn validate(&self, value_bound: Option<usize>) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets empty".into());
        }
        if self.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets not monotone".into());
            }
        }
        if *self.offsets.last().unwrap() as usize != self.values.len() {
            return Err("last offset != values.len()".into());
        }
        if let Some(bound) = value_bound {
            for &v in &self.values {
                if v < 0 || v as usize >= bound {
                    return Err(format!("value {v} out of bound {bound}"));
                }
            }
        }
        Ok(())
    }

    /// Maximum row degree.
    pub fn max_degree(&self) -> usize {
        (0..self.rows())
            .map(|i| self.row(i).len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_groups_by_row() {
        let csr = Csr::from_pairs(3, vec![(2, 20), (0, 1), (2, 21), (0, 2), (2, 22)]);
        assert_eq!(csr.rows(), 3);
        assert_eq!(csr.nnz(), 5);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[i32]);
        assert_eq!(csr.row(2), &[20, 21, 22]);
        csr.validate(None).unwrap();
    }

    #[test]
    fn sort_and_dedup() {
        let mut csr = Csr::from_pairs(2, vec![(0, 3), (0, 1), (0, 3), (1, 5), (1, 5), (1, 5)]);
        csr.sort_rows();
        csr.dedup_rows();
        assert_eq!(csr.row(0), &[1, 3]);
        assert_eq!(csr.row(1), &[5]);
        csr.validate(Some(6)).unwrap();
    }

    #[test]
    fn validate_catches_breakage() {
        let good = Csr {
            offsets: vec![0, 1, 2],
            values: vec![0, 1],
        };
        good.validate(Some(2)).unwrap();
        let bad_bound = Csr {
            offsets: vec![0, 1, 2],
            values: vec![0, 7],
        };
        assert!(bad_bound.validate(Some(2)).is_err());
        let bad_mono = Csr {
            offsets: vec![0, 2, 1],
            values: vec![0, 1],
        };
        assert!(bad_mono.validate(None).is_err());
        let bad_tail = Csr {
            offsets: vec![0, 1, 3],
            values: vec![0, 1],
        };
        assert!(bad_tail.validate(None).is_err());
    }

    #[test]
    fn degrees() {
        let csr = Csr::from_pairs(3, vec![(0, 1), (1, 0), (1, 2), (1, 3)]);
        assert_eq!(csr.max_degree(), 3);
    }

    #[test]
    fn empty_rows_structure() {
        let csr = Csr::from_pairs(4, Vec::<(u32, i32)>::new());
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.nnz(), 0);
        for i in 0..4 {
            assert!(csr.row(i).is_empty());
        }
        csr.validate(Some(0)).unwrap();
    }
}
