//! Deterministic pseudo-random numbers for mesh perturbation and tests.
//!
//! A tiny SplitMix64 generator: no external dependency, bit-reproducible
//! across platforms, which matters because plan construction and partition
//! results feed directly into the reproduced tables.

/// SplitMix64 PRNG (Steele, Lea, Flood 2014). Deterministic and `Copy`.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "next_below(0)");
        // 128-bit multiply rejection-free mapping (Lemire); bias is
        // negligible for the mesh sizes involved and determinism is what
        // we need.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.next_below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "seed 3 should permute");
    }
}
