//! Mesh statistics and memory-footprint accounting (paper Table IV).

use crate::mesh::Mesh2d;

/// Summary statistics of a mesh, including the quantities Table IV
/// reports (set sizes, memory footprint in single/double precision).
#[derive(Clone, Debug, PartialEq)]
pub struct MeshStats {
    /// Number of cells.
    pub cells: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Number of interior edges.
    pub edges: usize,
    /// Number of boundary edges.
    pub bedges: usize,
    /// Bounding box `[[xmin, ymin], [xmax, ymax]]`.
    pub bbox: [[f64; 2]; 2],
    /// Total mesh area.
    pub area: f64,
    /// Minimum cell area (quality indicator).
    pub min_cell_area: f64,
    /// Bytes of mapping tables (shared between precisions).
    pub map_bytes: usize,
}

impl MeshStats {
    /// Compute statistics for a mesh.
    pub fn compute(mesh: &Mesh2d) -> MeshStats {
        let mut bbox = [[f64::INFINITY; 2], [f64::NEG_INFINITY; 2]];
        for &[x, y] in &mesh.node_xy {
            bbox[0][0] = bbox[0][0].min(x);
            bbox[0][1] = bbox[0][1].min(y);
            bbox[1][0] = bbox[1][0].max(x);
            bbox[1][1] = bbox[1][1].max(y);
        }
        let mut area = 0.0;
        let mut min_cell_area = f64::INFINITY;
        for c in 0..mesh.n_cells() {
            let a = mesh.cell_area(c);
            area += a;
            min_cell_area = min_cell_area.min(a);
        }
        let map_bytes = mesh.cell2node.bytes()
            + mesh.edge2node.bytes()
            + mesh.edge2cell.bytes()
            + mesh.bedge2node.bytes()
            + mesh.bedge2cell.bytes();
        MeshStats {
            cells: mesh.n_cells(),
            nodes: mesh.n_nodes(),
            edges: mesh.n_edges(),
            bedges: mesh.n_bedges(),
            bbox,
            area,
            min_cell_area,
            map_bytes,
        }
    }

    /// Memory footprint of application data in bytes for a given word
    /// size, counting `words_per_cell` / `words_per_node` values as the
    /// applications allocate them (paper Table IV counts the `op_dat`s).
    ///
    /// Airfoil allocates 13 words per cell (q, qold: 4 each; res: 4;
    /// adt: 1) and 2 per node (x); Volna allocates 4+4+4+1 = 13 words per
    /// cell and 2 per node in its OP2 form (here: state, state_old, flux
    /// accumulators, bathymetry).
    pub fn dat_bytes(&self, word: usize, words_per_cell: usize, words_per_node: usize) -> usize {
        word * (self.cells * words_per_cell + self.nodes * words_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::quad_channel;

    #[test]
    fn stats_of_small_channel() {
        let m = quad_channel(10, 4).mesh;
        let s = MeshStats::compute(&m);
        assert_eq!(s.cells, 40);
        assert_eq!(s.nodes, 55);
        assert_eq!(s.bedges, 28);
        assert!(s.min_cell_area > 0.0);
        assert!(s.area > 0.0);
        // channel spans x in [-2,3]
        assert!((s.bbox[0][0] + 2.0).abs() < 1e-12);
        assert!((s.bbox[1][0] - 3.0).abs() < 1e-12);
        assert!(s.map_bytes > 0);
    }

    #[test]
    fn channel_area_accounts_for_bump() {
        // Rectangle 5 x 2 = 10 minus bump area ∫0.1 sin²(πx) dx on [0,1]
        // = 0.05.
        let m = quad_channel(200, 80).mesh;
        let s = MeshStats::compute(&m);
        assert!(
            (s.area - (10.0 - 0.05)).abs() < 1e-3,
            "area {} should be ~9.95",
            s.area
        );
    }

    #[test]
    fn airfoil_paper_scale_footprint_is_tens_of_megabytes() {
        // At the paper's small scale (720k cells) Airfoil's dats total
        // 94(47) MB; check our accounting reproduces the same order with
        // the closed-form sizes rather than allocating 100 MB in a test.
        let cells = 720_000usize;
        let nodes = 721_801usize;
        let dp = 8 * (cells * 13 + nodes * 2);
        let sp = 4 * (cells * 13 + nodes * 2);
        assert!((80_000_000..110_000_000).contains(&dp), "dp = {dp}");
        assert_eq!(sp * 2, dp);
    }

    #[test]
    fn dat_bytes_formula() {
        let m = quad_channel(4, 4).mesh;
        let s = MeshStats::compute(&m);
        assert_eq!(s.dat_bytes(8, 13, 2), 8 * (16 * 13 + 25 * 2));
        assert_eq!(s.dat_bytes(4, 13, 2) * 2, s.dat_bytes(8, 13, 2));
    }
}
