//! Binary mesh serialization.
//!
//! A small self-describing format (magic, version, set sizes, raw arrays)
//! built on the `bytes` crate — the stand-in for OP2's HDF5 mesh files.
//! Little-endian throughout.

use std::fs::File;
use std::io::{self, Read as _, Write as _};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::mesh::Mesh2d;
use crate::topology::MapTable;

const MAGIC: u32 = 0x554D_504D; // "UMPM"
const VERSION: u32 = 1;

/// Serialize a mesh to a byte buffer.
pub fn encode(mesh: &Mesh2d) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        64 + mesh.n_nodes() * 16
            + (mesh.cell2node.data.len()
                + mesh.edge2node.data.len()
                + mesh.edge2cell.data.len()
                + mesh.bedge2node.data.len()
                + mesh.bedge2cell.data.len())
                * 4,
    );
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(mesh.n_nodes() as u64);
    buf.put_u64_le(mesh.n_cells() as u64);
    buf.put_u64_le(mesh.n_edges() as u64);
    buf.put_u64_le(mesh.n_bedges() as u64);
    buf.put_u32_le(mesh.cell_arity() as u32);
    for &[x, y] in &mesh.node_xy {
        buf.put_f64_le(x);
        buf.put_f64_le(y);
    }
    for m in [
        &mesh.cell2node,
        &mesh.edge2node,
        &mesh.edge2cell,
        &mesh.bedge2node,
        &mesh.bedge2cell,
    ] {
        for &v in &m.data {
            buf.put_i32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialize a mesh from a byte buffer.
pub fn decode(mut buf: impl Buf) -> io::Result<Mesh2d> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if buf.remaining() < 45 {
        return Err(bad("truncated header"));
    }
    if buf.get_u32_le() != MAGIC {
        return Err(bad("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(bad("unsupported version"));
    }
    let n_nodes = buf.get_u64_le() as usize;
    let n_cells = buf.get_u64_le() as usize;
    let n_edges = buf.get_u64_le() as usize;
    let n_bedges = buf.get_u64_le() as usize;
    let arity = buf.get_u32_le() as usize;
    if arity != 3 && arity != 4 {
        return Err(bad("bad cell arity"));
    }
    let need =
        n_nodes * 16 + 4 * (n_cells * arity + n_edges * 2 + n_edges * 2 + n_bedges * 2 + n_bedges);
    if buf.remaining() < need {
        return Err(bad("truncated body"));
    }
    let mut node_xy = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let x = buf.get_f64_le();
        let y = buf.get_f64_le();
        node_xy.push([x, y]);
    }
    let mut read_map = |name: &str, from: usize, to: usize, dim: usize| -> io::Result<MapTable> {
        let mut data = Vec::with_capacity(from * dim);
        for _ in 0..from * dim {
            data.push(buf.get_i32_le());
        }
        for &v in &data {
            if v < 0 || v as usize >= to {
                return Err(bad("map index out of range"));
            }
        }
        Ok(MapTable::new(name, from, to, dim, data))
    };
    let cell2node = read_map("cell2node", n_cells, n_nodes, arity)?;
    let edge2node = read_map("edge2node", n_edges, n_nodes, 2)?;
    let edge2cell = read_map("edge2cell", n_edges, n_cells, 2)?;
    let bedge2node = read_map("bedge2node", n_bedges, n_nodes, 2)?;
    let bedge2cell = read_map("bedge2cell", n_bedges, n_cells, 1)?;
    Ok(Mesh2d {
        node_xy,
        cell2node,
        edge2node,
        edge2cell,
        bedge2node,
        bedge2cell,
    })
}

/// Write a mesh to a file.
pub fn write_file(mesh: &Mesh2d, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = io::BufWriter::new(File::create(path)?);
    f.write_all(&encode(mesh))?;
    f.flush()
}

/// Read a mesh from a file.
pub fn read_file(path: impl AsRef<Path>) -> io::Result<Mesh2d> {
    let mut f = io::BufReader::new(File::open(path)?);
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{quad_channel, tri_coastal};

    #[test]
    fn roundtrip_quads() {
        let m = quad_channel(7, 4).mesh;
        let bytes = encode(&m);
        let back = decode(bytes).unwrap();
        assert_eq!(m.node_xy, back.node_xy);
        assert_eq!(m.cell2node, back.cell2node);
        assert_eq!(m.edge2cell, back.edge2cell);
        assert_eq!(m.bedge2cell, back.bedge2cell);
        back.validate().unwrap();
    }

    #[test]
    fn roundtrip_triangles() {
        let m = tri_coastal(5, 3).mesh;
        let back = decode(encode(&m)).unwrap();
        assert_eq!(back.cell_arity(), 3);
        assert_eq!(m.edge2node, back.edge2node);
        back.validate().unwrap();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let m = quad_channel(2, 2).mesh;
        let mut raw = encode(&m).to_vec();
        raw[0] ^= 0xFF;
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let m = quad_channel(2, 2).mesh;
        let raw = encode(&m).to_vec();
        for cut in [0usize, 10, 44, raw.len() - 1] {
            assert!(
                decode(Bytes::from(raw[..cut].to_vec())).is_err(),
                "cut {cut} should fail"
            );
        }
    }

    #[test]
    fn out_of_range_index_rejected() {
        let m = quad_channel(2, 2).mesh;
        let mut raw = encode(&m).to_vec();
        // corrupt the first cell2node entry (header 44 B + 9 nodes × 16 B)
        let off = 44 + m.n_nodes() * 16;
        raw[off..off + 4].copy_from_slice(&i32::MAX.to_le_bytes());
        assert!(decode(Bytes::from(raw)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ump_mesh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mesh.umpm");
        let m = quad_channel(3, 3).mesh;
        write_file(&m, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(m.node_xy, back.node_xy);
        std::fs::remove_file(&path).ok();
    }
}
