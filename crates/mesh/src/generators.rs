//! Benchmark mesh generators.
//!
//! The paper evaluates on three meshes (Table IV):
//!
//! | mesh          | cells     | nodes     | edges     |
//! |---------------|-----------|-----------|-----------|
//! | Airfoil small | 720,000   | 721,801   | 1,438,600 |
//! | Airfoil large | 2,880,000 | 2,883,601 | 5,757,200 |
//! | Volna         | 2,392,352 | 1,197,384 | 3,589,735 |
//!
//! The Airfoil mesh is a structured 1200×600 (resp. 2400×1200) quad grid
//! stored as an unstructured mesh; [`quad_channel`] reproduces its exact
//! set sizes and access structure with a channel-with-bump geometry
//! standing in for the original NACA0012 grid (see DESIGN.md). The Volna
//! mesh is a coastal triangle mesh; [`tri_coastal`] generates a triangle
//! grid of the same scale with synthetic shelf bathymetry and a Gaussian
//! tsunami source, replacing the proprietary NE-Pacific survey data.

use crate::mesh::Mesh2d;
use crate::rng::SplitMix64;
use crate::topology::MapTable;

/// Boundary condition tag: solid wall (reflective).
pub const BOUND_WALL: i32 = 0;
/// Boundary condition tag: far-field (freestream / open sea).
pub const BOUND_FARFIELD: i32 = 1;

/// An Airfoil-style test case: mesh plus per-boundary-edge condition tags
/// (the `p_bound` dat of the OP2 Airfoil benchmark).
#[derive(Clone, Debug)]
pub struct AirfoilCase {
    /// The quad mesh.
    pub mesh: Mesh2d,
    /// Per-boundary-edge tag: [`BOUND_WALL`] on the channel walls,
    /// [`BOUND_FARFIELD`] at inflow/outflow.
    pub bound: Vec<i32>,
}

/// A Volna-style test case: triangle mesh, still-water depth (bathymetry)
/// per cell, and the initial free-surface displacement of the tsunami
/// source.
#[derive(Clone, Debug)]
pub struct CoastalCase {
    /// The triangle mesh.
    pub mesh: Mesh2d,
    /// Still-water depth at each cell centroid (positive = under water).
    pub bathy_cell: Vec<f64>,
    /// Initial free-surface displacement η₀ at each cell centroid.
    pub eta0_cell: Vec<f64>,
}

/// Generate the Airfoil benchmark mesh: an `nx × ny` quad grid over a
/// channel `x ∈ [-2, 3]`, `y ∈ [bump(x), 2]` with a smooth circular-arc
/// style bump on the lower wall (the lifting-body substitute).
///
/// Paper scales: `quad_channel(1200, 600)` = the 720k "small" mesh,
/// `quad_channel(2400, 1200)` = the 2.8M "large" mesh.
pub fn quad_channel(nx: usize, ny: usize) -> AirfoilCase {
    assert!(nx >= 1 && ny >= 1);
    let (nxn, nyn) = (nx + 1, ny + 1);
    let bump = |x: f64| -> f64 {
        // smooth bump centred at x = 0.5, height 0.1, supported on [0, 1]
        if (0.0..=1.0).contains(&x) {
            0.1 * (std::f64::consts::PI * x).sin().powi(2)
        } else {
            0.0
        }
    };
    let mut node_xy = Vec::with_capacity(nxn * nyn);
    for j in 0..nyn {
        for i in 0..nxn {
            let x = -2.0 + 5.0 * i as f64 / nx as f64;
            let yb = bump(x);
            let y = yb + (2.0 - yb) * j as f64 / ny as f64;
            node_xy.push([x, y]);
        }
    }
    let node = |i: usize, j: usize| (j * nxn + i) as i32;
    let mut c2n = Vec::with_capacity(nx * ny * 4);
    for j in 0..ny {
        for i in 0..nx {
            // counter-clockwise quad
            c2n.extend_from_slice(&[
                node(i, j),
                node(i + 1, j),
                node(i + 1, j + 1),
                node(i, j + 1),
            ]);
        }
    }
    let mesh = Mesh2d::from_cells(
        node_xy,
        MapTable::new("cell2node", nx * ny, nxn * nyn, 4, c2n),
    );
    // Tag boundary edges: horizontal walls (top/bottom) vs vertical
    // far-field (inlet/outlet), decided by edge direction.
    let bound = (0..mesh.n_bedges())
        .map(|be| {
            let n = mesh.bedge2node.row(be);
            let a = mesh.node_xy[n[0] as usize];
            let b = mesh.node_xy[n[1] as usize];
            if (a[0] - b[0]).abs() > (a[1] - b[1]).abs() {
                BOUND_WALL // mostly-horizontal edge: channel wall
            } else {
                BOUND_FARFIELD // mostly-vertical edge: inflow/outflow
            }
        })
        .collect();
    AirfoilCase { mesh, bound }
}

/// Generate the Volna benchmark mesh: an `nx × ny` grid of squares each
/// split into two triangles over `[0, 100] × [0, 50]` (nondimensional km),
/// with synthetic shelf bathymetry and a Gaussian tsunami source offshore.
///
/// Paper scale: `tri_coastal(1096, 1092)` ≈ 2.39M triangles.
pub fn tri_coastal(nx: usize, ny: usize) -> CoastalCase {
    assert!(nx >= 1 && ny >= 1);
    let (nxn, nyn) = (nx + 1, ny + 1);
    let (lx, ly) = (100.0, 50.0);
    let mut node_xy = Vec::with_capacity(nxn * nyn);
    for j in 0..nyn {
        for i in 0..nxn {
            node_xy.push([lx * i as f64 / nx as f64, ly * j as f64 / ny as f64]);
        }
    }
    let node = |i: usize, j: usize| (j * nxn + i) as i32;
    let mut c2n = Vec::with_capacity(nx * ny * 6);
    for j in 0..ny {
        for i in 0..nx {
            // split the square along alternating diagonals for isotropy
            let (a, b, c, d) = (
                node(i, j),
                node(i + 1, j),
                node(i + 1, j + 1),
                node(i, j + 1),
            );
            if (i + j) % 2 == 0 {
                c2n.extend_from_slice(&[a, b, c, a, c, d]);
            } else {
                c2n.extend_from_slice(&[a, b, d, b, c, d]);
            }
        }
    }
    let mesh = Mesh2d::from_cells(
        node_xy,
        MapTable::new("cell2node", nx * ny * 2, nxn * nyn, 3, c2n),
    );
    let mut bathy_cell = Vec::with_capacity(mesh.n_cells());
    let mut eta0_cell = Vec::with_capacity(mesh.n_cells());
    for c in 0..mesh.n_cells() {
        let [x, y] = mesh.cell_centroid(c);
        bathy_cell.push(shelf_depth(x, y));
        eta0_cell.push(tsunami_source(x, y));
    }
    CoastalCase {
        mesh,
        bathy_cell,
        eta0_cell,
    }
}

/// Synthetic continental-shelf depth profile: ~4 km deep ocean for
/// `x < 60`, a smooth shelf break rising to a 50 m shelf, with a mild
/// along-shore ridge modulation. Always positive (no dry land), so
/// wetting/drying is out of scope — as in the paper's hypothetical-tsunami
/// run, the interesting cost is the flux kernels, not inundation.
pub fn shelf_depth(x: f64, y: f64) -> f64 {
    let t = ((x - 60.0) / 25.0).clamp(0.0, 1.0);
    // smoothstep from 4.0 (deep) down to 0.05 (shelf)
    let s = t * t * (3.0 - 2.0 * t);
    let base = 4.0 * (1.0 - s) + 0.05 * s;
    let ridge = 0.2 * (1.0 - s) * (0.15 * y).sin();
    (base + ridge).max(0.02)
}

/// Gaussian free-surface source centred offshore at (25, 25):
/// η₀ = 0.5·exp(−((x−25)² + (y−25)²)/2σ²), σ = 6.
pub fn tsunami_source(x: f64, y: f64) -> f64 {
    let (dx, dy) = (x - 25.0, y - 25.0);
    0.5 * (-(dx * dx + dy * dy) / (2.0 * 36.0)).exp()
}

/// Unit-square quad grid (tests and the quickstart example).
pub fn unit_square_quads(n: usize) -> Mesh2d {
    let case = quad_channel(n, n);
    case.mesh
}

/// Quad grid with nodes perturbed by up to `amplitude` of the cell pitch —
/// genuinely irregular geometry over the same topology, used by property
/// tests (coloring and partitioning must not depend on mesh regularity).
pub fn perturbed_quads(nx: usize, ny: usize, amplitude: f64, seed: u64) -> Mesh2d {
    assert!(
        (0.0..0.5).contains(&amplitude),
        "amplitude must stay below 0.5"
    );
    let mut case = quad_channel(nx, ny);
    let mut rng = SplitMix64::new(seed);
    let pitch = 5.0 / nx as f64;
    let (nxn, nyn) = (nx + 1, ny + 1);
    for j in 1..nyn - 1 {
        for i in 1..nxn - 1 {
            let p = &mut case.mesh.node_xy[j * nxn + i];
            p[0] += pitch * amplitude * (2.0 * rng.next_f64() - 1.0);
            p[1] += pitch * amplitude * (2.0 * rng.next_f64() - 1.0);
        }
    }
    case.mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_channel_set_sizes_match_closed_forms() {
        for (nx, ny) in [(4usize, 3usize), (12, 6), (30, 20)] {
            let case = quad_channel(nx, ny);
            let m = &case.mesh;
            assert_eq!(m.n_cells(), nx * ny);
            assert_eq!(m.n_nodes(), (nx + 1) * (ny + 1));
            // total sides = interior*2 + boundary; boundary = 2(nx+ny)
            assert_eq!(m.n_bedges(), 2 * (nx + ny));
            let total_sides = nx * (ny + 1) + ny * (nx + 1);
            assert_eq!(m.n_edges(), total_sides - 2 * (nx + ny));
            assert_eq!(m.euler_characteristic(), 1);
            m.validate().unwrap();
        }
    }

    #[test]
    fn paper_small_mesh_sizes_at_scale_ratio() {
        // 1/10-scale instance of the paper's 1200x600: same closed forms.
        let case = quad_channel(120, 60);
        assert_eq!(case.mesh.n_cells(), 7200);
        assert_eq!(case.mesh.n_nodes(), 121 * 61);
        assert_eq!(case.bound.len(), case.mesh.n_bedges());
    }

    #[test]
    fn boundary_tags_cover_walls_and_farfield() {
        let case = quad_channel(16, 8);
        let walls = case.bound.iter().filter(|&&b| b == BOUND_WALL).count();
        let far = case.bound.iter().filter(|&&b| b == BOUND_FARFIELD).count();
        assert_eq!(walls, 2 * 16, "top+bottom edges");
        assert_eq!(far, 2 * 8, "inlet+outlet edges");
    }

    #[test]
    fn tri_coastal_set_sizes() {
        let case = tri_coastal(10, 8);
        let m = &case.mesh;
        assert_eq!(m.n_cells(), 160);
        assert_eq!(m.n_nodes(), 11 * 9);
        assert_eq!(m.euler_characteristic(), 1);
        m.validate().unwrap();
        assert_eq!(case.bathy_cell.len(), m.n_cells());
        assert_eq!(case.eta0_cell.len(), m.n_cells());
    }

    #[test]
    fn bathymetry_is_positive_and_deepest_offshore() {
        let case = tri_coastal(24, 12);
        assert!(case.bathy_cell.iter().all(|&d| d > 0.0));
        assert!(shelf_depth(5.0, 25.0) > shelf_depth(95.0, 25.0));
        assert!(shelf_depth(5.0, 25.0) > 3.0);
        assert!(shelf_depth(99.0, 25.0) < 0.3);
    }

    #[test]
    fn tsunami_source_peaks_at_center() {
        assert!(tsunami_source(25.0, 25.0) > tsunami_source(40.0, 25.0));
        assert!((tsunami_source(25.0, 25.0) - 0.5).abs() < 1e-12);
        assert!(tsunami_source(90.0, 10.0) < 1e-6);
    }

    #[test]
    fn perturbed_mesh_stays_valid() {
        let m = perturbed_quads(12, 9, 0.3, 1234);
        m.validate().unwrap();
        assert_eq!(m.n_cells(), 108);
        // perturbation actually moved interior nodes
        let reference = quad_channel(12, 9).mesh;
        let moved = m
            .node_xy
            .iter()
            .zip(&reference.node_xy)
            .filter(|(a, b)| a != b)
            .count();
        assert!(moved > 50);
    }

    #[test]
    fn volna_paper_scale_formula() {
        // paper: 2,392,352 cells; our generator: 2*nx*ny cells
        let (nx, ny) = (1096usize, 1092usize);
        assert!((2 * nx * ny) as i64 - 2_392_352 < 2_392_352 / 100);
    }
}
