//! Mesh renumbering for locality.
//!
//! OP2 reorders mesh elements before forming the mini-partitions that
//! OpenMP threads / CUDA blocks execute; bandwidth-reducing orderings keep
//! each block's indirect working set small, which is the property the
//! paper's "block permute" scheme banks on ("as long as blocks are small
//! enough so that their data is contained in cache"). We implement
//! reverse Cuthill–McKee (RCM) on any CSR graph plus helpers to push a
//! permutation through a whole [`Mesh2d`].

use crate::csr::Csr;
use crate::mesh::Mesh2d;
use crate::topology::MapTable;

/// Reverse Cuthill–McKee ordering of a symmetric CSR graph.
///
/// Returns `order` such that new index `i` is old element `order[i]`.
/// Handles disconnected graphs by restarting BFS from the lowest-degree
/// unvisited vertex. Ties (equal degree) break on vertex id, so the
/// ordering is a pure function of the graph — independent of any prior
/// labeling history. The result is guaranteed never to have bandwidth
/// worse than the identity ordering: RCM is a greedy heuristic, and on
/// the rare graph where it loses to the input order the input order is
/// returned instead.
pub fn rcm_order(graph: &Csr) -> Vec<u32> {
    let n = graph.rows();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let degree = |v: usize| graph.row(v).len();

    // vertices sorted by (degree, id) — BFS seeds
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| (degree(v as usize), v));

    let mut queue = std::collections::VecDeque::new();
    let mut neighbors: Vec<u32> = Vec::new();
    for &seed in &by_degree {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            for &w in graph.row(v as usize) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    neighbors.push(w as u32);
                }
            }
            neighbors.sort_by_key(|&w| (degree(w as usize), w));
            queue.extend(neighbors.iter().copied());
        }
    }
    order.reverse();

    let ident: Vec<u32> = (0..n as u32).collect();
    if bandwidth(graph, &order_to_perm(&order)) > bandwidth(graph, &ident) {
        return ident;
    }
    order
}

/// Convert an `order` (new → old) into a permutation (old → new).
pub fn order_to_perm(order: &[u32]) -> Vec<u32> {
    let mut perm = vec![0u32; order.len()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    perm
}

/// Graph bandwidth under an ordering: `max |perm[u] - perm[v]|` over
/// edges. The quantity RCM minimizes (greedily).
pub fn bandwidth(graph: &Csr, perm: &[u32]) -> usize {
    let mut bw = 0usize;
    for u in 0..graph.rows() {
        for &v in graph.row(u) {
            let d = (perm[u] as i64 - perm[v as usize] as i64).unsigned_abs() as usize;
            bw = bw.max(d);
        }
    }
    bw
}

/// Renumber mesh *nodes* in place: `perm` maps old → new node index.
pub fn renumber_nodes(mesh: &mut Mesh2d, perm: &[u32]) {
    assert_eq!(perm.len(), mesh.n_nodes());
    let mut new_xy = vec![[0.0f64; 2]; mesh.n_nodes()];
    for (old, &p) in perm.iter().enumerate() {
        new_xy[p as usize] = mesh.node_xy[old];
    }
    mesh.node_xy = new_xy;
    mesh.cell2node.permute_targets(perm);
    mesh.edge2node.permute_targets(perm);
    mesh.bedge2node.permute_targets(perm);
}

/// Renumber mesh *cells* in place: `perm` maps old → new cell index.
/// Reorders `cell2node` rows and relabels `edge2cell` / `bedge2cell`.
pub fn renumber_cells(mesh: &mut Mesh2d, perm: &[u32]) {
    assert_eq!(perm.len(), mesh.n_cells());
    let order = perm_to_order(perm);
    mesh.cell2node.reorder_rows(&order);
    mesh.edge2cell.permute_targets(perm);
    mesh.bedge2cell.permute_targets(perm);
}

/// Reorder mesh *edges* in place: new edge `i` is old edge `order[i]`.
pub fn reorder_edges(mesh: &mut Mesh2d, order: &[u32]) {
    assert_eq!(order.len(), mesh.n_edges());
    mesh.edge2node.reorder_rows(order);
    mesh.edge2cell.reorder_rows(order);
}

/// Convert a permutation (old → new) into an order (new → old).
pub fn perm_to_order(perm: &[u32]) -> Vec<u32> {
    let mut order = vec![0u32; perm.len()];
    for (old, &new) in perm.iter().enumerate() {
        order[new as usize] = old as u32;
    }
    order
}

/// Full locality pipeline used by the applications before planning:
/// RCM on the node graph, then cells renumbered by their minimum new node
/// (a standard induced ordering), then edges reordered by their first
/// cell. Returns the node bandwidth before and after for diagnostics.
pub fn rcm_renumber_mesh(mesh: &mut Mesh2d) -> (usize, usize) {
    let g = crate::dual::node_graph(mesh);
    let ident: Vec<u32> = (0..mesh.n_nodes() as u32).collect();
    let before = bandwidth(&g, &ident);
    let perm = order_to_perm(&rcm_order(&g));
    let after = bandwidth(&g, &perm);
    renumber_nodes(mesh, &perm);

    // induced cell ordering: sort cells by min node index
    let mut cell_order: Vec<u32> = (0..mesh.n_cells() as u32).collect();
    cell_order.sort_by_key(|&c| {
        mesh.cell2node
            .row(c as usize)
            .iter()
            .min()
            .copied()
            .unwrap_or(i32::MAX)
    });
    renumber_cells(mesh, &order_to_perm(&cell_order));

    // induced edge ordering: sort edges by (first cell, second cell)
    let mut edge_order: Vec<u32> = (0..mesh.n_edges() as u32).collect();
    edge_order.sort_by_key(|&e| {
        let r = mesh.edge2cell.row(e as usize);
        (r[0], r[1])
    });
    reorder_edges(mesh, &edge_order);
    (before, after)
}

/// Fraction of consecutive edge pairs that share at least one cell —
/// the locality metric the vectorized gather/scatter path cares about:
/// when edges `e` and `e+1` touch the same cell, the lane gathers of a
/// SIMD chunk hit overlapping cache lines.
pub fn shared_cell_fraction(edge2cell: &MapTable) -> f64 {
    let n = edge2cell.from_size;
    if n < 2 {
        return 1.0;
    }
    let mut shared = 0usize;
    for e in 0..n - 1 {
        let a = edge2cell.row(e);
        let b = edge2cell.row(e + 1);
        if a.iter().any(|c| b.contains(c)) {
            shared += 1;
        }
    }
    shared as f64 / (n - 1) as f64
}

/// Lane-locality edge ordering: greedy chaining so consecutive edges
/// share a cell wherever the connectivity allows.
///
/// From the current edge, the next edge is the smallest-id unvisited
/// edge incident to either of its cells; when the chain dies out it
/// restarts at the smallest unvisited edge. Deterministic (pure
/// function of the map) and `O(E · arity · max_degree)`. Returns
/// `order` such that new edge `i` is old edge `order[i]`.
pub fn lane_local_edge_order(edge2cell: &MapTable) -> Vec<u32> {
    let n_edges = edge2cell.from_size;
    let n_cells = edge2cell.to_size;
    // cell → incident edges, ascending edge id per cell
    let mut cell_edges: Vec<Vec<u32>> = vec![Vec::new(); n_cells];
    for e in 0..n_edges {
        for &c in edge2cell.row(e) {
            cell_edges[c as usize].push(e as u32);
        }
    }

    let mut order = Vec::with_capacity(n_edges);
    let mut visited = vec![false; n_edges];
    let mut cursor = 0usize; // smallest possibly-unvisited edge
    while order.len() < n_edges {
        while cursor < n_edges && visited[cursor] {
            cursor += 1;
        }
        let mut e = cursor as u32;
        visited[e as usize] = true;
        order.push(e);
        loop {
            let mut next: Option<u32> = None;
            for &c in edge2cell.row(e as usize) {
                for &cand in &cell_edges[c as usize] {
                    if !visited[cand as usize] && next.is_none_or(|b| cand < b) {
                        next = Some(cand);
                    }
                }
            }
            match next {
                Some(cand) => {
                    visited[cand as usize] = true;
                    order.push(cand);
                    e = cand;
                }
                None => break,
            }
        }
    }
    order
}

/// Apply the lane-locality pass to a mesh's interior edges, keeping the
/// original order if chaining does not improve the shared-cell metric.
/// Returns `(before, after)` shared-cell fractions.
pub fn lane_localize_edges(mesh: &mut Mesh2d) -> (f64, f64) {
    let before = shared_cell_fraction(&mesh.edge2cell);
    let order = lane_local_edge_order(&mesh.edge2cell);
    let mut trial = mesh.edge2cell.clone();
    trial.reorder_rows(&order);
    let after = shared_cell_fraction(&trial);
    if after > before {
        reorder_edges(mesh, &order);
        (before, after)
    } else {
        (before, before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::node_graph;
    use crate::generators::{perturbed_quads, quad_channel};
    use crate::rng::SplitMix64;

    #[test]
    fn rcm_output_is_a_permutation() {
        let m = quad_channel(6, 5).mesh;
        let g = node_graph(&m);
        let order = rcm_order(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..m.n_nodes() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_does_not_worsen_grid_bandwidth() {
        // Shuffle node labels, then check RCM restores low bandwidth.
        let mut m = quad_channel(10, 10).mesh;
        let mut shuffled: Vec<u32> = (0..m.n_nodes() as u32).collect();
        SplitMix64::new(99).shuffle(&mut shuffled);
        renumber_nodes(&mut m, &shuffled);
        let g = node_graph(&m);
        let ident: Vec<u32> = (0..m.n_nodes() as u32).collect();
        let shuffled_bw = bandwidth(&g, &ident);
        let perm = order_to_perm(&rcm_order(&g));
        let rcm_bw = bandwidth(&g, &perm);
        assert!(
            rcm_bw < shuffled_bw / 2,
            "rcm {rcm_bw} should beat shuffled {shuffled_bw}"
        );
        // for an 11x11 grid the optimal bandwidth is 11; RCM should be close
        assert!(rcm_bw <= 14, "rcm bandwidth {rcm_bw} too high");
    }

    #[test]
    fn renumber_nodes_preserves_geometry_and_validity() {
        let mut m = perturbed_quads(7, 5, 0.2, 5);
        let total_area_before: f64 = (0..m.n_cells()).map(|c| m.cell_area(c)).sum();
        let g = node_graph(&m);
        let perm = order_to_perm(&rcm_order(&g));
        renumber_nodes(&mut m, &perm);
        m.validate().unwrap();
        let total_area_after: f64 = (0..m.n_cells()).map(|c| m.cell_area(c)).sum();
        assert!((total_area_before - total_area_after).abs() < 1e-9);
    }

    #[test]
    fn full_pipeline_keeps_mesh_valid_and_improves_bandwidth() {
        let mut m = quad_channel(9, 7).mesh;
        // scramble everything first
        let mut node_perm: Vec<u32> = (0..m.n_nodes() as u32).collect();
        SplitMix64::new(7).shuffle(&mut node_perm);
        renumber_nodes(&mut m, &node_perm);
        let (before, after) = rcm_renumber_mesh(&mut m);
        assert!(after <= before);
        m.validate().unwrap();
    }

    #[test]
    fn perm_order_roundtrip() {
        let perm = vec![2u32, 0, 3, 1];
        let order = perm_to_order(&perm);
        assert_eq!(order, vec![1, 3, 0, 2]);
        assert_eq!(order_to_perm(&order), perm);
    }

    #[test]
    fn rcm_is_invariant_under_history() {
        // Same graph reached along different construction paths must
        // yield the same ordering: rcm_order is a pure function of the
        // graph, with (degree, id) tie-breaks instead of visit history.
        let m = quad_channel(8, 6).mesh;
        let g = node_graph(&m);
        let a = rcm_order(&g);
        let b = rcm_order(&g);
        assert_eq!(a, b);
        // degree ties are ubiquitous on a uniform grid; the seed picked
        // must be the lowest id among minimum-degree vertices (corners)
        let min_deg = (0..g.rows()).map(|v| g.row(v).len()).min().unwrap();
        let first_seed = *a.last().unwrap(); // order reversed: seed is last
        assert_eq!(g.row(first_seed as usize).len(), min_deg);
        let lowest_min_deg = (0..g.rows() as u32)
            .find(|&v| g.row(v as usize).len() == min_deg)
            .unwrap();
        assert_eq!(first_seed, lowest_min_deg);
    }

    #[test]
    fn lane_locality_chains_edges_through_cells() {
        // Scramble the edge order, then check the pass restores high
        // consecutive shared-cell fraction.
        let mut m = quad_channel(12, 9).mesh;
        let mut order: Vec<u32> = (0..m.n_edges() as u32).collect();
        SplitMix64::new(3).shuffle(&mut order);
        reorder_edges(&mut m, &order);
        let scrambled = shared_cell_fraction(&m.edge2cell);
        let (before, after) = lane_localize_edges(&mut m);
        assert_eq!(before, scrambled);
        assert!(after >= before, "pass must never reduce locality");
        assert!(
            after > 0.8,
            "greedy chaining should make most consecutive edges share a cell, got {after}"
        );
        m.validate().unwrap();
    }

    #[test]
    fn lane_local_order_is_a_permutation() {
        let m = perturbed_quads(9, 7, 0.2, 11);
        let order = lane_local_edge_order(&m.edge2cell);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..m.n_edges() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn renumber_cells_relabels_edge_targets_consistently() {
        let mut m = quad_channel(4, 2).mesh;
        let centroids_before: Vec<[f64; 2]> =
            (0..m.n_cells()).map(|c| m.cell_centroid(c)).collect();
        // reverse cell order
        let n = m.n_cells() as u32;
        let perm: Vec<u32> = (0..n).map(|c| n - 1 - c).collect();
        renumber_cells(&mut m, &perm);
        m.validate().unwrap();
        for (old, &p) in perm.iter().enumerate() {
            assert_eq!(m.cell_centroid(p as usize), centroids_before[old]);
        }
    }
}
