//! `ump_serve` — mesh-simulation-as-a-service on the unified backend
//! registry.
//!
//! The runtime underneath (`ump_core` + `ump_apps`) executes one
//! simulation on one set of pools. This crate turns it into a
//! *service*: many [`JobSpec`]s multiplexed over a few shared
//! [`ExecPool`](ump_core::ExecPool)s, with
//!
//! - **bounded admission** — [`Service::submit`] either admits a job or
//!   rejects it immediately with a typed [`Rejection`] (saturation or
//!   validation); it never blocks the caller on queue space;
//! - **fair scheduling** — round-robin time slicing over one FIFO ready
//!   queue (see [`service`] for the policy and why it is fair);
//! - **deterministic checkpoint/restart** — [`JobState::snapshot`]
//!   serializes the evolving state as exact `f64` bit patterns in a
//!   versioned format ([`snapshot`]), and a job killed and resumed from
//!   a snapshot finishes *bit-identical* to an uninterrupted run;
//! - **streamed results** — per-step reduction values arrive as
//!   [`Frame`]s over a channel while the job runs, and [`ServiceStats`]
//!   snapshots queue depths, terminal counts, per-backend throughput,
//!   and plan-cache hit/build counters at any time.
//!
//! ```
//! use ump_core::Backend;
//! use ump_serve::{App, JobSpec, JobStatus, Service, ServiceConfig};
//!
//! let service = Service::new(ServiceConfig {
//!     pools: 2,
//!     team: 1,
//!     ..ServiceConfig::default()
//! });
//!
//! // a tiny mixed batch over shared pools
//! let jobs = [
//!     JobSpec::new(App::Airfoil, 12, 6, Backend::Seq, 4).with_seed(1),
//!     JobSpec::new(App::Volna, 8, 6, Backend::Threaded, 4).with_seed(2),
//! ];
//! let handles: Vec<_> = jobs
//!     .iter()
//!     .map(|&spec| service.submit(spec).expect("admitted"))
//!     .collect();
//! for h in &handles {
//!     let out = h.wait();
//!     assert_eq!(out.status, JobStatus::Completed);
//!     assert_eq!(out.history.len(), 4); // one reduction value per step
//! }
//! assert_eq!(service.stats().completed, 2);
//! ```

#![deny(missing_docs)]

pub mod job;
pub mod service;
pub mod snapshot;

pub use job::{App, JobSpec, JobState};
pub use service::{
    BackendThroughput, Frame, JobHandle, JobOutcome, JobStatus, Rejection, RetryPolicy, Service,
    ServiceConfig, ServiceStats,
};
pub use snapshot::{JOB_SNAPSHOT_MAGIC, JOB_SNAPSHOT_VERSION};
pub use ump_tune::{Choice, Tuner, TunerStats};
