//! Job specifications and the resumable per-job simulation state.
//!
//! A [`JobSpec`] is everything needed to reproduce a simulation from
//! nothing: application, mesh dimensions, backend, step count, seed,
//! and block size. Meshes, geometry, and seeded initial conditions are
//! all deterministic functions of the spec, which is what makes the
//! snapshot format small (evolving state only) and restart bit-exact.
//!
//! A [`JobState`] is a spec plus the live simulation: the evolving
//! dats, the step counter, and the per-step reduction history (RMS for
//! Airfoil, Δt for Volna). [`JobState::snapshot`] /
//! [`JobState::restore`] round-trip it through the versioned binary
//! format of [`crate::snapshot`].

use std::io;

use ump_apps::{airfoil, volna};
use ump_core::{Backend, ExecPool, OpDat, PlanCache, Recorder};

/// Which benchmark application a job runs. Both run at `f64` in the
/// service (the precision every backend is conformance-tested at).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum App {
    /// The Airfoil inviscid Euler solver (per-step value: RMS residual).
    Airfoil,
    /// The Volna shallow-water solver (per-step value: Δt).
    Volna,
}

impl App {
    /// Canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            App::Airfoil => "airfoil",
            App::Volna => "volna",
        }
    }

    /// Parse the canonical spelling back.
    pub fn parse(s: &str) -> Option<App> {
        match s {
            "airfoil" => Some(App::Airfoil),
            "volna" => Some(App::Volna),
            _ => None,
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete, self-describing simulation request.
///
/// ```
/// use ump_core::Backend;
/// use ump_serve::{App, JobSpec};
///
/// let spec = JobSpec::new(App::Airfoil, 48, 24, Backend::Fused, 10)
///     .with_seed(7)
///     .with_checkpoint_every(5);
/// assert!(spec.validate().is_ok());
/// assert_eq!(spec.cache_scope(), "airfoil:48x24");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JobSpec {
    /// Application to run.
    pub app: App,
    /// Mesh dimensions (generator arguments).
    pub nx: usize,
    /// Second mesh dimension.
    pub ny: usize,
    /// Execution shape, from the unified registry.
    pub backend: Backend,
    /// Total timesteps the job runs.
    pub steps: u64,
    /// Initial-condition seed (0 = pristine case); see
    /// `Airfoil::seeded` / `Volna::seeded`.
    pub seed: u64,
    /// Colored-block size for pool backends.
    pub block_size: usize,
    /// Snapshot cadence in steps (0 = no periodic checkpoints; the
    /// final state is always available from the job outcome).
    pub checkpoint_every: u64,
}

impl JobSpec {
    /// A spec with the default seed (0), block size (64), and no
    /// periodic checkpointing.
    pub fn new(app: App, nx: usize, ny: usize, backend: Backend, steps: u64) -> JobSpec {
        JobSpec {
            app,
            nx,
            ny,
            backend,
            steps,
            seed: 0,
            block_size: 64,
            checkpoint_every: 0,
        }
    }

    /// Set the initial-condition seed.
    pub fn with_seed(mut self, seed: u64) -> JobSpec {
        self.seed = seed;
        self
    }

    /// Set the colored-block size.
    pub fn with_block_size(mut self, block_size: usize) -> JobSpec {
        self.block_size = block_size;
        self
    }

    /// Set the periodic checkpoint cadence.
    pub fn with_checkpoint_every(mut self, every: u64) -> JobSpec {
        self.checkpoint_every = every;
        self
    }

    /// Admission-time validation; the error string is the rejection
    /// reason surfaced to the submitter.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps == 0 {
            return Err("steps must be >= 1".into());
        }
        if self.steps > 10_000_000 {
            return Err(format!("steps {} too large (max 10000000)", self.steps));
        }
        if self.nx < 2 || self.ny < 2 {
            return Err(format!("mesh {}x{} too small (min 2x2)", self.nx, self.ny));
        }
        // upper bounds keep a forged/corrupt snapshot header from
        // committing the restoring worker to a multi-gigabyte mesh
        if self.nx.saturating_mul(self.ny) > (1 << 22) {
            return Err(format!(
                "mesh {}x{} too large (max {} cells)",
                self.nx,
                self.ny,
                1usize << 22
            ));
        }
        if self.block_size == 0 {
            return Err("block_size must be >= 1".into());
        }
        if self.block_size > (1 << 20) {
            return Err(format!(
                "block_size {} too large (max {})",
                self.block_size,
                1usize << 20
            ));
        }
        if !Backend::all().contains(&self.backend) {
            return Err(format!("backend {} is not registered", self.backend));
        }
        Ok(())
    }

    /// The plan-cache namespace all jobs of this mesh identity share —
    /// one scope per (app, dims), so identical jobs hit each other's
    /// coloring plans while distinct meshes can never collide.
    pub fn cache_scope(&self) -> String {
        format!("{}:{}x{}", self.app, self.nx, self.ny)
    }
}

/// The live simulation behind a job (boxed: an `Airfoil`/`Volna` value
/// is several mesh-sized vectors).
enum Sim {
    Airfoil(Box<airfoil::Airfoil<f64>>),
    Volna(Box<volna::Volna<f64>>),
}

/// A resumable in-flight simulation: spec, step counter, per-step
/// reduction history, and the evolving dats.
pub struct JobState {
    spec: JobSpec,
    steps_done: u64,
    history: Vec<f64>,
    sim: Sim,
}

impl JobState {
    /// Build the initial state from a spec (deterministic: mesh,
    /// geometry, and seeded initial conditions are all functions of the
    /// spec).
    pub fn new(spec: JobSpec) -> JobState {
        let sim = match spec.app {
            App::Airfoil => Sim::Airfoil(Box::new(airfoil::Airfoil::seeded(
                spec.nx, spec.ny, spec.seed,
            ))),
            App::Volna => Sim::Volna(Box::new(volna::Volna::seeded(spec.nx, spec.ny, spec.seed))),
        };
        JobState {
            spec,
            steps_done: 0,
            // clamp the pre-size: `steps` may come from an unvalidated
            // snapshot header, and history grows fine on demand
            history: Vec::with_capacity(spec.steps.min(1 << 16) as usize),
            sim,
        }
    }

    /// The job's spec.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Steps completed so far.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// Per-step reduction values (RMS / Δt) of every completed step.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// `true` once `spec.steps` steps have run.
    pub fn is_done(&self) -> bool {
        self.steps_done >= self.spec.steps
    }

    /// Advance one timestep through the spec's backend on the given
    /// pool, returning the step's reduction value. `cache` should be a
    /// [`PlanCache::scoped`] view keyed by [`JobSpec::cache_scope`]
    /// when plans are shared across jobs.
    pub fn step(&mut self, pool: &ExecPool, cache: &PlanCache, rec: Option<&Recorder>) -> f64 {
        let spec = self.spec;
        let v = match &mut self.sim {
            Sim::Airfoil(sim) => {
                airfoil::drivers::step_on(spec.backend, sim, pool, cache, 0, spec.block_size, rec)
            }
            Sim::Volna(sim) => {
                volna::drivers::step_on(spec.backend, sim, pool, cache, 0, spec.block_size, rec)
            }
        };
        self.history.push(v);
        self.steps_done += 1;
        v
    }

    /// The primary evolving dat — Airfoil's `q` or Volna's `w` — the
    /// field conformance checks compare against the sequential
    /// reference.
    pub fn primary(&self) -> &OpDat<f64> {
        match &self.sim {
            Sim::Airfoil(sim) => &sim.q,
            Sim::Volna(sim) => &sim.w,
        }
    }

    /// Every dat that evolves over a step, in snapshot order. Geometry
    /// (`x`, `area`, `egeom`, `bgeom`) is rebuilt from the spec on
    /// restore and deliberately not serialized.
    fn evolving_dats(&self) -> Vec<&OpDat<f64>> {
        match &self.sim {
            Sim::Airfoil(sim) => vec![&sim.q, &sim.qold, &sim.adt, &sim.res],
            Sim::Volna(sim) => vec![&sim.w, &sim.w_old, &sim.w1, &sim.res, &sim.eflux],
        }
    }

    fn evolving_dats_mut(&mut self) -> Vec<&mut OpDat<f64>> {
        match &mut self.sim {
            Sim::Airfoil(sim) => vec![&mut sim.q, &mut sim.qold, &mut sim.adt, &mut sim.res],
            Sim::Volna(sim) => vec![
                &mut sim.w,
                &mut sim.w_old,
                &mut sim.w1,
                &mut sim.res,
                &mut sim.eflux,
            ],
        }
    }

    /// Serialize the job to the versioned snapshot format (see
    /// [`crate::snapshot`] for the layout).
    pub fn snapshot(&self) -> Vec<u8> {
        crate::snapshot::encode(
            &self.spec,
            self.steps_done,
            &self.history,
            &self.evolving_dats(),
        )
    }

    /// Rebuild a job from a snapshot: reconstruct mesh/geometry/initial
    /// conditions from the embedded spec, then overwrite the evolving
    /// dats — bit-identical continuation is asserted by the golden
    /// tests.
    pub fn restore(bytes: &[u8]) -> io::Result<JobState> {
        let decoded = crate::snapshot::decode(bytes)?;
        let mut state = JobState::new(decoded.spec);
        state.steps_done = decoded.steps_done;
        state.history = decoded.history;
        let mut incoming = decoded.dats;
        let targets = state.evolving_dats_mut();
        if incoming.len() != targets.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot holds {} dats, {} expects {}",
                    incoming.len(),
                    decoded.spec.app,
                    targets.len()
                ),
            ));
        }
        for (target, dat) in targets.into_iter().zip(incoming.drain(..)) {
            if dat.name != target.name || dat.set_size != target.set_size || dat.dim != target.dim {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "snapshot dat {}[{}x{}] does not match {}[{}x{}]",
                        dat.name, dat.set_size, dat.dim, target.name, target.set_size, target.dim
                    ),
                ));
            }
            *target = dat;
        }
        Ok(state)
    }

    /// Decode only the spec header and step counter of a snapshot —
    /// cheap admission-time validation for resumed jobs (no mesh
    /// build).
    pub fn peek(bytes: &[u8]) -> io::Result<(JobSpec, u64)> {
        crate::snapshot::peek(bytes)
    }

    /// Maximum |difference| of the primary field against another job
    /// (conformance metric, same semantics as `OpDat::max_abs_diff`).
    pub fn max_abs_diff(&self, other: &JobState) -> f64 {
        self.primary().max_abs_diff(other.primary())
    }

    /// `true` when this job's evolving state and history are
    /// *bit-identical* to another's — the checkpoint/restart
    /// acceptance predicate (stronger than any tolerance).
    pub fn bits_eq(&self, other: &JobState) -> bool {
        if self.steps_done != other.steps_done || self.history.len() != other.history.len() {
            return false;
        }
        let hist_eq = self
            .history
            .iter()
            .zip(&other.history)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let dats_eq = self
            .evolving_dats()
            .into_iter()
            .zip(other.evolving_dats())
            .all(|(a, b)| {
                a.data.len() == b.data.len()
                    && a.data
                        .iter()
                        .zip(&b.data)
                        .all(|(x, y)| x.to_bits() == y.to_bits())
            });
        hist_eq && dats_eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ExecPool {
        ExecPool::new(2)
    }

    #[test]
    fn spec_validation_names_the_problem() {
        let ok = JobSpec::new(App::Volna, 8, 6, Backend::Seq, 3);
        assert!(ok.validate().is_ok());
        assert!(JobSpec { steps: 0, ..ok }
            .validate()
            .unwrap_err()
            .contains("steps"));
        assert!(JobSpec { nx: 1, ..ok }
            .validate()
            .unwrap_err()
            .contains("mesh"));
        assert!(JobSpec {
            block_size: 0,
            ..ok
        }
        .validate()
        .unwrap_err()
        .contains("block_size"));
    }

    #[test]
    fn job_steps_match_direct_driver() {
        let pool = pool();
        let cache = PlanCache::new();
        let spec = JobSpec::new(App::Airfoil, 24, 12, Backend::Seq, 4).with_seed(3);
        let mut job = JobState::new(spec);
        let mut reference = airfoil::Airfoil::<f64>::seeded(24, 12, 3);
        for _ in 0..4 {
            let got = job.step(&pool, &cache, None);
            let want = airfoil::drivers::step_seq(&mut reference, None);
            assert_eq!(got.to_bits(), want.to_bits());
        }
        assert!(job.is_done());
        assert_eq!(job.primary().max_abs_diff(&reference.q), 0.0);
    }

    #[test]
    fn snapshot_restores_bit_identically_mid_run() {
        let pool = pool();
        let cache = PlanCache::new();
        let spec = JobSpec::new(App::Volna, 10, 8, Backend::Seq, 6).with_seed(11);
        let mut full = JobState::new(spec);
        let mut half = JobState::new(spec);
        for _ in 0..3 {
            full.step(&pool, &cache, None);
            half.step(&pool, &cache, None);
        }
        let snap = half.snapshot();
        let mut resumed = JobState::restore(&snap).unwrap();
        assert_eq!(resumed.steps_done(), 3);
        for _ in 0..3 {
            full.step(&pool, &cache, None);
            resumed.step(&pool, &cache, None);
        }
        assert!(resumed.bits_eq(&full), "restart must be bit-identical");
    }

    #[test]
    fn peek_reads_the_header_only() {
        let spec = JobSpec::new(App::Airfoil, 8, 4, Backend::Threaded, 5).with_seed(9);
        let snap = JobState::new(spec).snapshot();
        let (peeked, done) = JobState::peek(&snap).unwrap();
        assert_eq!(peeked, spec);
        assert_eq!(done, 0);
    }

    #[test]
    fn restore_rejects_mismatched_snapshots() {
        let snap = JobState::new(JobSpec::new(App::Airfoil, 8, 4, Backend::Seq, 2)).snapshot();
        let mut corrupt = snap.clone();
        corrupt[0] = b'X';
        assert!(JobState::restore(&corrupt).is_err());
        assert!(JobState::restore(&snap[..snap.len() - 10]).is_err());
    }
}
