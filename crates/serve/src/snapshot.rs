//! The versioned binary job-snapshot format (`UMPJ`, version 1).
//!
//! Layout, all integers little-endian:
//!
//! ```text
//! magic    4  b"UMPJ"
//! version  4  u32 = 1
//! -- spec --------------------------------------------------------
//! app      1  u8 (0 = airfoil, 1 = volna)
//! nx, ny   8+8  u64
//! backend  4+n  u32 length + canonical Backend name bytes
//! steps    8  u64
//! seed     8  u64
//! block    8  u64
//! ckpt     8  u64 (checkpoint_every; 0 = none)
//! -- progress ----------------------------------------------------
//! done     8  u64 completed steps
//! history  4 + 8·done  u32 count + f64 bit patterns (RMS / Δt)
//! -- state -------------------------------------------------------
//! ndats    4  u32
//! dats     ndats × OpDat::save payloads (magic UMPD, see ump_core)
//! ```
//!
//! Only *evolving* dats are stored; mesh topology, geometry, and the
//! seeded initial conditions are deterministic functions of the spec
//! and are rebuilt on restore. Values travel as exact `f64` bit
//! patterns end to end, so a kill/restore cycle is bit-identical to an
//! uninterrupted run — the acceptance property of the service layer.

use std::io::{self, Read};

use ump_core::{Backend, OpDat};

use crate::job::{App, JobSpec};

/// Magic prefix of the job-snapshot format.
pub const JOB_SNAPSHOT_MAGIC: [u8; 4] = *b"UMPJ";

/// Current job-snapshot version; [`decode`] rejects others.
pub const JOB_SNAPSHOT_VERSION: u32 = 1;

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Serialize a job (spec + progress + evolving dats) to bytes.
pub fn encode(spec: &JobSpec, steps_done: u64, history: &[f64], dats: &[&OpDat<f64>]) -> Vec<u8> {
    let mut out =
        Vec::with_capacity(128 + dats.iter().map(|d| d.data.len() * 8 + 64).sum::<usize>());
    out.extend_from_slice(&JOB_SNAPSHOT_MAGIC);
    out.extend_from_slice(&JOB_SNAPSHOT_VERSION.to_le_bytes());
    out.push(match spec.app {
        App::Airfoil => 0,
        App::Volna => 1,
    });
    out.extend_from_slice(&(spec.nx as u64).to_le_bytes());
    out.extend_from_slice(&(spec.ny as u64).to_le_bytes());
    let backend = spec.backend.name();
    out.extend_from_slice(&(backend.len() as u32).to_le_bytes());
    out.extend_from_slice(backend.as_bytes());
    out.extend_from_slice(&spec.steps.to_le_bytes());
    out.extend_from_slice(&spec.seed.to_le_bytes());
    out.extend_from_slice(&(spec.block_size as u64).to_le_bytes());
    out.extend_from_slice(&spec.checkpoint_every.to_le_bytes());
    out.extend_from_slice(&steps_done.to_le_bytes());
    out.extend_from_slice(&(history.len() as u32).to_le_bytes());
    for v in history {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(dats.len() as u32).to_le_bytes());
    for dat in dats {
        dat.save(&mut out).expect("Vec<u8> writes are infallible");
    }
    out
}

/// A decoded snapshot, before the simulation is rebuilt around it.
#[derive(Debug)]
pub struct Decoded {
    /// The embedded job spec.
    pub spec: JobSpec,
    /// Completed steps at snapshot time.
    pub steps_done: u64,
    /// Per-step reduction history up to `steps_done`.
    pub history: Vec<f64>,
    /// The evolving dats, in the app's canonical order.
    pub dats: Vec<OpDat<f64>>,
}

fn decode_header(r: &mut impl Read) -> io::Result<(JobSpec, u64)> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != JOB_SNAPSHOT_MAGIC {
        return Err(bad(format!("not a job snapshot: magic {magic:?}")));
    }
    let version = read_u32(r)?;
    if version != JOB_SNAPSHOT_VERSION {
        return Err(bad(format!(
            "job snapshot version {version}, expected {JOB_SNAPSHOT_VERSION}"
        )));
    }
    let mut app = [0u8; 1];
    r.read_exact(&mut app)?;
    let app = match app[0] {
        0 => App::Airfoil,
        1 => App::Volna,
        other => return Err(bad(format!("unknown app tag {other}"))),
    };
    let nx = read_u64(r)? as usize;
    let ny = read_u64(r)? as usize;
    let name_len = read_u32(r)? as usize;
    if name_len > 256 {
        return Err(bad(format!("backend name length {name_len} implausible")));
    }
    let mut name = vec![0u8; name_len];
    r.read_exact(&mut name)?;
    let name = String::from_utf8(name).map_err(|e| bad(format!("backend name: {e}")))?;
    let backend = Backend::parse(&name)
        .ok_or_else(|| bad(format!("backend {name} is not in the registry")))?;
    let steps = read_u64(r)?;
    let seed = read_u64(r)?;
    let block_size = read_u64(r)? as usize;
    let checkpoint_every = read_u64(r)?;
    let steps_done = read_u64(r)?;
    let spec = JobSpec {
        app,
        nx,
        ny,
        backend,
        steps,
        seed,
        block_size,
        checkpoint_every,
    };
    // a decoded spec passes the same validation as a submitted one, so
    // a bit-flipped header cannot commit a restore to an absurd mesh
    // or step count
    spec.validate()
        .map_err(|why| bad(format!("snapshot spec invalid: {why}")))?;
    if steps_done > spec.steps {
        return Err(bad(format!(
            "snapshot claims {steps_done} done of {} total steps",
            spec.steps
        )));
    }
    Ok((spec, steps_done))
}

/// Decode only the spec and step counter — admission-time validation
/// without rebuilding any state.
pub fn peek(bytes: &[u8]) -> io::Result<(JobSpec, u64)> {
    decode_header(&mut &bytes[..])
}

/// Decode a full snapshot.
pub fn decode(bytes: &[u8]) -> io::Result<Decoded> {
    let mut r = bytes;
    let (spec, steps_done) = decode_header(&mut r)?;
    let hist_len = read_u32(&mut r)? as usize;
    if hist_len as u64 != steps_done {
        return Err(bad(format!(
            "history holds {hist_len} entries for {steps_done} completed steps"
        )));
    }
    let mut history = Vec::with_capacity(hist_len.min(1 << 16));
    for _ in 0..hist_len {
        history.push(f64::from_bits(read_u64(&mut r)?));
    }
    let ndats = read_u32(&mut r)? as usize;
    if ndats > 64 {
        return Err(bad(format!("{ndats} dats implausible")));
    }
    let mut dats = Vec::with_capacity(ndats);
    for _ in 0..ndats {
        dats.push(OpDat::<f64>::load(&mut r)?);
    }
    Ok(Decoded {
        spec,
        steps_done,
        history,
        dats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_every_field() {
        let spec = JobSpec::new(App::Volna, 31, 17, Backend::FusedSimd { lanes: 4 }, 99)
            .with_seed(123456789)
            .with_block_size(512)
            .with_checkpoint_every(10);
        let q: OpDat<f64> = OpDat::from_fn("w", 3, 2, |e| vec![e as f64, -0.5]);
        let bytes = encode(&spec, 42, &[1.5, 2.5], &[&q]);
        // peek never touches the payload
        let (peeked, done) = peek(&bytes).unwrap();
        assert_eq!(peeked, spec);
        assert_eq!(done, 42);
        let full = decode(&bytes).unwrap_err();
        // 42 steps but 2 history entries: decode catches the mismatch
        assert!(full.to_string().contains("history"), "{full}");
        let bytes_ok = encode(&spec, 2, &[1.5, 2.5], &[&q]);
        let full = decode(&bytes_ok).unwrap();
        assert_eq!(full.history, vec![1.5, 2.5]);
        assert_eq!(full.dats.len(), 1);
        assert_eq!(full.dats[0].data, q.data);
    }

    #[test]
    fn garbage_is_rejected_not_misread() {
        assert!(peek(b"nope").is_err());
        assert!(decode(&[]).is_err());
        let spec = JobSpec::new(App::Airfoil, 4, 4, Backend::Seq, 1);
        let mut bytes = encode(&spec, 0, &[], &[]);
        bytes[5] ^= 0xff; // version corruption
        assert!(peek(&bytes).unwrap_err().to_string().contains("version"));
    }
}
