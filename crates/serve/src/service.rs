//! The simulation service: bounded admission, shared-pool scheduling,
//! streamed frames, cancellation, and checkpoint-based resume.
//!
//! # Scheduling policy
//!
//! The service owns `pools` worker threads, each with its own persistent
//! [`ExecPool`] of `team` threads. Admitted jobs sit in one FIFO *ready
//! queue*; a worker leases the head job, runs at most `slice_steps`
//! timesteps, and — if the job is unfinished — requeues it at the
//! *tail*. This is plain round-robin time slicing: with `J` runnable
//! jobs, every job receives a slice within `J − 1` lease turns of its
//! last one, so N jobs make fair progress over M ≪ N pools with no
//! priorities, no work stealing, and no job-side cooperation. A slice
//! is steps, not wall time, so heavier meshes get proportionally longer
//! turns; slices never migrate a job mid-step, and because every
//! backend is deterministic for a fixed team size, *which* pool runs a
//! slice never affects the bits it produces.
//!
//! # Admission and backpressure
//!
//! `admission_capacity` bounds jobs in flight (queued + leased).
//! [`Service::submit`] rejects — immediately, with a
//! [`Rejection`] naming the reason — rather than blocking the caller:
//! a saturated service sheds load at the door instead of queueing
//! unboundedly. Requeued slices are already admitted and bypass the
//! bound.
//!
//! # Determinism
//!
//! A job's results depend only on its [`JobSpec`] and the service's
//! `team` size — never on pool count, queue order, slice length, or
//! contention. The checkpoint/restart tests assert the strongest form:
//! a job cancelled mid-flight and resumed from its snapshot finishes
//! bit-identical to an uninterrupted run.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use ump_core::{ExecPool, PlanCache};
use ump_fault::{FaultInjector, JobFault};

use ump_tune::Tuner;

use crate::job::{App, JobSpec, JobState};

/// Bounded retry-with-backoff for failed or stuck jobs.
///
/// A job whose slice fails (kernel panic, injected kill, watchdog
/// abort) is restored from its last periodic checkpoint — or restarted
/// from its original spec/snapshot when no checkpoint is decodable —
/// and requeued, up to `max_attempts` retries with a linear backoff of
/// `backoff × attempt`. Because every backend is deterministic, a
/// retried run finishes bit-identical to an uninterrupted one (the
/// resilience golden tests assert exactly this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail fast, the default).
    pub max_attempts: u32,
    /// Base backoff; retry `k` (1-based) is delayed `backoff × k`.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 0,
            backoff: Duration::ZERO,
        }
    }
}

/// Service sizing knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads, each owning one shared `ExecPool` (jobs are
    /// multiplexed over these — the ≤ 4 pools of the acceptance run).
    pub pools: usize,
    /// Threads per pool. Part of the determinism contract: resuming a
    /// snapshot under a different team size is allowed but only the
    /// same team size guarantees bit-identity for threaded backends.
    pub team: usize,
    /// Maximum jobs in flight (queued + running); submissions beyond
    /// this are rejected with [`Rejection::Saturated`].
    pub admission_capacity: usize,
    /// Timesteps per lease before an unfinished job is requeued.
    pub slice_steps: u64,
    /// Capacity of the shared cross-job plan cache.
    pub plan_cache_capacity: usize,
    /// Recovery policy for failed/stuck jobs.
    pub retry: RetryPolicy,
    /// Per-lease watchdog deadline: a lease that holds a pool longer
    /// than this is aborted at its next cooperative check (step
    /// boundary or stall poll) and handled by the retry policy.
    /// `Duration::ZERO` (the default) disables the watchdog.
    pub lease_timeout: Duration,
    /// Deterministic fault injection for resilience tests (`None` in
    /// production: the hooks reduce to one branch per step).
    pub fault: Option<Arc<FaultInjector>>,
    /// Tuner consulted by [`Service::submit_auto`]. `None` builds a
    /// default host-probed [`Tuner`] lazily on the first auto
    /// submission; supply one to control trial budget or persistence.
    pub tuner: Option<Arc<Tuner>>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            pools: 4,
            team: 2,
            admission_capacity: 64,
            slice_steps: 8,
            plan_cache_capacity: 256,
            retry: RetryPolicy::default(),
            lease_timeout: Duration::ZERO,
            fault: None,
            tuner: None,
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// The in-flight bound is reached; retry after jobs complete.
    Saturated {
        /// Jobs currently in flight.
        in_flight: usize,
        /// The configured admission bound.
        capacity: usize,
    },
    /// The spec (or snapshot) failed validation; the string names the
    /// offending field.
    Invalid(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Saturated {
                in_flight,
                capacity,
            } => {
                write!(
                    f,
                    "service saturated: {in_flight}/{capacity} jobs in flight"
                )
            }
            Rejection::Invalid(why) => write!(f, "invalid job: {why}"),
        }
    }
}

/// One per-step result streamed while a job runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Frame {
    /// 1-based step index within the job.
    pub step: u64,
    /// The step's reduction value (Airfoil RMS / Volna Δt).
    pub value: f64,
}

/// Terminal state of a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran all `spec.steps` steps.
    Completed,
    /// Cancelled via [`Service::cancel`]; the outcome snapshot holds
    /// the state at the point of cancellation, ready for
    /// [`Service::resume`].
    Cancelled,
    /// A step panicked; the payload is the panic message.
    Failed(String),
}

/// Everything a job leaves behind.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The service-assigned job id.
    pub id: u64,
    /// The job's spec (embedded in `snapshot` too).
    pub spec: JobSpec,
    /// How the job ended.
    pub status: JobStatus,
    /// Steps completed.
    pub steps_done: u64,
    /// Per-step reduction values of every completed step.
    pub history: Vec<f64>,
    /// Final state in the versioned snapshot format — decode with
    /// [`JobState::restore`], or feed to [`Service::resume`] to
    /// continue a cancelled job.
    pub snapshot: Vec<u8>,
    /// Pool-seconds spent executing this job's slices.
    pub busy_seconds: f64,
    /// Recovery attempts consumed (0 = the job never failed a slice).
    pub attempts: u32,
}

impl JobOutcome {
    /// Rebuild the final [`JobState`] from the outcome snapshot.
    pub fn final_state(&self) -> JobState {
        JobState::restore(&self.snapshot).expect("service snapshots are self-consistent")
    }
}

/// Client handle: per-step frames plus the terminal outcome.
pub struct JobHandle {
    /// The service-assigned job id (also on every outcome).
    pub id: u64,
    /// The admitted spec.
    pub spec: JobSpec,
    frames: Receiver<Frame>,
    outcome: Receiver<JobOutcome>,
}

impl JobHandle {
    /// Block until the job reaches a terminal state.
    ///
    /// # Panics
    /// If the service was dropped before the job finished.
    pub fn wait(&self) -> JobOutcome {
        self.outcome
            .recv()
            .expect("service dropped before the job completed")
    }

    /// The stream of per-step frames. Frames are buffered unboundedly
    /// until read, so they can also be drained after
    /// [`wait`](JobHandle::wait) returns.
    pub fn frames(&self) -> &Receiver<Frame> {
        &self.frames
    }
}

/// How a queued entry materializes its state at first lease. Building
/// meshes on the worker keeps `submit` cheap (admission is a queue
/// push) and overlaps setup with other jobs' execution.
enum Init {
    Fresh(JobSpec),
    Snapshot(Vec<u8>),
}

/// A job owned by the ready queue or a worker.
struct Active {
    id: u64,
    spec: JobSpec,
    /// Kept for the job's whole life (not consumed at first lease): the
    /// retry path falls back to it when no periodic checkpoint is
    /// decodable — a resumed job restarts from its submitted snapshot,
    /// a fresh job from its spec, either way deterministically.
    init: Init,
    state: Option<JobState>,
    /// Scoped view of the shared plan cache (`JobSpec::cache_scope`).
    cache: PlanCache,
    frames: Sender<Frame>,
    outcome: Sender<JobOutcome>,
    cancel: Arc<AtomicBool>,
    /// Set by the lease watchdog; checked at the same cooperative
    /// boundaries as `cancel`, but routed to the retry policy.
    abort: Arc<AtomicBool>,
    busy_seconds: f64,
    /// Recovery attempts consumed so far.
    attempts: u32,
    /// Backoff gate: not leased again before this instant.
    not_before: Option<Instant>,
}

#[derive(Default)]
struct Counters {
    submitted: u64,
    rejected: u64,
    completed: u64,
    cancelled: u64,
    failed: u64,
    retried: u64,
    watchdog_fired: u64,
    /// Jobs whose backend was chosen by the tuner.
    tuned: u64,
    /// Measured tuning trials run on behalf of auto submissions.
    tune_trials: u64,
    /// Auto submissions answered from the persistent tuning store.
    tune_store_hits: u64,
    /// Auto submissions that required a fresh search.
    tune_store_misses: u64,
    /// Leased right now (≤ pools).
    running: usize,
    /// name → (steps, busy seconds) per backend.
    per_backend: HashMap<String, (u64, f64)>,
}

/// A point-in-time view of service health (the `ServiceStats` snapshot
/// of the issue): queue depths, terminal counts, per-backend step
/// throughput, and the shared plan cache's hit/build counters.
#[derive(Clone, Debug, Default)]
pub struct ServiceStats {
    /// Jobs admitted so far.
    pub submitted: u64,
    /// Submissions rejected (saturation or validation).
    pub rejected: u64,
    /// Jobs waiting in the ready queue.
    pub queued: usize,
    /// Jobs currently leased to a pool.
    pub running: usize,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs that panicked.
    pub failed: u64,
    /// Recovery retries performed (checkpoint restore + requeue).
    pub retried: u64,
    /// Leases aborted by the watchdog deadline.
    pub watchdog_fired: u64,
    /// Jobs admitted through [`Service::submit_auto`] with a
    /// tuner-chosen backend.
    pub tuned: u64,
    /// Measured tuning trials run on behalf of auto submissions.
    pub tune_trials: u64,
    /// Auto submissions whose backend came straight from the
    /// persistent tuning store (zero trials).
    pub tune_store_hits: u64,
    /// Auto submissions that required a fresh prior-pruned search.
    pub tune_store_misses: u64,
    /// Plan-cache hits across all jobs (shared LRU cache).
    pub plan_hits: usize,
    /// Plans actually built across all jobs.
    pub plan_builds: usize,
    /// Per-backend execution totals.
    pub per_backend: Vec<BackendThroughput>,
}

/// Execution totals for one backend across all jobs.
#[derive(Clone, Debug)]
pub struct BackendThroughput {
    /// Canonical backend name.
    pub backend: String,
    /// Timesteps executed on this backend.
    pub steps: u64,
    /// Pool-seconds spent on those steps.
    pub seconds: f64,
}

impl BackendThroughput {
    /// Steps per pool-second (0 when nothing ran).
    pub fn steps_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.steps as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// A live lease entry, watched by the watchdog thread.
struct Lease {
    started: Instant,
    abort: Arc<AtomicBool>,
}

struct Shared {
    ready: Mutex<VecDeque<Active>>,
    ready_cv: Condvar,
    shutdown: AtomicBool,
    in_flight: AtomicUsize,
    counters: Mutex<Counters>,
    cache: PlanCache,
    slice_steps: u64,
    retry: RetryPolicy,
    lease_timeout: Duration,
    fault: Option<Arc<FaultInjector>>,
    /// Latest periodic checkpoint per job id (also the final snapshot
    /// once the job ends), kept after completion for resume/forensics.
    checkpoints: Mutex<HashMap<u64, Vec<u8>>>,
    /// Cancellation flags for every in-flight job.
    cancels: Mutex<HashMap<u64, Arc<AtomicBool>>>,
    /// Active leases, keyed by job id (the watchdog's scan set).
    leases: Mutex<HashMap<u64, Lease>>,
}

/// The mesh-simulation service. See the module docs for the policies;
/// see [`Service::submit`] for the client entry point.
///
/// ```
/// use ump_core::Backend;
/// use ump_serve::{App, JobSpec, JobStatus, Service, ServiceConfig};
///
/// let service = Service::new(ServiceConfig {
///     pools: 2,
///     team: 1,
///     ..ServiceConfig::default()
/// });
/// let h = service
///     .submit(JobSpec::new(App::Airfoil, 12, 6, Backend::Seq, 3).with_seed(5))
///     .unwrap();
/// let out = h.wait();
/// assert_eq!(out.status, JobStatus::Completed);
/// assert_eq!(out.history.len(), 3);
/// // one frame per step was streamed while the job ran
/// assert_eq!(h.frames().try_iter().count(), 3);
/// ```
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    capacity: usize,
    tuner: std::sync::OnceLock<Arc<Tuner>>,
}

impl Service {
    /// Start the worker pools, the scheduler state, and (when a lease
    /// timeout is configured) the watchdog thread.
    pub fn new(config: ServiceConfig) -> Service {
        let shared = Arc::new(Shared {
            ready: Mutex::new(VecDeque::new()),
            ready_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            counters: Mutex::new(Counters::default()),
            cache: PlanCache::with_capacity(config.plan_cache_capacity.max(1)),
            slice_steps: config.slice_steps.max(1),
            retry: config.retry,
            lease_timeout: config.lease_timeout,
            fault: config.fault.clone(),
            checkpoints: Mutex::new(HashMap::new()),
            cancels: Mutex::new(HashMap::new()),
            leases: Mutex::new(HashMap::new()),
        });
        let workers = (0..config.pools.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let team = config.team.max(1);
                std::thread::Builder::new()
                    .name(format!("ump-serve-{i}"))
                    .spawn(move || worker_loop(&shared, team))
                    .expect("spawning service worker")
            })
            .collect();
        let watchdog = (config.lease_timeout > Duration::ZERO).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ump-serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawning service watchdog")
        });
        let tuner = std::sync::OnceLock::new();
        if let Some(t) = config.tuner {
            let _ = tuner.set(t);
        }
        Service {
            shared,
            workers,
            watchdog,
            next_id: AtomicU64::new(1),
            capacity: config.admission_capacity.max(1),
            tuner,
        }
    }

    /// The tuner behind [`submit_auto`](Service::submit_auto) — the
    /// configured one, or a default host-probed tuner built lazily on
    /// first use.
    pub fn tuner(&self) -> &Arc<Tuner> {
        self.tuner.get_or_init(|| Arc::new(Tuner::new()))
    }

    /// Submit a fresh job. Admission either succeeds immediately with a
    /// [`JobHandle`] or fails immediately with the reason — it never
    /// blocks on queue space.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, Rejection> {
        if let Err(why) = spec.validate() {
            self.shared.counters.lock().rejected += 1;
            return Err(Rejection::Invalid(why));
        }
        self.admit(spec, Init::Fresh(spec))
    }

    /// Submit a job whose backend (and block size) the tuner chooses:
    /// the spec's own `backend`/`block_size` are placeholders and are
    /// overwritten by [`Tuner::pick`] before admission. The admitted
    /// job — and any snapshot it produces — carries the concrete tuned
    /// backend, so resume and determinism guarantees are untouched.
    /// Tuning activity is surfaced through [`ServiceStats`]: `tuned`,
    /// `tune_trials`, `tune_store_hits`, `tune_store_misses`.
    pub fn submit_auto(&self, spec: JobSpec) -> Result<JobHandle, Rejection> {
        let app = match spec.app {
            App::Airfoil => ump_tune::App::Airfoil,
            App::Volna => ump_tune::App::Volna,
        };
        let choice = self.tuner().pick(app, spec.nx, spec.ny);
        {
            let mut c = self.shared.counters.lock();
            c.tuned += 1;
            c.tune_trials += choice.trials as u64;
            if choice.from_store {
                c.tune_store_hits += 1;
            } else {
                c.tune_store_misses += 1;
            }
        }
        let mut tuned = spec;
        tuned.backend = choice.backend;
        tuned.block_size = choice.block_size;
        self.submit(tuned)
    }

    /// Resume a job from a snapshot (typically a cancelled job's
    /// [`JobOutcome::snapshot`] or a [`Service::checkpoint`]). The job
    /// continues from its recorded step toward `spec.steps`; a snapshot
    /// that already reached its step count is rejected as invalid.
    pub fn resume(&self, snapshot: &[u8]) -> Result<JobHandle, Rejection> {
        let (spec, steps_done) = JobState::peek(snapshot).map_err(|e| {
            self.shared.counters.lock().rejected += 1;
            Rejection::Invalid(e.to_string())
        })?;
        if steps_done >= spec.steps {
            self.shared.counters.lock().rejected += 1;
            return Err(Rejection::Invalid(format!(
                "snapshot already complete: {steps_done}/{} steps",
                spec.steps
            )));
        }
        self.admit(spec, Init::Snapshot(snapshot.to_vec()))
    }

    fn admit(&self, spec: JobSpec, init: Init) -> Result<JobHandle, Rejection> {
        // reserve an in-flight slot or reject; CAS so concurrent
        // submitters cannot overshoot the bound
        let mut current = self.shared.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                self.shared.counters.lock().rejected += 1;
                return Err(Rejection::Saturated {
                    in_flight: current,
                    capacity: self.capacity,
                });
            }
            match self.shared.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (frame_tx, frame_rx) = channel();
        let (outcome_tx, outcome_rx) = channel();
        let cancel = Arc::new(AtomicBool::new(false));
        self.shared.cancels.lock().insert(id, Arc::clone(&cancel));
        let job = Active {
            id,
            spec,
            init,
            state: None,
            cache: self.shared.cache.scoped(&spec.cache_scope()),
            frames: frame_tx,
            outcome: outcome_tx,
            cancel,
            abort: Arc::new(AtomicBool::new(false)),
            busy_seconds: 0.0,
            attempts: 0,
            not_before: None,
        };
        {
            let mut counters = self.shared.counters.lock();
            counters.submitted += 1;
        }
        self.shared.ready.lock().push_back(job);
        self.shared.ready_cv.notify_one();
        Ok(JobHandle {
            id,
            spec,
            frames: frame_rx,
            outcome: outcome_rx,
        })
    }

    /// Request cancellation of a job. Returns `false` for unknown ids.
    /// The job stops at its next step boundary; its outcome carries
    /// status [`JobStatus::Cancelled`] and a resumable snapshot.
    pub fn cancel(&self, id: u64) -> bool {
        match self.shared.cancels.lock().get(&id) {
            Some(flag) => {
                flag.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// The latest stored snapshot of a job: periodic checkpoints while
    /// it runs (cadence `spec.checkpoint_every`), the final state once
    /// it ends.
    pub fn checkpoint(&self, id: u64) -> Option<Vec<u8>> {
        self.shared.checkpoints.lock().get(&id).cloned()
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> ServiceStats {
        let queued = self.shared.ready.lock().len();
        let counters = self.shared.counters.lock();
        let mut per_backend: Vec<BackendThroughput> = counters
            .per_backend
            .iter()
            .map(|(name, &(steps, seconds))| BackendThroughput {
                backend: name.clone(),
                steps,
                seconds,
            })
            .collect();
        per_backend.sort_by(|a, b| a.backend.cmp(&b.backend));
        ServiceStats {
            submitted: counters.submitted,
            rejected: counters.rejected,
            queued,
            running: counters.running,
            completed: counters.completed,
            cancelled: counters.cancelled,
            failed: counters.failed,
            retried: counters.retried,
            watchdog_fired: counters.watchdog_fired,
            tuned: counters.tuned,
            tune_trials: counters.tune_trials,
            tune_store_hits: counters.tune_store_hits,
            tune_store_misses: counters.tune_store_misses,
            plan_hits: self.shared.cache.hits(),
            plan_builds: self.shared.cache.builds(),
            per_backend,
        }
    }

    /// Jobs in flight right now (queued + running).
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }
}

impl Drop for Service {
    /// Graceful drain: workers finish every admitted job, then exit.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
    }
}

/// The lease watchdog: periodically scans live leases and aborts any
/// that outlived the deadline. Abortion is cooperative — the worker
/// notices the flag at its next step boundary (or stall poll) and
/// routes the job to the retry policy.
fn watchdog_loop(shared: &Shared) {
    let poll =
        (shared.lease_timeout / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
    while !shared.shutdown.load(Ordering::Acquire) || !shared.leases.lock().is_empty() {
        std::thread::sleep(poll);
        let now = Instant::now();
        let mut fired = 0u64;
        {
            let leases = shared.leases.lock();
            for lease in leases.values() {
                if now.duration_since(lease.started) > shared.lease_timeout
                    && !lease.abort.swap(true, Ordering::AcqRel)
                {
                    fired += 1;
                }
            }
        }
        if fired > 0 {
            shared.counters.lock().watchdog_fired += fired;
        }
    }
}

/// One pool worker: lease → slice → requeue/retry/finalize, until
/// shutdown *and* an empty queue (drain semantics — backed-off retries
/// are waited out, not abandoned).
fn worker_loop(shared: &Shared, team: usize) {
    let pool = ExecPool::new(team);
    loop {
        let mut job = {
            let mut ready = shared.ready.lock();
            loop {
                let now = Instant::now();
                // FIFO among leasable entries; backed-off retries are
                // skipped until their gate opens
                if let Some(pos) = ready
                    .iter()
                    .position(|j| j.not_before.is_none_or(|t| t <= now))
                {
                    break ready.remove(pos).expect("position just found");
                }
                let backoff_wait = ready
                    .iter()
                    .filter_map(|j| j.not_before)
                    .map(|t| t.saturating_duration_since(now))
                    .min();
                match backoff_wait {
                    // only backed-off jobs queued: sleep out the nearest
                    // gate (shutdown still drains them afterward)
                    Some(wait) => {
                        shared
                            .ready_cv
                            .wait_for(&mut ready, wait.max(Duration::from_millis(1)));
                    }
                    None => {
                        if shared.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                        shared.ready_cv.wait(&mut ready);
                    }
                }
            }
        };
        job.not_before = None;
        shared.counters.lock().running += 1;
        if shared.lease_timeout > Duration::ZERO {
            shared.leases.lock().insert(
                job.id,
                Lease {
                    started: Instant::now(),
                    abort: Arc::clone(&job.abort),
                },
            );
        }
        let disposition = run_slice(shared, &pool, &mut job);
        if shared.lease_timeout > Duration::ZERO {
            shared.leases.lock().remove(&job.id);
        }
        shared.counters.lock().running -= 1;
        match disposition {
            Disposition::Requeue => {
                shared.ready.lock().push_back(job);
                shared.ready_cv.notify_one();
            }
            Disposition::Finished(JobStatus::Failed(_))
                if job.attempts < shared.retry.max_attempts
                    && !job.cancel.load(Ordering::Acquire) =>
            {
                retry(shared, job);
            }
            Disposition::Finished(status) => finalize(shared, job, status),
        }
    }
}

/// Recover a failed job: restore from its last periodic checkpoint
/// (fall back to a from-scratch rebuild when none is decodable — the
/// job's `init` is kept for exactly this), apply the linear backoff,
/// and requeue. Determinism makes either restore point bit-safe; the
/// checkpoint just resumes closer to the failure.
fn retry(shared: &Shared, mut job: Active) {
    job.attempts += 1;
    shared.counters.lock().retried += 1;
    job.abort.store(false, Ordering::Release);
    let checkpoint = shared.checkpoints.lock().get(&job.id).cloned();
    // a corrupt checkpoint must surface as a typed decode error and
    // fall through to the fresh rebuild, never take down the worker
    job.state = checkpoint.and_then(|bytes| {
        std::panic::catch_unwind(|| JobState::restore(&bytes))
            .ok()
            .and_then(|r| r.ok())
    });
    let backoff = shared.retry.backoff * job.attempts;
    job.not_before = (backoff > Duration::ZERO).then(|| Instant::now() + backoff);
    shared.ready.lock().push_back(job);
    shared.ready_cv.notify_one();
}

enum Disposition {
    Requeue,
    Finished(JobStatus),
}

/// Run one lease: materialize the state if needed, then up to
/// `slice_steps` timesteps with frame streaming, periodic
/// checkpointing, and cancellation checks at step boundaries.
fn run_slice(shared: &Shared, pool: &ExecPool, job: &mut Active) -> Disposition {
    // first lease (or retry with no usable checkpoint): build from the
    // spec or decode the resume snapshot — `init` is kept, not consumed
    if job.state.is_none() {
        let init = &job.init;
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match init {
            Init::Fresh(spec) => Ok(JobState::new(*spec)),
            Init::Snapshot(bytes) => JobState::restore(bytes),
        }));
        match built {
            Ok(Ok(state)) => job.state = Some(state),
            Ok(Err(e)) => return Disposition::Finished(JobStatus::Failed(e.to_string())),
            Err(p) => return Disposition::Finished(JobStatus::Failed(panic_msg(&p))),
        }
    }
    let state = job.state.as_mut().expect("state just materialized");
    let spec = *state.spec();
    let t0 = Instant::now();
    let mut steps_this_slice = 0u64;
    let status = loop {
        if job.cancel.load(Ordering::Acquire) {
            break Some(JobStatus::Cancelled);
        }
        if job.abort.load(Ordering::Acquire) {
            break Some(JobStatus::Failed(
                "watchdog: lease deadline exceeded".into(),
            ));
        }
        if state.is_done() {
            break Some(JobStatus::Completed);
        }
        if steps_this_slice >= shared.slice_steps {
            break None;
        }
        // deterministic fault hook, keyed (job id, 1-based step index);
        // one branch when no injector is configured
        let mut inject_panic = false;
        if let Some(inj) = &shared.fault {
            match inj.on_job_step(job.id, state.steps_done() + 1) {
                Some(JobFault::Kill) => {
                    break Some(JobStatus::Failed(format!(
                        "injected fault: worker killed at step {}",
                        state.steps_done() + 1
                    )));
                }
                Some(JobFault::Panic) => inject_panic = true,
                Some(JobFault::Stall(dur)) => {
                    // cooperative stall: sleeps in watchdog-visible
                    // increments so an abort (or cancel) interrupts it
                    let until = Instant::now() + dur;
                    while Instant::now() < until
                        && !job.abort.load(Ordering::Acquire)
                        && !job.cancel.load(Ordering::Acquire)
                    {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    continue; // re-run the boundary checks
                }
                None => {}
            }
        }
        let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                panic!(
                    "injected fault: kernel panic in job {} step {}",
                    job.id,
                    state.steps_done() + 1
                );
            }
            state.step(pool, &job.cache, None)
        }));
        let value = match stepped {
            Ok(v) => v,
            Err(p) => break Some(JobStatus::Failed(panic_msg(&p))),
        };
        steps_this_slice += 1;
        let step = state.steps_done();
        // receivers may be gone (client dropped the handle) — keep going
        let _ = job.frames.send(Frame { step, value });
        if spec.checkpoint_every > 0 && step.is_multiple_of(spec.checkpoint_every) {
            let mut snap = state.snapshot();
            if let Some(inj) = &shared.fault {
                if let Some(byte) = inj.corrupt_checkpoint(job.id) {
                    if !snap.is_empty() {
                        let i = byte as usize % snap.len();
                        snap[i] ^= 0xff;
                    }
                }
            }
            shared.checkpoints.lock().insert(job.id, snap);
        }
        if state.is_done() {
            break Some(JobStatus::Completed);
        }
    };
    let busy = t0.elapsed().as_secs_f64();
    job.busy_seconds += busy;
    {
        let mut counters = shared.counters.lock();
        let entry = counters
            .per_backend
            .entry(spec.backend.name())
            .or_insert((0, 0.0));
        entry.0 += steps_this_slice;
        entry.1 += busy;
    }
    match status {
        None => Disposition::Requeue,
        Some(s) => Disposition::Finished(s),
    }
}

/// Record the terminal state, store the final snapshot, release the
/// admission slot, and deliver the outcome.
fn finalize(shared: &Shared, job: Active, status: JobStatus) {
    let (steps_done, history, snapshot) = match &job.state {
        Some(state) => (
            state.steps_done(),
            state.history().to_vec(),
            state.snapshot(),
        ),
        // failed before materializing: nothing to snapshot
        None => (0, Vec::new(), Vec::new()),
    };
    {
        let mut counters = shared.counters.lock();
        match &status {
            JobStatus::Completed => counters.completed += 1,
            JobStatus::Cancelled => counters.cancelled += 1,
            JobStatus::Failed(_) => counters.failed += 1,
        }
    }
    if !snapshot.is_empty() {
        shared.checkpoints.lock().insert(job.id, snapshot.clone());
    }
    shared.cancels.lock().remove(&job.id);
    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    let _ = job.outcome.send(JobOutcome {
        id: job.id,
        spec: job.spec,
        status,
        steps_done,
        history,
        snapshot,
        busy_seconds: job.busy_seconds,
        attempts: job.attempts,
    });
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked".into()
    }
}
