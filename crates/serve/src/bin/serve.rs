//! `serve` — run a batch of mesh-simulation jobs through the service.
//!
//! ```text
//! serve [--pools N] [--team N] [--queue N] [--slice N]
//!       [--jobs N] [--steps N] [--mesh small|medium]
//!       [--backends a,b,...] [--seed N] [--checkpoint-every N]
//!       [--retries N] [--backoff-ms N] [--lease-timeout-ms N]
//! ```
//!
//! Submits `--jobs` jobs round-robin over the backend list, alternating
//! Airfoil and Volna, streams progress, and prints per-job outcomes
//! plus the final [`ServiceStats`] table. Exits nonzero if any job does
//! not complete.

use std::process::ExitCode;

use std::time::Duration;

use ump_core::Backend;
use ump_serve::{App, JobSpec, JobStatus, Service, ServiceConfig, ServiceStats};

struct Args {
    config: ServiceConfig,
    jobs: usize,
    steps: u64,
    mesh: (usize, usize, usize, usize), // airfoil nx,ny / volna nx,ny
    backends: Vec<Backend>,
    seed: u64,
    checkpoint_every: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut config = ServiceConfig::default();
    let mut jobs = 8usize;
    let mut steps = 20u64;
    let mut mesh = (48, 24, 20, 14);
    let mut backends = vec![
        Backend::Seq,
        Backend::Threaded,
        Backend::Simd { lanes: 4 },
        Backend::Fused,
    ];
    let mut seed = 1u64;
    let mut checkpoint_every = 0u64;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut value = || -> Result<&str, String> {
            i += 1;
            argv.get(i)
                .map(|s| s.as_str())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--pools" => config.pools = value()?.parse().map_err(|e| format!("--pools: {e}"))?,
            "--team" => config.team = value()?.parse().map_err(|e| format!("--team: {e}"))?,
            "--queue" => {
                config.admission_capacity = value()?.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--slice" => {
                config.slice_steps = value()?.parse().map_err(|e| format!("--slice: {e}"))?
            }
            "--jobs" => jobs = value()?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--steps" => steps = value()?.parse().map_err(|e| format!("--steps: {e}"))?,
            "--seed" => seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--checkpoint-every" => {
                checkpoint_every = value()?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?
            }
            "--retries" => {
                config.retry.max_attempts =
                    value()?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--backoff-ms" => {
                config.retry.backoff = Duration::from_millis(
                    value()?.parse().map_err(|e| format!("--backoff-ms: {e}"))?,
                )
            }
            "--lease-timeout-ms" => {
                config.lease_timeout = Duration::from_millis(
                    value()?
                        .parse()
                        .map_err(|e| format!("--lease-timeout-ms: {e}"))?,
                )
            }
            "--mesh" => {
                mesh = match value()? {
                    "small" => (48, 24, 20, 14),
                    "medium" => (96, 48, 40, 28),
                    other => return Err(format!("--mesh {other}: expected small|medium")),
                }
            }
            "--backends" => {
                backends = value()?
                    .split(',')
                    .map(|s| {
                        Backend::parse(s.trim()).ok_or_else(|| format!("unknown backend {s:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--help" | "-h" => {
                println!(
                    "serve: run a batch of mesh-simulation jobs through ump_serve\n\
                     options: --pools N --team N --queue N --slice N --jobs N --steps N\n\
                     \x20        --mesh small|medium --backends a,b,... --seed N --checkpoint-every N\n\
                     \x20        --retries N --backoff-ms N --lease-timeout-ms N\n\
                     backends: {}",
                    Backend::all()
                        .into_iter()
                        .map(|b| b.name())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if backends.is_empty() {
        return Err("--backends list is empty".into());
    }
    Ok(Args {
        config,
        jobs,
        steps,
        mesh,
        backends,
        seed,
        checkpoint_every,
    })
}

fn print_stats(stats: &ServiceStats) {
    println!(
        "\nstats: submitted={} rejected={} completed={} cancelled={} failed={}",
        stats.submitted, stats.rejected, stats.completed, stats.cancelled, stats.failed
    );
    println!(
        "resilience: retried={} watchdog_fired={}",
        stats.retried, stats.watchdog_fired
    );
    println!(
        "plan cache: {} hits / {} builds",
        stats.plan_hits, stats.plan_builds
    );
    println!(
        "{:<18} {:>10} {:>12} {:>14}",
        "backend", "steps", "pool-sec", "steps/sec"
    );
    for b in &stats.per_backend {
        println!(
            "{:<18} {:>10} {:>12.4} {:>14.1}",
            b.backend,
            b.steps,
            b.seconds,
            b.steps_per_sec()
        );
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "serve: {} jobs x {} steps over {} pools (team {}), slice {} steps, queue {}",
        args.jobs,
        args.steps,
        args.config.pools,
        args.config.team,
        args.config.slice_steps,
        args.config.admission_capacity
    );

    let service = Service::new(args.config);
    let (anx, any, vnx, vny) = args.mesh;
    let mut handles = Vec::with_capacity(args.jobs);
    for j in 0..args.jobs {
        let backend = args.backends[j % args.backends.len()];
        let spec = if j % 2 == 0 {
            JobSpec::new(App::Airfoil, anx, any, backend, args.steps)
        } else {
            JobSpec::new(App::Volna, vnx, vny, backend, args.steps)
        }
        .with_seed(args.seed.wrapping_add(j as u64))
        .with_checkpoint_every(args.checkpoint_every);
        match service.submit(spec) {
            Ok(h) => handles.push(h),
            Err(why) => {
                eprintln!("job {j}: rejected: {why}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut ok = true;
    for h in &handles {
        let out = h.wait();
        let spec = &out.spec;
        let last = out.history.last().copied().unwrap_or(f64::NAN);
        let status = match &out.status {
            JobStatus::Completed => "completed".to_string(),
            JobStatus::Cancelled => {
                ok = false;
                "cancelled".to_string()
            }
            JobStatus::Failed(why) => {
                ok = false;
                format!("FAILED: {why}")
            }
        };
        println!(
            "job {:>3} {:<8} {:>3}x{:<3} {:<16} {:>4} steps  last={:+.6e}  busy={:.3}s  {}",
            out.id,
            spec.app.name(),
            spec.nx,
            spec.ny,
            spec.backend.name(),
            out.steps_done,
            last,
            out.busy_seconds,
            status
        );
    }

    print_stats(&service.stats());
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
