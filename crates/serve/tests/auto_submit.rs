//! `submit_auto`: the service consults the tuner, admits the job under
//! the concrete tuned backend, surfaces tuning activity in
//! `ServiceStats`, and the tuned run's numbers match the sequential
//! reference within the conformance tolerance.

use std::sync::Arc;
use ump_core::Backend;
use ump_serve::{App, JobSpec, JobStatus, Service, ServiceConfig, Tuner};
use ump_tune::HostProbe;

fn test_service() -> Service {
    Service::new(ServiceConfig {
        pools: 2,
        team: 2,
        tuner: Some(Arc::new(
            Tuner::with_probe(HostProbe::fixed(2, 8.0))
                .with_top_k(2)
                .with_trial_steps(1)
                .with_team(2),
        )),
        ..ServiceConfig::default()
    })
}

#[test]
fn auto_submission_is_tuned_counted_and_correct() {
    let service = test_service();
    // the spec's backend is a placeholder: submit_auto overwrites it
    let spec = JobSpec::new(App::Airfoil, 16, 10, Backend::Seq, 4).with_seed(7);

    let out = service.submit_auto(spec).expect("admitted").wait();
    assert_eq!(out.status, JobStatus::Completed);
    assert!(
        Backend::all().contains(&out.spec.backend),
        "job ran on unregistered backend {:?}",
        out.spec.backend
    );

    let stats = service.stats();
    assert_eq!(stats.tuned, 1);
    assert_eq!(stats.tune_store_misses, 1);
    assert_eq!(stats.tune_store_hits, 0);
    assert!(stats.tune_trials > 0, "cold auto submission must trial");

    // the tuned run agrees with a plain sequential job step for step
    let seq = service
        .submit(JobSpec::new(App::Airfoil, 16, 10, Backend::Seq, 4).with_seed(7))
        .expect("admitted")
        .wait();
    assert_eq!(out.history.len(), seq.history.len());
    for (step, (a, s)) in out.history.iter().zip(&seq.history).enumerate() {
        assert!(
            (a - s).abs() <= 1e-12,
            "step {step}: tuned {} vs seq {}",
            a,
            s
        );
    }
}

#[test]
fn second_auto_submission_is_a_store_hit() {
    let service = test_service();
    let spec = JobSpec::new(App::Volna, 14, 10, Backend::Seq, 3).with_seed(3);

    let first = service.submit_auto(spec).expect("admitted").wait();
    assert_eq!(first.status, JobStatus::Completed);
    let trials_after_first = service.stats().tune_trials;
    assert!(trials_after_first > 0);

    let second = service.submit_auto(spec).expect("admitted").wait();
    assert_eq!(second.status, JobStatus::Completed);
    assert_eq!(second.spec.backend, first.spec.backend);

    let stats = service.stats();
    assert_eq!(stats.tuned, 2);
    assert_eq!(
        stats.tune_store_hits, 1,
        "second identical auto submission must hit the store"
    );
    assert_eq!(
        stats.tune_trials, trials_after_first,
        "a store hit must run zero additional trials"
    );
}
