//! Property test: snapshot at a random step k, restore, run to the
//! end — the Δt/RMS history and every evolving dat must be
//! bit-identical to the uninterrupted run, for both applications.

use proptest::prelude::*;
use ump_core::{Backend, ExecPool, PlanCache};
use ump_serve::{App, JobSpec, JobState};

fn run_roundtrip(app: App, nx: usize, ny: usize, seed: u64, steps: u64, k: u64) {
    let backend = if seed.is_multiple_of(2) {
        Backend::Seq
    } else {
        Backend::Threaded
    };
    let spec = JobSpec::new(app, nx, ny, backend, steps).with_seed(seed);
    let pool = ExecPool::new(2);
    let cache = PlanCache::new();

    let mut uninterrupted = JobState::new(spec);
    for _ in 0..steps {
        uninterrupted.step(&pool, &cache, None);
    }

    let mut interrupted = JobState::new(spec);
    for _ in 0..k {
        interrupted.step(&pool, &cache, None);
    }
    let snap = interrupted.snapshot();
    drop(interrupted); // the original is gone; only the bytes survive
    let mut resumed = JobState::restore(&snap).expect("own snapshots restore");
    assert_eq!(resumed.steps_done(), k);
    for _ in k..steps {
        resumed.step(&pool, &cache, None);
    }

    assert!(resumed.is_done());
    assert!(
        resumed.bits_eq(&uninterrupted),
        "{app} {nx}x{ny} seed {seed}: restart at step {k}/{steps} diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn airfoil_restart_is_bit_identical(
        seed in 0u64..1_000_000,
        nx in 8usize..20,
        ny in 4usize..12,
        k in 1u64..5,
    ) {
        run_roundtrip(App::Airfoil, nx, ny, seed, 5, k);
    }

    #[test]
    fn volna_restart_is_bit_identical(
        seed in 0u64..1_000_000,
        nx in 8usize..20,
        ny in 6usize..14,
        k in 1u64..5,
    ) {
        run_roundtrip(App::Volna, nx, ny, seed, 5, k);
    }
}
