//! Property test: snapshot at a random step k, restore, run to the
//! end — the Δt/RMS history and every evolving dat must be
//! bit-identical to the uninterrupted run, for both applications.

use proptest::prelude::*;
use ump_core::{Backend, ExecPool, PlanCache};
use ump_serve::{App, JobSpec, JobState};

fn run_roundtrip(app: App, nx: usize, ny: usize, seed: u64, steps: u64, k: u64) {
    let backend = if seed.is_multiple_of(2) {
        Backend::Seq
    } else {
        Backend::Threaded
    };
    let spec = JobSpec::new(app, nx, ny, backend, steps).with_seed(seed);
    let pool = ExecPool::new(2);
    let cache = PlanCache::new();

    let mut uninterrupted = JobState::new(spec);
    for _ in 0..steps {
        uninterrupted.step(&pool, &cache, None);
    }

    let mut interrupted = JobState::new(spec);
    for _ in 0..k {
        interrupted.step(&pool, &cache, None);
    }
    let snap = interrupted.snapshot();
    drop(interrupted); // the original is gone; only the bytes survive
    let mut resumed = JobState::restore(&snap).expect("own snapshots restore");
    assert_eq!(resumed.steps_done(), k);
    for _ in k..steps {
        resumed.step(&pool, &cache, None);
    }

    assert!(resumed.is_done());
    assert!(
        resumed.bits_eq(&uninterrupted),
        "{app} {nx}x{ny} seed {seed}: restart at step {k}/{steps} diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn airfoil_restart_is_bit_identical(
        seed in 0u64..1_000_000,
        nx in 8usize..20,
        ny in 4usize..12,
        k in 1u64..5,
    ) {
        run_roundtrip(App::Airfoil, nx, ny, seed, 5, k);
    }

    #[test]
    fn volna_restart_is_bit_identical(
        seed in 0u64..1_000_000,
        nx in 8usize..20,
        ny in 6usize..14,
        k in 1u64..5,
    ) {
        run_roundtrip(App::Volna, nx, ny, seed, 5, k);
    }
}

// ---------------------------------------------------------------------
// S1: snapshot corruption fuzzer — decoding hostile bytes must yield a
// typed error or a coherent state, never a panic.
// ---------------------------------------------------------------------

use std::sync::OnceLock;

/// One real snapshot (Airfoil, 3 of 4 steps done) shared by every
/// corruption case — building it is the expensive part, mutating it
/// is not.
fn sample_snapshot() -> &'static [u8] {
    static SNAP: OnceLock<Vec<u8>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let spec = JobSpec::new(App::Airfoil, 10, 6, Backend::Seq, 4).with_seed(42);
        let pool = ExecPool::new(1);
        let cache = PlanCache::new();
        let mut state = JobState::new(spec);
        for _ in 0..3 {
            state.step(&pool, &cache, None);
        }
        state.snapshot()
    })
}

#[test]
fn version_bump_and_empty_input_are_typed_errors() {
    assert!(JobState::restore(&[]).is_err());
    let mut bumped = sample_snapshot().to_vec();
    bumped[4] = bumped[4].wrapping_add(1); // version low byte
    assert!(
        JobState::restore(&bumped).is_err(),
        "future version accepted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Flip one byte anywhere in the snapshot: restore must return —
    // Ok with different-but-coherent payload bits is fine, a typed
    // error is fine, a panic is the bug. The magic/version prefix
    // must always be *detected* (Err).
    #[test]
    fn single_byte_corruption_never_panics(idx in 0usize..1 << 20, mask in 1usize..256) {
        let mut bytes = sample_snapshot().to_vec();
        let i = idx % bytes.len();
        bytes[i] ^= mask as u8;
        let restored = JobState::restore(&bytes);
        if i < 8 {
            prop_assert!(restored.is_err(), "corrupt magic/version at byte {i} accepted");
        }
        if let Ok(state) = restored {
            // whatever decoded must still be a runnable job
            prop_assert!(state.steps_done() <= state.spec().steps);
        }
    }

    // Any strict prefix of a snapshot is a typed error, not a panic —
    // the torn-write case for checkpoint files.
    #[test]
    fn truncated_snapshot_is_a_typed_error(cut in 0usize..1 << 20) {
        let snap = sample_snapshot();
        let cut = cut % snap.len(); // strict prefix
        prop_assert!(JobState::restore(&snap[..cut]).is_err(), "truncation at {cut} accepted");
    }

    // Corruption composed with truncation (a torn write over a bad
    // sector) must also degrade to a typed error or coherent state.
    #[test]
    fn corrupt_then_truncate_never_panics(
        idx in 0usize..1 << 20,
        mask in 1usize..256,
        cut in 0usize..1 << 20,
    ) {
        let mut bytes = sample_snapshot().to_vec();
        let i = idx % bytes.len();
        bytes[i] ^= mask as u8;
        let cut = cut % bytes.len();
        prop_assert!(JobState::restore(&bytes[..cut]).is_err());
    }
}
