//! Service-level acceptance tests: N jobs over M shared pools with
//! conformance against the sequential reference, bounded admission,
//! plan-cache sharing, and cancel → resume bit-identity.

use ump_core::Backend;
use ump_serve::{App, JobSpec, JobState, JobStatus, Rejection, Service, ServiceConfig};

const TOL: f64 = 1e-12;

/// The issue's headline acceptance run: 16 concurrent jobs — mixed
/// apps, seeds, and backends from every family — multiplexed over 4
/// shared pools, every one verified against the sequential reference
/// driver to 1e-12.
#[test]
fn sixteen_mixed_jobs_over_four_pools_match_step_seq() {
    let service = Service::new(ServiceConfig {
        pools: 4,
        team: 2,
        admission_capacity: 32,
        slice_steps: 3,
        ..ServiceConfig::default()
    });
    let backends = [
        Backend::Seq,
        Backend::Threaded,
        Backend::Simd { lanes: 4 },
        Backend::Simd { lanes: 8 },
        Backend::SimdThreaded { lanes: 4 },
        Backend::Simt,
        Backend::Fused,
        Backend::FusedSimd { lanes: 4 },
    ];
    let steps = 6u64;
    let mut handles = Vec::new();
    for j in 0..16u64 {
        let backend = backends[j as usize % backends.len()];
        let spec = if j % 2 == 0 {
            JobSpec::new(App::Airfoil, 24, 12, backend, steps)
        } else {
            JobSpec::new(App::Volna, 12, 10, backend, steps)
        }
        .with_seed(100 + j);
        handles.push(service.submit(spec).expect("under capacity"));
    }

    for h in &handles {
        let out = h.wait();
        assert_eq!(out.status, JobStatus::Completed, "job {}", h.id);
        assert_eq!(out.steps_done, steps);
        assert_eq!(out.history.len(), steps as usize);
        // one streamed frame per step, in order, mirroring the history
        let frames: Vec<_> = h.frames().try_iter().collect();
        assert_eq!(frames.len(), steps as usize);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.step, i as u64 + 1);
            assert_eq!(f.value.to_bits(), out.history[i].to_bits());
        }

        // conformance vs the sequential reference driver
        let final_state = out.final_state();
        let spec = out.spec;
        let mut reference = JobState::new(JobSpec {
            backend: Backend::Seq,
            ..spec
        });
        let pool = ump_core::ExecPool::new(1);
        let cache = ump_core::PlanCache::new();
        for _ in 0..steps {
            reference.step(&pool, &cache, None);
        }
        let diff = final_state.max_abs_diff(&reference);
        assert!(
            diff <= TOL,
            "job {} ({} on {}): |Δ| = {diff:e} > {TOL:e}",
            h.id,
            spec.app,
            spec.backend
        );
        for (got, want) in out.history.iter().zip(reference.history()) {
            assert!(
                (got - want).abs() <= TOL,
                "history diverged: {got} vs {want}"
            );
        }
    }

    let stats = service.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queued, 0);
    assert!(
        stats.plan_hits > 0,
        "16 jobs over shared meshes must reuse plans (hits={}, builds={})",
        stats.plan_hits,
        stats.plan_builds
    );
    let total_steps: u64 = stats.per_backend.iter().map(|b| b.steps).sum();
    assert_eq!(total_steps, 16 * steps);
}

/// Saturation sheds load with a reason instead of blocking the caller.
#[test]
fn admission_rejects_when_saturated_and_recovers() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 1,
        admission_capacity: 2,
        slice_steps: 4,
        ..ServiceConfig::default()
    });
    let long = JobSpec::new(App::Airfoil, 48, 24, Backend::Seq, 200);
    let a = service.submit(long.with_seed(1)).expect("first admitted");
    let b = service.submit(long.with_seed(2)).expect("second admitted");
    match service.submit(long.with_seed(3)) {
        Err(Rejection::Saturated {
            in_flight,
            capacity,
        }) => {
            assert_eq!((in_flight, capacity), (2, 2));
        }
        other => panic!(
            "expected saturation, got {other:?}",
            other = other.map(|h| h.id)
        ),
    }
    assert_eq!(service.stats().rejected, 1);
    // capacity frees as jobs finish; the same spec is then admitted
    assert_eq!(a.wait().status, JobStatus::Completed);
    assert_eq!(b.wait().status, JobStatus::Completed);
    let c = service.submit(long.with_seed(3)).expect("capacity freed");
    assert_eq!(c.wait().status, JobStatus::Completed);
}

/// Validation failures are typed `Invalid` rejections naming the field.
#[test]
fn invalid_specs_are_rejected_with_the_reason() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 1,
        ..ServiceConfig::default()
    });
    let bad = JobSpec {
        steps: 0,
        ..JobSpec::new(App::Volna, 8, 6, Backend::Seq, 1)
    };
    match service.submit(bad) {
        Err(Rejection::Invalid(why)) => assert!(why.contains("steps"), "{why}"),
        other => panic!(
            "expected Invalid, got {other:?}",
            other = other.map(|h| h.id)
        ),
    }
    // resuming garbage is equally typed
    assert!(matches!(
        service.resume(b"not a snapshot"),
        Err(Rejection::Invalid(_))
    ));
}

/// Satellite: a second identical job plans entirely from the shared
/// cache — hits rise, builds do not.
#[test]
fn second_identical_job_is_a_plan_cache_hit() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 2,
        ..ServiceConfig::default()
    });
    let spec = JobSpec::new(App::Airfoil, 24, 12, Backend::Threaded, 3).with_seed(7);
    service.submit(spec).unwrap().wait();
    let first = service.stats();
    assert!(first.plan_builds > 0, "threaded execution builds plans");

    service.submit(spec).unwrap().wait();
    let second = service.stats();
    assert_eq!(
        second.plan_builds, first.plan_builds,
        "identical job must not rebuild any plan"
    );
    assert!(
        second.plan_hits > first.plan_hits,
        "identical job must hit the cache ({} -> {})",
        first.plan_hits,
        second.plan_hits
    );
}

/// Kill a job mid-flight, resume it from its outcome snapshot on a
/// *different* service, and finish bit-identical to a run that was
/// never interrupted.
#[test]
fn cancelled_job_resumes_bit_identically() {
    let team = 2;
    let steps = 60u64;
    let spec = JobSpec::new(App::Volna, 16, 12, Backend::Threaded, steps).with_seed(42);

    // the uninterrupted reference, same team size as the service pools
    let pool = ump_core::ExecPool::new(team);
    let cache = ump_core::PlanCache::new();
    let mut uninterrupted = JobState::new(spec);
    for _ in 0..steps {
        uninterrupted.step(&pool, &cache, None);
    }

    let service = Service::new(ServiceConfig {
        pools: 2,
        team,
        slice_steps: 2,
        ..ServiceConfig::default()
    });
    let h = service.submit(spec).unwrap();
    // wait for proof of progress, then kill it (best-effort: on a fast
    // machine the job can finish before the cancel lands)
    let first = h.frames().recv().expect("at least one frame");
    assert_eq!(first.step, 1);
    let _ = service.cancel(h.id);
    let out = h.wait();

    let final_state = match out.status {
        JobStatus::Cancelled => {
            assert!(out.steps_done < steps, "cancel landed mid-run");
            assert!(!out.snapshot.is_empty());
            // resume on a fresh service: the snapshot is self-contained
            let service2 = Service::new(ServiceConfig {
                pools: 2,
                team,
                slice_steps: 2,
                ..ServiceConfig::default()
            });
            let resumed = service2.resume(&out.snapshot).expect("resumable");
            let out2 = resumed.wait();
            assert_eq!(out2.status, JobStatus::Completed);
            assert_eq!(out2.steps_done, steps);
            out2.final_state()
        }
        // the job can outrun the cancel on a fast machine — the
        // bit-identity assertion below still carries the test
        JobStatus::Completed => out.final_state(),
        JobStatus::Failed(why) => panic!("job failed: {why}"),
    };
    assert!(
        final_state.bits_eq(&uninterrupted),
        "killed-and-restored run must be bit-identical to uninterrupted"
    );

    // a completed snapshot has nothing left to run
    let done = final_state.snapshot();
    assert!(matches!(service.resume(&done), Err(Rejection::Invalid(_))));
}

/// Deterministic kill/restore: snapshot a local run at exactly step k,
/// resume it *into the service*, and finish bit-identical — no races,
/// unlike the live-cancel test above.
#[test]
fn snapshot_resumed_on_the_service_is_bit_identical() {
    let team = 2;
    let steps = 20u64;
    let spec = JobSpec::new(App::Airfoil, 20, 10, Backend::Fused, steps).with_seed(9);

    let pool = ump_core::ExecPool::new(team);
    let cache = ump_core::PlanCache::new();
    let mut uninterrupted = JobState::new(spec);
    for _ in 0..steps {
        uninterrupted.step(&pool, &cache, None);
    }

    let mut front = JobState::new(spec);
    for _ in 0..7 {
        front.step(&pool, &cache, None);
    }
    let service = Service::new(ServiceConfig {
        pools: 2,
        team,
        ..ServiceConfig::default()
    });
    let h = service.resume(&front.snapshot()).expect("mid-run snapshot");
    let out = h.wait();
    assert_eq!(out.status, JobStatus::Completed);
    assert_eq!(out.steps_done, steps);
    // frames resume from step 8, not step 1
    assert_eq!(h.frames().try_iter().next().unwrap().step, 8);
    assert!(
        out.final_state().bits_eq(&uninterrupted),
        "restore at step 7 must finish bit-identical"
    );
}

/// Periodic checkpoints land at the configured cadence and are
/// themselves resumable.
#[test]
fn periodic_checkpoints_are_resumable() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 1,
        slice_steps: 4,
        ..ServiceConfig::default()
    });
    let spec = JobSpec::new(App::Airfoil, 16, 8, Backend::Seq, 10)
        .with_seed(5)
        .with_checkpoint_every(4);
    let h = service.submit(spec).unwrap();
    let out = h.wait();
    assert_eq!(out.status, JobStatus::Completed);
    // the final snapshot is stored under the job id after completion
    let stored = service.checkpoint(h.id).expect("final snapshot stored");
    let (peeked, done) = JobState::peek(&stored).unwrap();
    assert_eq!(peeked, spec);
    assert_eq!(done, 10);
}
