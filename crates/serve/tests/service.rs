//! Service-level acceptance tests: N jobs over M shared pools with
//! conformance against the sequential reference, bounded admission,
//! plan-cache sharing, and cancel → resume bit-identity.

use ump_core::Backend;
use ump_serve::{App, JobSpec, JobState, JobStatus, Rejection, Service, ServiceConfig};

const TOL: f64 = 1e-12;

/// The issue's headline acceptance run: 16 concurrent jobs — mixed
/// apps, seeds, and backends from every family — multiplexed over 4
/// shared pools, every one verified against the sequential reference
/// driver to 1e-12.
#[test]
fn sixteen_mixed_jobs_over_four_pools_match_step_seq() {
    let service = Service::new(ServiceConfig {
        pools: 4,
        team: 2,
        admission_capacity: 32,
        slice_steps: 3,
        ..ServiceConfig::default()
    });
    let backends = [
        Backend::Seq,
        Backend::Threaded,
        Backend::Simd { lanes: 4 },
        Backend::Simd { lanes: 8 },
        Backend::SimdThreaded { lanes: 4 },
        Backend::Simt,
        Backend::Fused,
        Backend::FusedSimd { lanes: 4 },
    ];
    let steps = 6u64;
    let mut handles = Vec::new();
    for j in 0..16u64 {
        let backend = backends[j as usize % backends.len()];
        let spec = if j % 2 == 0 {
            JobSpec::new(App::Airfoil, 24, 12, backend, steps)
        } else {
            JobSpec::new(App::Volna, 12, 10, backend, steps)
        }
        .with_seed(100 + j);
        handles.push(service.submit(spec).expect("under capacity"));
    }

    for h in &handles {
        let out = h.wait();
        assert_eq!(out.status, JobStatus::Completed, "job {}", h.id);
        assert_eq!(out.steps_done, steps);
        assert_eq!(out.history.len(), steps as usize);
        // one streamed frame per step, in order, mirroring the history
        let frames: Vec<_> = h.frames().try_iter().collect();
        assert_eq!(frames.len(), steps as usize);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.step, i as u64 + 1);
            assert_eq!(f.value.to_bits(), out.history[i].to_bits());
        }

        // conformance vs the sequential reference driver
        let final_state = out.final_state();
        let spec = out.spec;
        let mut reference = JobState::new(JobSpec {
            backend: Backend::Seq,
            ..spec
        });
        let pool = ump_core::ExecPool::new(1);
        let cache = ump_core::PlanCache::new();
        for _ in 0..steps {
            reference.step(&pool, &cache, None);
        }
        let diff = final_state.max_abs_diff(&reference);
        assert!(
            diff <= TOL,
            "job {} ({} on {}): |Δ| = {diff:e} > {TOL:e}",
            h.id,
            spec.app,
            spec.backend
        );
        for (got, want) in out.history.iter().zip(reference.history()) {
            assert!(
                (got - want).abs() <= TOL,
                "history diverged: {got} vs {want}"
            );
        }
    }

    let stats = service.stats();
    assert_eq!(stats.completed, 16);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.queued, 0);
    assert!(
        stats.plan_hits > 0,
        "16 jobs over shared meshes must reuse plans (hits={}, builds={})",
        stats.plan_hits,
        stats.plan_builds
    );
    let total_steps: u64 = stats.per_backend.iter().map(|b| b.steps).sum();
    assert_eq!(total_steps, 16 * steps);
}

/// Saturation sheds load with a reason instead of blocking the caller.
#[test]
fn admission_rejects_when_saturated_and_recovers() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 1,
        admission_capacity: 2,
        slice_steps: 4,
        ..ServiceConfig::default()
    });
    let long = JobSpec::new(App::Airfoil, 48, 24, Backend::Seq, 200);
    let a = service.submit(long.with_seed(1)).expect("first admitted");
    let b = service.submit(long.with_seed(2)).expect("second admitted");
    match service.submit(long.with_seed(3)) {
        Err(Rejection::Saturated {
            in_flight,
            capacity,
        }) => {
            assert_eq!((in_flight, capacity), (2, 2));
        }
        other => panic!(
            "expected saturation, got {other:?}",
            other = other.map(|h| h.id)
        ),
    }
    assert_eq!(service.stats().rejected, 1);
    // capacity frees as jobs finish; the same spec is then admitted
    assert_eq!(a.wait().status, JobStatus::Completed);
    assert_eq!(b.wait().status, JobStatus::Completed);
    let c = service.submit(long.with_seed(3)).expect("capacity freed");
    assert_eq!(c.wait().status, JobStatus::Completed);
}

/// Validation failures are typed `Invalid` rejections naming the field.
#[test]
fn invalid_specs_are_rejected_with_the_reason() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 1,
        ..ServiceConfig::default()
    });
    let bad = JobSpec {
        steps: 0,
        ..JobSpec::new(App::Volna, 8, 6, Backend::Seq, 1)
    };
    match service.submit(bad) {
        Err(Rejection::Invalid(why)) => assert!(why.contains("steps"), "{why}"),
        other => panic!(
            "expected Invalid, got {other:?}",
            other = other.map(|h| h.id)
        ),
    }
    // resuming garbage is equally typed
    assert!(matches!(
        service.resume(b"not a snapshot"),
        Err(Rejection::Invalid(_))
    ));
}

/// Satellite: a second identical job plans entirely from the shared
/// cache — hits rise, builds do not.
#[test]
fn second_identical_job_is_a_plan_cache_hit() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 2,
        ..ServiceConfig::default()
    });
    let spec = JobSpec::new(App::Airfoil, 24, 12, Backend::Threaded, 3).with_seed(7);
    service.submit(spec).unwrap().wait();
    let first = service.stats();
    assert!(first.plan_builds > 0, "threaded execution builds plans");

    service.submit(spec).unwrap().wait();
    let second = service.stats();
    assert_eq!(
        second.plan_builds, first.plan_builds,
        "identical job must not rebuild any plan"
    );
    assert!(
        second.plan_hits > first.plan_hits,
        "identical job must hit the cache ({} -> {})",
        first.plan_hits,
        second.plan_hits
    );
}

/// Kill a job mid-flight, resume it from its outcome snapshot on a
/// *different* service, and finish bit-identical to a run that was
/// never interrupted.
#[test]
fn cancelled_job_resumes_bit_identically() {
    let team = 2;
    let steps = 60u64;
    let spec = JobSpec::new(App::Volna, 16, 12, Backend::Threaded, steps).with_seed(42);

    // the uninterrupted reference, same team size as the service pools
    let pool = ump_core::ExecPool::new(team);
    let cache = ump_core::PlanCache::new();
    let mut uninterrupted = JobState::new(spec);
    for _ in 0..steps {
        uninterrupted.step(&pool, &cache, None);
    }

    let service = Service::new(ServiceConfig {
        pools: 2,
        team,
        slice_steps: 2,
        ..ServiceConfig::default()
    });
    let h = service.submit(spec).unwrap();
    // wait for proof of progress, then kill it (best-effort: on a fast
    // machine the job can finish before the cancel lands)
    let first = h.frames().recv().expect("at least one frame");
    assert_eq!(first.step, 1);
    let _ = service.cancel(h.id);
    let out = h.wait();

    let final_state = match out.status {
        JobStatus::Cancelled => {
            assert!(out.steps_done < steps, "cancel landed mid-run");
            assert!(!out.snapshot.is_empty());
            // resume on a fresh service: the snapshot is self-contained
            let service2 = Service::new(ServiceConfig {
                pools: 2,
                team,
                slice_steps: 2,
                ..ServiceConfig::default()
            });
            let resumed = service2.resume(&out.snapshot).expect("resumable");
            let out2 = resumed.wait();
            assert_eq!(out2.status, JobStatus::Completed);
            assert_eq!(out2.steps_done, steps);
            out2.final_state()
        }
        // the job can outrun the cancel on a fast machine — the
        // bit-identity assertion below still carries the test
        JobStatus::Completed => out.final_state(),
        JobStatus::Failed(why) => panic!("job failed: {why}"),
    };
    assert!(
        final_state.bits_eq(&uninterrupted),
        "killed-and-restored run must be bit-identical to uninterrupted"
    );

    // a completed snapshot has nothing left to run
    let done = final_state.snapshot();
    assert!(matches!(service.resume(&done), Err(Rejection::Invalid(_))));
}

/// Deterministic kill/restore: snapshot a local run at exactly step k,
/// resume it *into the service*, and finish bit-identical — no races,
/// unlike the live-cancel test above.
#[test]
fn snapshot_resumed_on_the_service_is_bit_identical() {
    let team = 2;
    let steps = 20u64;
    let spec = JobSpec::new(App::Airfoil, 20, 10, Backend::Fused, steps).with_seed(9);

    let pool = ump_core::ExecPool::new(team);
    let cache = ump_core::PlanCache::new();
    let mut uninterrupted = JobState::new(spec);
    for _ in 0..steps {
        uninterrupted.step(&pool, &cache, None);
    }

    let mut front = JobState::new(spec);
    for _ in 0..7 {
        front.step(&pool, &cache, None);
    }
    let service = Service::new(ServiceConfig {
        pools: 2,
        team,
        ..ServiceConfig::default()
    });
    let h = service.resume(&front.snapshot()).expect("mid-run snapshot");
    let out = h.wait();
    assert_eq!(out.status, JobStatus::Completed);
    assert_eq!(out.steps_done, steps);
    // frames resume from step 8, not step 1
    assert_eq!(h.frames().try_iter().next().unwrap().step, 8);
    assert!(
        out.final_state().bits_eq(&uninterrupted),
        "restore at step 7 must finish bit-identical"
    );
}

/// Periodic checkpoints land at the configured cadence and are
/// themselves resumable.
#[test]
fn periodic_checkpoints_are_resumable() {
    let service = Service::new(ServiceConfig {
        pools: 1,
        team: 1,
        slice_steps: 4,
        ..ServiceConfig::default()
    });
    let spec = JobSpec::new(App::Airfoil, 16, 8, Backend::Seq, 10)
        .with_seed(5)
        .with_checkpoint_every(4);
    let h = service.submit(spec).unwrap();
    let out = h.wait();
    assert_eq!(out.status, JobStatus::Completed);
    // the final snapshot is stored under the job id after completion
    let stored = service.checkpoint(h.id).expect("final snapshot stored");
    let (peeked, done) = JobState::peek(&stored).unwrap();
    assert_eq!(peeked, spec);
    assert_eq!(done, 10);
}

// ---------------------------------------------------------------------
// fault-tolerant execution: injected faults, retry policies, watchdog
// ---------------------------------------------------------------------

mod resilience {
    use std::sync::Arc;
    use std::time::Duration;

    use ump_core::Backend;
    use ump_fault::FaultPlan;
    use ump_serve::{App, JobSpec, JobStatus, Rejection, RetryPolicy, Service, ServiceConfig};

    /// Run `spec` on an unfaulted single-pool service — the golden
    /// reference every recovered run must match to the bit.
    fn clean_run(spec: JobSpec, team: usize) -> (ump_serve::JobState, Vec<f64>) {
        let service = Service::new(ServiceConfig {
            pools: 1,
            team,
            ..ServiceConfig::default()
        });
        let out = service.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::Completed);
        (out.final_state(), out.history)
    }

    fn retrying(fault: FaultPlan, lease_timeout: Duration) -> Service {
        Service::new(ServiceConfig {
            pools: 1,
            team: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                backoff: Duration::from_millis(2),
            },
            lease_timeout,
            fault: Some(Arc::new(fault.injector())),
            ..ServiceConfig::default()
        })
    }

    /// A worker killed mid-job is retried from the last checkpoint and
    /// finishes bit-identical to an unfaulted run.
    #[test]
    fn killed_job_retries_from_checkpoint_bit_identically() {
        let steps = 8u64;
        let spec = JobSpec::new(App::Airfoil, 20, 10, Backend::Fused, steps)
            .with_seed(7)
            .with_checkpoint_every(3);
        let (golden, golden_hist) = clean_run(spec, 2);

        // job ids start at 1; kill the first job at (1-based) step 6,
        // one step past its second checkpoint
        let service = retrying(FaultPlan::new().with_kill_job(1, 6), Duration::ZERO);
        let out = service.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::Completed);
        assert_eq!(out.steps_done, steps);
        assert_eq!(out.attempts, 1, "exactly one retry");
        let stats = service.stats();
        assert_eq!((stats.retried, stats.failed), (1, 0));
        assert!(out.final_state().bits_eq(&golden), "state diverged");
        assert!(
            out.history
                .iter()
                .zip(&golden_hist)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "history diverged"
        );
    }

    /// A kernel panic inside a step is contained by the pool, surfaces
    /// as a failed attempt, and the retry completes bit-identically.
    #[test]
    fn panicking_job_retries_bit_identically() {
        let steps = 6u64;
        let spec = JobSpec::new(App::Volna, 12, 10, Backend::Threaded, steps)
            .with_seed(11)
            .with_checkpoint_every(2);
        let (golden, _) = clean_run(spec, 2);

        let service = retrying(FaultPlan::new().with_panic_step(1, 5), Duration::ZERO);
        let out = service.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::Completed, "{:?}", out.status);
        assert_eq!(out.attempts, 1);
        assert_eq!(service.stats().retried, 1);
        assert!(out.final_state().bits_eq(&golden), "state diverged");
    }

    /// A stuck job (injected stall far past the lease deadline) is
    /// reaped by the watchdog within one lease and retried to
    /// completion — the service-side no-hang guarantee.
    #[test]
    fn watchdog_reaps_stalled_lease_and_retry_completes() {
        let steps = 6u64;
        let spec = JobSpec::new(App::Airfoil, 16, 8, Backend::Seq, steps)
            .with_seed(3)
            .with_checkpoint_every(2);
        let (golden, _) = clean_run(spec, 1);

        let service = retrying(
            FaultPlan::new().with_stall_step(1, 4, 60_000),
            Duration::from_millis(80),
        );
        let out = service.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::Completed, "{:?}", out.status);
        assert_eq!(out.attempts, 1);
        let stats = service.stats();
        assert!(stats.watchdog_fired >= 1, "watchdog never fired");
        assert_eq!(stats.retried, 1);
        assert!(out.final_state().bits_eq(&golden), "state diverged");
    }

    /// A corrupted checkpoint must not poison the retry: the typed
    /// decode error routes the attempt to the fresh-rebuild fallback,
    /// which still finishes bit-identically.
    #[test]
    fn corrupt_checkpoint_falls_back_to_fresh_rebuild() {
        let steps = 8u64;
        let spec = JobSpec::new(App::Volna, 12, 10, Backend::Fused, steps)
            .with_seed(5)
            .with_checkpoint_every(3);
        let (golden, _) = clean_run(spec, 2);

        // byte 0 is the snapshot magic: the corruption is guaranteed to
        // be *detected* (decode error), exercising the fallback path
        let plan = FaultPlan::new()
            .with_corrupt_checkpoint(1, 0)
            .with_kill_job(1, 6);
        let service = retrying(plan, Duration::ZERO);
        let out = service.submit(spec).unwrap().wait();
        assert_eq!(out.status, JobStatus::Completed, "{:?}", out.status);
        assert_eq!(out.attempts, 1);
        assert!(out.final_state().bits_eq(&golden), "state diverged");
    }

    /// Without a retry budget an injected kill is a terminal typed
    /// failure — and the service keeps serving other jobs.
    #[test]
    fn exhausted_retry_budget_is_a_typed_failure() {
        let spec = JobSpec::new(App::Airfoil, 16, 8, Backend::Seq, 5).with_seed(2);
        let service = Service::new(ServiceConfig {
            pools: 1,
            team: 1,
            fault: Some(Arc::new(FaultPlan::new().with_kill_job(1, 2).injector())),
            ..ServiceConfig::default()
        });
        let out = service.submit(spec).unwrap().wait();
        match &out.status {
            JobStatus::Failed(why) => {
                assert!(why.contains("injected fault"), "unexpected reason: {why}")
            }
            other => panic!("expected failure, got {other:?}"),
        }
        assert_eq!(out.attempts, 0);
        assert_eq!(service.stats().failed, 1);
        // the pool survived the kill; an untargeted job completes
        let ok = service.submit(spec.with_seed(9)).unwrap().wait();
        assert_eq!(ok.status, JobStatus::Completed);
    }

    /// Backpressure under churn: repeated saturate → drain → resubmit
    /// waves, with cancels mixed in, must reconcile exactly —
    /// queued + running + terminal == submitted, and nothing leaks.
    #[test]
    fn saturation_churn_reconciles_accounting() {
        let service = Service::new(ServiceConfig {
            pools: 2,
            team: 1,
            admission_capacity: 4,
            slice_steps: 2,
            ..ServiceConfig::default()
        });
        let mut outcomes = Vec::new();
        let mut rejected = 0u64;
        let mut cancel_requested = Vec::new();
        for wave in 0..6u64 {
            // burst well past capacity
            let mut wave_handles = Vec::new();
            for j in 0..8u64 {
                let spec =
                    JobSpec::new(App::Volna, 12, 10, Backend::Seq, 4).with_seed(wave * 100 + j);
                match service.submit(spec) {
                    Ok(h) => wave_handles.push(h),
                    Err(Rejection::Saturated {
                        in_flight,
                        capacity,
                    }) => {
                        assert!(in_flight >= capacity, "premature saturation");
                        rejected += 1;
                    }
                    Err(other) => panic!("unexpected rejection: {other:?}"),
                }
            }
            // churn: cancel one admitted job per wave (may race with
            // completion — both outcomes are terminal, both reconcile)
            if let Some(h) = wave_handles.first() {
                service.cancel(h.id);
                cancel_requested.push(h.id);
            }
            // drain the wave so the next burst finds fresh capacity
            // (wait() consumes the one-shot outcome — keep it)
            for h in wave_handles {
                outcomes.push((h.id, h.wait()));
            }
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, outcomes.len() as u64);
        assert_eq!(stats.rejected, rejected);
        assert!(rejected > 0, "the bursts never saturated the queue");
        assert_eq!((stats.queued, stats.running), (0, 0), "work leaked");
        assert_eq!(
            stats.completed + stats.cancelled + stats.failed,
            stats.submitted,
            "terminal states do not reconcile: {stats:?}"
        );
        assert_eq!(stats.failed, 0);
        // every admitted job observed a terminal status
        for (id, out) in &outcomes {
            assert!(
                matches!(out.status, JobStatus::Completed | JobStatus::Cancelled),
                "job {id}: {:?}",
                out.status
            );
        }
    }
}
