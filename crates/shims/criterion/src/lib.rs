//! Offline shim for the subset of Criterion this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`
//! and `black_box`.
//!
//! Measurement model: each benchmark is warmed up once, the per-call cost
//! is probed, and then `sample_size` samples are taken, each batching
//! enough iterations to dominate timer overhead. The *median* sample is
//! reported (robust to scheduler noise). Results are printed one line per
//! benchmark in a stable, machine-parseable form:
//!
//! ```text
//! bench: <group>/<name> median_ns_per_iter=<f64> min=<f64> max=<f64> samples=<n> iters=<m>
//! ```
//!
//! A benchmark filter may be passed as the first non-flag CLI argument
//! (substring match on `group/name`), mirroring `cargo bench -- <filter>`.

use std::time::Instant;

pub use std::hint::black_box;

/// Statistics for one completed benchmark.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// `group/name` identifier.
    pub id: String,
    /// Median over samples of mean ns per iteration.
    pub median_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
}

/// The benchmark driver; collects every run's stats.
pub struct Criterion {
    filter: Option<String>,
    /// Stats of all benchmarks run so far (inspectable by custom mains).
    pub collected: Vec<BenchStats>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes `--bench` (and possibly harness flags);
        // treat the first non-flag argument as a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            collected: Vec::new(),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing a prefix and a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples per benchmark (min 3).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Run one benchmark under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filt) = &self.criterion.filter {
            if !full.contains(filt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            sample_size: self.sample_size,
            stats: None,
        };
        f(&mut b);
        if let Some(mut stats) = b.stats.take() {
            stats.id = full;
            println!(
                "bench: {} median_ns_per_iter={:.1} min={:.1} max={:.1} samples={} iters={}",
                stats.id, stats.median_ns, stats.min_ns, stats.max_ns, stats.samples, stats.iters
            );
            self.criterion.collected.push(stats);
        }
        self
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Handed to the benchmark closure; call [`Bencher::iter`] with the body.
pub struct Bencher {
    sample_size: usize,
    stats: Option<BenchStats>,
}

impl Bencher {
    /// Measure `body`, batching iterations per sample so each sample runs
    /// at least ~2 ms (or one call for slow bodies).
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        // warmup + per-call probe
        let t0 = Instant::now();
        black_box(body());
        let probe = t0.elapsed().as_nanos().max(1);
        const TARGET_SAMPLE_NS: u128 = 2_000_000;
        let iters = ((TARGET_SAMPLE_NS / probe).clamp(1, 1_000_000)) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(body());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        self.stats = Some(BenchStats {
            id: String::new(),
            median_ns: median,
            min_ns: per_iter[0],
            max_ns: *per_iter.last().unwrap(),
            samples: per_iter.len(),
            iters,
        });
    }
}

/// Define a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` from one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_stats() {
        let mut c = Criterion {
            filter: None,
            collected: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.collected.len(), 1);
        assert!(c.collected[0].median_ns > 0.0);
        assert_eq!(c.collected[0].id, "g/noop");
    }

    #[test]
    fn filter_skips_unmatched() {
        let mut c = Criterion {
            filter: Some("wanted".into()),
            collected: Vec::new(),
        };
        let mut g = c.benchmark_group("g");
        g.bench_function("other", |b| b.iter(|| ()));
        g.bench_function("wanted", |b| b.iter(|| ()));
        g.finish();
        assert_eq!(c.collected.len(), 1);
    }
}
