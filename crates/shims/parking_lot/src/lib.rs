//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The container building this repository has no crates.io access, so the
//! real `parking_lot` cannot be fetched. This shim wraps `std::sync`
//! primitives behind `parking_lot`'s (non-poisoning, guard-by-`&mut`)
//! API: [`Mutex::lock`] returns the guard directly, [`Condvar::wait`]
//! takes `&mut MutexGuard`, and a poisoned lock is transparently
//! recovered instead of propagated as a `Result`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning facade over `std`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. A panicked previous
    /// holder does not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable matching `parking_lot::Condvar`'s `&mut`-guard API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the guard is moved out, consumed by the std wait and the
        // returned (re-locked) guard is written back, so `guard` is never
        // observed in a moved-from state by safe code.
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let new = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.inner, new);
        }
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let (new, res) = match self.inner.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(&mut guard.inner, new);
            WaitTimeoutResult(res.timed_out())
        }
    }

    /// Wake one parked waiter. Returns whether a thread was (possibly)
    /// woken; the std backend cannot observe this, so `true` is reported.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all parked waiters. Waiter count is not observable through
    /// std, so 0 is returned.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Reader-writer lock (non-poisoning facade over `std`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_parked_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            7
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() = 5; // parking_lot semantics: no poison propagation
        assert_eq!(*m.lock(), 5);
    }
}
