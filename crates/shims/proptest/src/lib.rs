//! Offline shim for the subset of `proptest` this workspace's property
//! tests use: the `proptest!` macro, range / array / collection / `any`
//! strategies and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test dependency: no shrinking (a failing case panics with the drawn
//! values left in scope), and generation is driven by a deterministic
//! splitmix64 stream seeded from the test name — every run explores the
//! same cases, which suits a reproduction harness where test stability
//! matters more than novelty.

use std::ops::Range;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator state (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test's name so each test gets a stable, distinct stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The single method draws one value.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over the full value space of `T` (`any::<bool>()` etc.).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Combinator namespaces mirroring `proptest::prop`.
pub mod prop {
    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};

        /// A strategy producing `[S::Value; N]`.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
                std::array::from_fn(|_| self.element.generate(rng))
            }
        }

        /// Four independent draws of `element`.
        pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
            UniformArray { element }
        }

        /// Eight independent draws of `element`.
        pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
            UniformArray { element }
        }

        /// Sixteen independent draws of `element`.
        pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
            UniformArray { element }
        }
    }

    /// Variable-size collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec<S::Value>` with length in a range.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` of `element` draws, length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestRng,
    };
}

/// Assert inside a property test (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard the current case when its inputs don't satisfy a precondition.
/// (Shim behaviour: the case is skipped, not redrawn.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ...)` is
/// expanded to a `#[test]` running `cases` deterministic draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    #[allow(unused_mut)]
                    let mut case = || { $body };
                    case();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn determinism_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_all_args(
            n in 1usize..10,
            xs in prop::collection::vec(0.0f64..1.0, 2..6),
            arr in prop::array::uniform4(0u32..100),
            flag in any::<bool>(),
        ) {
            prop_assume!(n != 9);
            prop_assert!((1..10).contains(&n));
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert!(arr.iter().all(|&v| v < 100));
            let _ = flag;
        }
    }
}
