//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! `channel` module's unbounded MPSC channel, backed by `std::sync::mpsc`.
//! (The real crossbeam channel is MPMC; `ump-minimpi` gives each rank its
//! own receiver, so the std channel's single-consumer restriction is
//! invisible here.)

/// Multi-producer channels (unbounded flavour only).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Block until a value arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded::<i32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = unbounded::<i32>();
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            ));
        }
    }
}
