//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! [`Bytes`]/[`BytesMut`] buffers and the little-endian accessor methods
//! of the [`Buf`]/[`BufMut`] traits, backed by plain `Vec<u8>` (no
//! refcounted slabs — `ump-mesh`'s IO encodes/decodes whole meshes, so
//! zero-copy splitting buys nothing here).

use std::ops::{Deref, DerefMut};

/// An owned, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Create an empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` when no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl DerefMut for Bytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side accessors; all multi-byte reads are little-endian.
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// Copy out the next `dst.len()` bytes, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize) {
        let mut sink = [0u8; 64];
        let mut left = n;
        while left > 0 {
            let take = left.min(64);
            self.copy_to_slice(&mut sink[..take]);
            left -= take;
        }
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "Bytes: read past end");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write-side accessors; all multi-byte writes are little-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_i32_le(-7);
        w.put_f64_le(1.5);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 24);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i32_le(), -7);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_derefs_to_unread_slice() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4]);
        b.get_u8();
        assert_eq!(&b[..], &[2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn overread_panics() {
        Bytes::from(vec![1u8]).get_u32_le();
    }
}
