//! The vector value type and its arithmetic.
//!
//! [`VecR<R, L>`] corresponds to the paper's `F64vec4` / `F64vec8` /
//! `F32vec8` / `F32vec16` wrapper classes (Fig. 4): a register-shaped pack
//! of `L` lanes of element type `R` with overloaded operators, so user
//! kernels keep "the original simple arithmetic expressions … but instead
//! of scalars they will now operate on vectors".
//!
//! Memory operations (aligned/unaligned loads, strided and map-indexed
//! gathers/scatters) live in [`crate::mem`]; comparison and blending
//! support for branch-free kernels is here (`simd_lt`, `select`, …).

use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::{Mask, Real};

/// An `L`-lane SIMD vector of `R` (see module docs).
///
/// `#[repr(C)]` with natural array layout; with `-C target-cpu=native` the
/// lane loops below compile to packed vector instructions.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct VecR<R: Real, const L: usize>(pub(crate) [R; L]);

impl<R: Real, const L: usize> VecR<R, L> {
    /// Number of lanes.
    pub const LANES: usize = L;

    /// All lanes equal to `v` (the broadcast constructor).
    #[inline(always)]
    pub fn splat(v: R) -> Self {
        VecR([v; L])
    }

    /// All lanes zero — the accumulator initializer of indirect-increment
    /// arguments (`doublev arg3_p[4] = {0.0,…}` in paper Fig. 3b).
    #[inline(always)]
    pub fn zero() -> Self {
        Self::splat(R::ZERO)
    }

    /// Construct from an explicit lane array.
    #[inline(always)]
    pub fn from_array(a: [R; L]) -> Self {
        VecR(a)
    }

    /// Construct lane `k` as `f(k)`.
    #[inline(always)]
    pub fn from_fn(f: impl FnMut(usize) -> R) -> Self {
        VecR(std::array::from_fn(f))
    }

    /// The lane array.
    #[inline(always)]
    pub fn to_array(self) -> [R; L] {
        self.0
    }

    /// Value of lane `k`.
    #[inline(always)]
    pub fn lane(self, k: usize) -> R {
        self.0[k]
    }

    /// Overwrite lane `k`.
    #[inline(always)]
    pub fn set_lane(&mut self, k: usize, v: R) {
        self.0[k] = v;
    }

    // ---- elementwise math ------------------------------------------------

    /// Lane-wise square root (`vsqrtpd` / `_mm512_sqrt_pd`).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        if let Some(r) = crate::arch::sqrt(self) {
            return r;
        }
        self.map(R::sqrt)
    }

    /// Lane-wise absolute value.
    #[inline(always)]
    pub fn abs(self) -> Self {
        self.map(R::abs)
    }

    /// Lane-wise minimum.
    #[inline(always)]
    pub fn min(self, rhs: Self) -> Self {
        self.zip(rhs, R::min)
    }

    /// Lane-wise maximum.
    #[inline(always)]
    pub fn max(self, rhs: Self) -> Self {
        self.zip(rhs, R::max)
    }

    /// Lane-wise fused multiply-add `self * b + c`.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        if let Some(r) = crate::arch::mul_add(self, b, c) {
            return r;
        }
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = self.0[k].mul_add(b.0[k], c.0[k]);
        }
        VecR(out)
    }

    /// Lane-wise reciprocal `1/x`.
    #[inline(always)]
    pub fn recip(self) -> Self {
        Self::splat(R::ONE) / self
    }

    /// Apply `f` to every lane.
    #[inline(always)]
    pub fn map(self, mut f: impl FnMut(R) -> R) -> Self {
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = f(self.0[k]);
        }
        VecR(out)
    }

    /// Combine lanes of two vectors with `f`.
    #[inline(always)]
    pub fn zip(self, rhs: Self, mut f: impl FnMut(R, R) -> R) -> Self {
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = f(self.0[k], rhs.0[k]);
        }
        VecR(out)
    }

    // ---- comparisons and blending ---------------------------------------

    /// Lane-wise `self < rhs`.
    #[inline(always)]
    pub fn simd_lt(self, rhs: Self) -> Mask<L> {
        self.cmp(rhs, |a, b| a < b)
    }

    /// Lane-wise `self <= rhs`.
    #[inline(always)]
    pub fn simd_le(self, rhs: Self) -> Mask<L> {
        self.cmp(rhs, |a, b| a <= b)
    }

    /// Lane-wise `self > rhs`.
    #[inline(always)]
    pub fn simd_gt(self, rhs: Self) -> Mask<L> {
        self.cmp(rhs, |a, b| a > b)
    }

    /// Lane-wise `self >= rhs`.
    #[inline(always)]
    pub fn simd_ge(self, rhs: Self) -> Mask<L> {
        self.cmp(rhs, |a, b| a >= b)
    }

    #[inline(always)]
    fn cmp(self, rhs: Self, mut f: impl FnMut(R, R) -> bool) -> Mask<L> {
        let mut out = [false; L];
        for k in 0..L {
            out[k] = f(self.0[k], rhs.0[k]);
        }
        Mask::from_array(out)
    }

    /// Per-lane blend: lane `k` is `if_true[k]` where `mask[k]` is set,
    /// else `if_false[k]`.
    ///
    /// This is the `select()` primitive the paper requires user kernels to
    /// adopt in place of `if`/`else` (paper §4.2).
    #[inline(always)]
    pub fn select(mask: Mask<L>, if_true: Self, if_false: Self) -> Self {
        if let Some(r) = crate::arch::select(mask, if_true, if_false) {
            return r;
        }
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = if mask.lane(k) {
                if_true.0[k]
            } else {
                if_false.0[k]
            };
        }
        VecR(out)
    }

    // ---- horizontal reductions -------------------------------------------

    /// Sum of all lanes — the tail step of vectorized `OP_INC` global
    /// reductions ("first the reduction is carried out on vectors and at
    /// the end values of the accumulator vector are added up", §4.1).
    #[inline(always)]
    #[allow(clippy::assign_op_pattern)] // Real requires Add, not AddAssign
    pub fn reduce_sum(self) -> R {
        // Pairwise tree reduction: deterministic and matches how a
        // hardware horizontal add associates, independent of L.
        let mut buf = self.0;
        let mut n = L;
        while n > 1 {
            let half = n / 2;
            for k in 0..half {
                buf[k] = buf[k] + buf[k + n - half];
            }
            n -= half;
        }
        buf[0]
    }

    /// Minimum over all lanes — vectorized `OP_MIN` reductions (CFL dt).
    #[inline(always)]
    pub fn reduce_min(self) -> R {
        let mut acc = self.0[0];
        for k in 1..L {
            acc = acc.min(self.0[k]);
        }
        acc
    }

    /// Maximum over all lanes.
    #[inline(always)]
    pub fn reduce_max(self) -> R {
        let mut acc = self.0[0];
        for k in 1..L {
            acc = acc.max(self.0[k]);
        }
        acc
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt, $assign_trait:ident, $assign_method:ident, $assign_op:tt) => {
        impl<R: Real, const L: usize> $trait for VecR<R, L> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: Self) -> Self {
                let mut out = [R::ZERO; L];
                for k in 0..L {
                    out[k] = self.0[k] $op rhs.0[k];
                }
                VecR(out)
            }
        }
        impl<R: Real, const L: usize> $trait<R> for VecR<R, L> {
            type Output = Self;
            #[inline(always)]
            fn $method(self, rhs: R) -> Self {
                self $op Self::splat(rhs)
            }
        }
        impl<R: Real, const L: usize> $assign_trait for VecR<R, L> {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: Self) {
                *self = *self $op rhs;
            }
        }
        impl<R: Real, const L: usize> $assign_trait<R> for VecR<R, L> {
            #[inline(always)]
            fn $assign_method(&mut self, rhs: R) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_binop!(Add, add, +, AddAssign, add_assign, +=);
impl_binop!(Sub, sub, -, SubAssign, sub_assign, -=);
impl_binop!(Mul, mul, *, MulAssign, mul_assign, *=);
impl_binop!(Div, div, /, DivAssign, div_assign, /=);

impl<R: Real, const L: usize> Neg for VecR<R, L> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = -self.0[k];
        }
        VecR(out)
    }
}

impl<R: Real, const L: usize> Index<usize> for VecR<R, L> {
    type Output = R;
    #[inline(always)]
    fn index(&self, k: usize) -> &R {
        &self.0[k]
    }
}

impl<R: Real, const L: usize> Default for VecR<R, L> {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F64x4;

    #[test]
    fn arithmetic_is_lanewise() {
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::from_array([4.0, 3.0, 2.0, 1.0]);
        assert_eq!((a + b).to_array(), [5.0; 4]);
        assert_eq!((a - b).to_array(), [-3.0, -1.0, 1.0, 3.0]);
        assert_eq!((a * b).to_array(), [4.0, 6.0, 6.0, 4.0]);
        assert_eq!((a / b).to_array(), [0.25, 2.0 / 3.0, 1.5, 4.0]);
        assert_eq!((-a).to_array(), [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn scalar_rhs_broadcasts() {
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        assert_eq!((a * 2.0).to_array(), [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a + 1.0).to_array(), [2.0, 3.0, 4.0, 5.0]);
        let mut c = a;
        c += 1.0;
        c *= 2.0;
        assert_eq!(c.to_array(), [4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn math_functions() {
        let a = F64x4::from_array([4.0, 9.0, 16.0, 25.0]);
        assert_eq!(a.sqrt().to_array(), [2.0, 3.0, 4.0, 5.0]);
        let b = F64x4::from_array([-1.0, 1.0, -2.0, 2.0]);
        assert_eq!(b.abs().to_array(), [1.0, 1.0, 2.0, 2.0]);
        assert_eq!(a.min(b).to_array(), [-1.0, 1.0, -2.0, 2.0]);
        assert_eq!(a.max(b).to_array(), [4.0, 9.0, 16.0, 25.0]);
        assert_eq!(
            a.mul_add(F64x4::splat(2.0), F64x4::splat(1.0)).to_array(),
            [9.0, 19.0, 33.0, 51.0]
        );
        assert_eq!(F64x4::splat(4.0).recip().to_array(), [0.25; 4]);
    }

    #[test]
    fn compare_and_select_replaces_branches() {
        let a = F64x4::from_array([1.0, 5.0, 3.0, 7.0]);
        let b = F64x4::splat(4.0);
        let m = a.simd_lt(b);
        assert_eq!(m.to_array(), [true, false, true, false]);
        // branchless `if (a<b) a else b` == lanewise min:
        let sel = F64x4::select(m, a, b);
        assert_eq!(sel.to_array(), a.min(b).to_array());
        assert_eq!(a.simd_ge(b).to_array(), [false, true, false, true]);
        assert_eq!(a.simd_le(a).to_array(), [true; 4]);
        assert_eq!(a.simd_gt(a).to_array(), [false; 4]);
    }

    #[test]
    fn reductions() {
        let a = F64x4::from_array([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.reduce_sum(), 10.0);
        assert_eq!(a.reduce_min(), 1.0);
        assert_eq!(a.reduce_max(), 4.0);
        // single-lane degenerate vector
        let s = VecR::<f32, 1>::splat(3.5);
        assert_eq!(s.reduce_sum(), 3.5);
        assert_eq!(s.reduce_min(), 3.5);
    }

    #[test]
    fn reduce_sum_is_pairwise_deterministic() {
        // Pairwise order: ((a0+a2)+(a1+a3)) for L=4 — check against that
        // exact association rather than a left fold.
        let a = F64x4::from_array([1e16, 1.0, -1e16, 1.0]);
        let pairwise = (1e16 + -1e16) + (1.0 + 1.0);
        assert_eq!(a.reduce_sum(), pairwise);
    }

    #[test]
    fn from_fn_and_lane_access() {
        let v = VecR::<f64, 8>::from_fn(|k| k as f64 * 0.5);
        assert_eq!(v.lane(5), 2.5);
        assert_eq!(v[7], 3.5);
        let mut w = v;
        w.set_lane(0, 9.0);
        assert_eq!(w.lane(0), 9.0);
        assert_eq!(VecR::<f64, 4>::LANES, 4);
    }
}
