//! Storage layouts for set data and the layout-aware accessor view.
//!
//! The paper's CPU backends keep `op_dat`s in AoS (`data[e*dim + c]`),
//! which turns every direct vector load into a strided gather. §4's
//! discussion of gather/scatter cost motivates the two alternatives
//! implemented here:
//!
//! * **SoA** (`data[c*n + e]`) — direct loads/stores of one component
//!   across `L` consecutive elements become single contiguous vector
//!   moves,
//! * **AoSoA** (`data[(e/b)*b*dim + c*rem + e%b]`, block factor `b`) —
//!   contiguous within a block, cache-friendly across components. The
//!   last block is packed at its ragged size `rem = n - (e/b)*b`, so
//!   total storage is exactly `n*dim` for every layout (no padding and
//!   no change to byte accounting or serialization sizes).
//!
//! [`DatView`] carries `(n, dim, layout)` and exposes scalar row and
//! vector lane accessors that the fused drivers use for *every* dat
//! access, so one kernel body serves all layouts. Under `Aos` the view
//! degenerates to the classic strided forms; under `Soa`/`AoSoA` the
//! direct vector paths become contiguous [`VecR::load`]/[`VecR::store`].

use crate::{IdxVec, Real, VecR};

/// Storage layout of a `dim`-component dataset over `n` elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Array-of-structures: `data[e*dim + c]` (the paper's CPU layout).
    Aos,
    /// Structure-of-arrays: `data[c*n + e]`.
    Soa,
    /// Blocked hybrid: AoS of SoA tiles of `block` elements; the ragged
    /// last tile is packed at its actual size.
    AoSoA {
        /// Elements per tile (must be ≥ 1).
        block: usize,
    },
}

impl Layout {
    /// Short name for diagnostics and bench JSON.
    pub fn name(self) -> String {
        match self {
            Layout::Aos => "aos".into(),
            Layout::Soa => "soa".into(),
            Layout::AoSoA { block } => format!("aosoa{block}"),
        }
    }

    /// Parse a [`Layout::name`] string (CLI flags).
    pub fn parse(s: &str) -> Option<Layout> {
        match s {
            "aos" => Some(Layout::Aos),
            "soa" => Some(Layout::Soa),
            _ => s
                .strip_prefix("aosoa")
                .and_then(|b| b.parse().ok())
                .filter(|&b| b >= 1)
                .map(|block| Layout::AoSoA { block }),
        }
    }
}

/// Layout-aware accessor over the raw storage of one dataset: the shape
/// facts (`n`, `dim`, [`Layout`]) without borrowing the data, so it can
/// be captured by recorded loop bodies while `SharedDat` views hand out
/// the slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatView {
    /// Set size.
    pub n: usize,
    /// Components per element.
    pub dim: usize,
    /// Storage layout.
    pub layout: Layout,
}

impl DatView {
    /// View over `n` elements of `dim` components in `layout`.
    pub fn new(n: usize, dim: usize, layout: Layout) -> DatView {
        if let Layout::AoSoA { block } = layout {
            assert!(block >= 1, "AoSoA block factor must be >= 1");
        }
        DatView { n, dim, layout }
    }

    /// Flat storage index of component `c` of element `e`.
    #[inline(always)]
    pub fn idx(&self, e: usize, c: usize) -> usize {
        debug_assert!(e < self.n && c < self.dim);
        match self.layout {
            Layout::Aos => e * self.dim + c,
            Layout::Soa => c * self.n + e,
            Layout::AoSoA { block } => {
                let tile = e / block;
                let rem = block.min(self.n - tile * block);
                tile * block * self.dim + c * rem + (e - tile * block)
            }
        }
    }

    /// Copy element `e`'s components into a local row array.
    #[inline(always)]
    pub fn load_row<R: Real, const D: usize>(&self, data: &[R], e: usize) -> [R; D] {
        debug_assert_eq!(D, self.dim);
        std::array::from_fn(|c| data[self.idx(e, c)])
    }

    /// Store a local row array as element `e`'s components.
    #[inline(always)]
    pub fn store_row<R: Real, const D: usize>(&self, data: &mut [R], e: usize, row: &[R; D]) {
        debug_assert_eq!(D, self.dim);
        for (c, &v) in row.iter().enumerate() {
            data[self.idx(e, c)] = v;
        }
    }

    /// Accumulate a local row array into element `e`'s components (the
    /// colored-increment application).
    #[inline(always)]
    pub fn add_row<R: Real, const D: usize>(&self, data: &mut [R], e: usize, row: &[R; D]) {
        debug_assert_eq!(D, self.dim);
        for (c, &v) in row.iter().enumerate() {
            let i = self.idx(e, c);
            // `Real` has no `AddAssign` bound, so no `+=` here.
            #[allow(clippy::assign_op_pattern)]
            {
                data[i] = data[i] + v;
            }
        }
    }

    /// `true` when lanes `e0..e0+L` of one component occupy consecutive
    /// storage — the case where the direct vector paths are single
    /// contiguous moves.
    #[inline(always)]
    pub fn contiguous(&self, e0: usize, lanes: usize) -> bool {
        match self.layout {
            Layout::Aos => self.dim == 1,
            Layout::Soa => true,
            Layout::AoSoA { block } => {
                let tile = e0 / block;
                let rem = block.min(self.n - tile * block);
                e0 - tile * block + lanes <= rem
            }
        }
    }

    /// Vector load of component `c` for elements `e0..e0+L`.
    #[inline(always)]
    pub fn loadv<R: Real, const L: usize>(&self, data: &[R], e0: usize, c: usize) -> VecR<R, L> {
        match self.layout {
            Layout::Aos => VecR::load_strided(data, e0 * self.dim + c, self.dim),
            Layout::Soa => VecR::load(data, c * self.n + e0),
            Layout::AoSoA { .. } => {
                if self.contiguous(e0, L) {
                    VecR::load(data, self.idx(e0, c))
                } else {
                    VecR::from_fn(|k| data[self.idx(e0 + k, c)])
                }
            }
        }
    }

    /// Vector store of component `c` for elements `e0..e0+L`.
    #[inline(always)]
    pub fn storev<R: Real, const L: usize>(
        &self,
        v: VecR<R, L>,
        data: &mut [R],
        e0: usize,
        c: usize,
    ) {
        match self.layout {
            Layout::Aos => v.store_strided(data, e0 * self.dim + c, self.dim),
            Layout::Soa => v.store(data, c * self.n + e0),
            Layout::AoSoA { .. } => {
                if self.contiguous(e0, L) {
                    v.store(data, self.idx(e0, c));
                } else {
                    for k in 0..L {
                        data[self.idx(e0 + k, c)] = v.lane(k);
                    }
                }
            }
        }
    }

    /// Map-driven vector gather of component `c`: lane `k` reads element
    /// `idx[k]`.
    #[inline(always)]
    pub fn gatherv<R: Real, const L: usize>(
        &self,
        data: &[R],
        idx: IdxVec<L>,
        c: usize,
    ) -> VecR<R, L> {
        match self.layout {
            Layout::Aos => VecR::gather(data, idx, self.dim, c),
            Layout::Soa => {
                let col = &data[c * self.n..(c + 1) * self.n];
                // lane-local renumbering makes consecutive runs the hot
                // case; a contiguous load moves the same bits as the
                // hardware gather at a fraction of the latency
                match idx.consecutive_base() {
                    Some(b) if b >= 0 && b as usize + L <= col.len() => VecR::load(col, b as usize),
                    _ => VecR::gather(col, idx, 1, 0),
                }
            }
            Layout::AoSoA { .. } => match idx.consecutive_base() {
                Some(b) if b >= 0 && self.contiguous(b as usize, L) => {
                    VecR::load(data, self.idx(b as usize, c))
                }
                _ => VecR::from_fn(|k| data[self.idx(idx.lane(k) as usize, c)]),
            },
        }
    }

    /// Serialized accumulating vector scatter of component `c`: lanes
    /// applied in ascending lane order (the colored-increment order), so
    /// colliding targets accumulate exactly like the scalar path.
    #[inline(always)]
    pub fn scatter_add_serialv<R: Real, const L: usize>(
        &self,
        v: VecR<R, L>,
        data: &mut [R],
        idx: IdxVec<L>,
        c: usize,
    ) {
        match self.layout {
            Layout::Aos => v.scatter_add_serial(data, idx, self.dim, c),
            Layout::Soa => {
                let col = &mut data[c * self.n..(c + 1) * self.n];
                // consecutive lanes never collide, so a packed
                // load-add-store accumulates bit-identically to the
                // ascending-lane serial order
                match idx.consecutive_base() {
                    Some(b) if b >= 0 && b as usize + L <= col.len() => {
                        let cur = VecR::<R, L>::load(col, b as usize);
                        (cur + v).store(col, b as usize);
                    }
                    _ => v.scatter_add_serial(col, idx, 1, 0),
                }
            }
            Layout::AoSoA { .. } => {
                #[allow(clippy::assign_op_pattern)]
                for k in 0..L {
                    let i = self.idx(idx.lane(k) as usize, c);
                    data[i] = data[i] + v.lane(k);
                }
            }
        }
    }

    /// Permute `data` from this view's layout into `to`, returning the
    /// re-laid-out storage. A pure index permutation — bit-exact at any
    /// precision.
    pub fn convert<R: Real>(&self, data: &[R], to: Layout) -> Vec<R> {
        assert_eq!(data.len(), self.n * self.dim, "dat storage size mismatch");
        let dst = DatView::new(self.n, self.dim, to);
        let mut out = vec![R::ZERO; data.len()];
        for e in 0..self.n {
            for c in 0..self.dim {
                out[dst.idx(e, c)] = data[self.idx(e, c)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, dim: usize) -> Vec<f64> {
        // value encodes (e, c) so permutation mistakes are visible
        (0..n * dim).map(|_| 0.0).collect::<Vec<_>>()
    }

    fn aos_data(n: usize, dim: usize) -> Vec<f64> {
        let mut d = fill(n, dim);
        let v = DatView::new(n, dim, Layout::Aos);
        for e in 0..n {
            for c in 0..dim {
                d[v.idx(e, c)] = (e * 10 + c) as f64;
            }
        }
        d
    }

    #[test]
    fn idx_is_a_bijection_for_every_layout() {
        for layout in [
            Layout::Aos,
            Layout::Soa,
            Layout::AoSoA { block: 4 },
            Layout::AoSoA { block: 6 },
            Layout::AoSoA { block: 64 },
        ] {
            let (n, dim) = (13, 4);
            let v = DatView::new(n, dim, layout);
            let mut seen = vec![false; n * dim];
            for e in 0..n {
                for c in 0..dim {
                    let i = v.idx(e, c);
                    assert!(i < n * dim, "{layout:?} idx({e},{c}) = {i} out of range");
                    assert!(!seen[i], "{layout:?} idx({e},{c}) = {i} collides");
                    seen[i] = true;
                }
            }
        }
    }

    #[test]
    fn convert_round_trips_bit_exactly() {
        let (n, dim) = (11, 4);
        let aos = aos_data(n, dim);
        let av = DatView::new(n, dim, Layout::Aos);
        for layout in [
            Layout::Soa,
            Layout::AoSoA { block: 4 },
            Layout::AoSoA { block: 3 },
        ] {
            let there = av.convert(&aos, layout);
            let back = DatView::new(n, dim, layout).convert(&there, Layout::Aos);
            assert_eq!(aos, back, "{layout:?}");
        }
    }

    #[test]
    fn soa_direct_loads_are_contiguous() {
        let (n, dim) = (12, 4);
        let aos = aos_data(n, dim);
        let soa = DatView::new(n, dim, Layout::Aos).convert(&aos, Layout::Soa);
        let v = DatView::new(n, dim, Layout::Soa);
        assert!(v.contiguous(5, 4));
        let lanes: VecR<f64, 4> = v.loadv(&soa, 4, 2);
        assert_eq!(lanes.to_array(), [42.0, 52.0, 62.0, 72.0]);
        // and the storage really is contiguous: component 2 block
        assert_eq!(&soa[2 * n + 4..2 * n + 8], &[42.0, 52.0, 62.0, 72.0]);
    }

    #[test]
    fn aosoa_ragged_tail_falls_back_per_lane() {
        // n=10, block=6: tiles [0..6) and ragged [6..10) (rem=4)
        let (n, dim) = (10, 2);
        let aos = aos_data(n, dim);
        let view = DatView::new(n, dim, Layout::AoSoA { block: 6 });
        let data = DatView::new(n, dim, Layout::Aos).convert(&aos, Layout::AoSoA { block: 6 });
        assert!(view.contiguous(0, 4));
        assert!(!view.contiguous(4, 4), "lanes 4..8 straddle the tile seam");
        assert!(view.contiguous(6, 4), "ragged tile holds exactly 4");
        for e0 in [0usize, 2, 4, 6] {
            let got: VecR<f64, 4> = view.loadv(&data, e0, 1);
            let want: [f64; 4] = std::array::from_fn(|k| ((e0 + k) * 10 + 1) as f64);
            assert_eq!(got.to_array(), want, "e0={e0}");
        }
        // storev through the seam then read back
        let mut d2 = data.clone();
        let v = VecR::<f64, 4>::from_array([-1.0, -2.0, -3.0, -4.0]);
        view.storev(v, &mut d2, 4, 0);
        let back: VecR<f64, 4> = view.loadv(&d2, 4, 0);
        assert_eq!(back.to_array(), [-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn gather_and_serial_scatter_match_scalar_for_every_layout() {
        let (n, dim) = (9, 3);
        let aos = aos_data(n, dim);
        let av = DatView::new(n, dim, Layout::Aos);
        let idx = IdxVec::<4>::from_array([7, 2, 2, 5]);
        for layout in [Layout::Aos, Layout::Soa, Layout::AoSoA { block: 4 }] {
            let view = DatView::new(n, dim, layout);
            let data = av.convert(&aos, layout);
            let g: VecR<f64, 4> = view.gatherv(&data, idx, 1);
            assert_eq!(g.to_array(), [71.0, 21.0, 21.0, 51.0], "{layout:?}");

            // serialized scatter-add with a lane collision on element 2
            let mut d2 = data.clone();
            view.scatter_add_serialv(VecR::<f64, 4>::splat(1.0), &mut d2, idx, 1);
            assert_eq!(d2[view.idx(7, 1)], 72.0, "{layout:?}");
            assert_eq!(
                d2[view.idx(2, 1)],
                23.0,
                "{layout:?} collision must accumulate"
            );
            assert_eq!(d2[view.idx(5, 1)], 52.0, "{layout:?}");
        }
    }

    #[test]
    fn consecutive_gather_fast_path_matches_the_general_path() {
        // consecutive index lanes take the contiguous-load fast path in
        // gatherv / the packed load-add-store in scatter_add_serialv;
        // both must move exactly the bits the general path moves
        let (n, dim) = (16, 3);
        let aos = aos_data(n, dim);
        let av = DatView::new(n, dim, Layout::Aos);
        for layout in [
            Layout::Soa,
            Layout::AoSoA { block: 8 },
            Layout::AoSoA { block: 6 },
        ] {
            let view = DatView::new(n, dim, layout);
            let data = av.convert(&aos, layout);
            for base in [0, 4, 5, 12] {
                let run = IdxVec::<4>::iota(base);
                let got: VecR<f64, 4> = view.gatherv(&data, run, 2);
                let want: [f64; 4] = std::array::from_fn(|k| ((base as usize + k) * 10 + 2) as f64);
                assert_eq!(got.to_array(), want, "{layout:?} base={base}");

                let mut d2 = data.clone();
                view.scatter_add_serialv(VecR::<f64, 4>::splat(0.25), &mut d2, run, 2);
                for k in 0..4 {
                    let e = base as usize + k;
                    assert_eq!(d2[view.idx(e, 2)], (e * 10 + 2) as f64 + 0.25, "{layout:?}");
                }
            }
        }
    }

    #[test]
    fn rows_round_trip_for_every_layout() {
        let (n, dim) = (7, 4);
        for layout in [Layout::Aos, Layout::Soa, Layout::AoSoA { block: 3 }] {
            let view = DatView::new(n, dim, layout);
            let mut data = vec![0.0f64; n * dim];
            for e in 0..n {
                let row: [f64; 4] = std::array::from_fn(|c| (e * 10 + c) as f64);
                view.store_row(&mut data, e, &row);
            }
            for e in 0..n {
                let row: [f64; 4] = view.load_row(&data, e);
                assert_eq!(
                    row,
                    std::array::from_fn(|c| (e * 10 + c) as f64),
                    "{layout:?}"
                );
            }
            view.add_row(&mut data, 3, &[0.5f64; 4]);
            let row: [f64; 4] = view.load_row(&data, 3);
            assert_eq!(row[2], 32.5, "{layout:?}");
        }
    }

    #[test]
    fn layout_names_parse_back() {
        for layout in [Layout::Aos, Layout::Soa, Layout::AoSoA { block: 6 }] {
            assert_eq!(Layout::parse(&layout.name()), Some(layout));
        }
        assert_eq!(Layout::parse("aosoa0"), None);
        assert_eq!(Layout::parse("banana"), None);
    }
}
