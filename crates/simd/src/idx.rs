//! Vectors of mapping indices.
//!
//! Unstructured-mesh indirection is driven by `op_map` tables of `i32`
//! element indices (paper Fig. 2/3: `map0idx = arg0.map_data[...]`). The
//! vectorized loop loads `L` consecutive map entries into an [`IdxVec`]
//! (the paper's `I32vec4`/`I32vec8`) and uses it to gather and scatter
//! lane data.

use crate::Mask;

/// An `L`-lane vector of `i32` mapping indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdxVec<const L: usize>(pub(crate) [i32; L]);

impl<const L: usize> IdxVec<L> {
    /// All lanes equal to `v`.
    #[inline(always)]
    pub fn splat(v: i32) -> Self {
        IdxVec([v; L])
    }

    /// Load `L` consecutive indices from `table[start..start+L]`.
    ///
    /// This is the vector load of the map column in the paper's generated
    /// code: `intv map0idx = intv(&arg0.map[n + set_size*0])`.
    #[inline(always)]
    pub fn load(table: &[i32], start: usize) -> Self {
        let mut out = [0i32; L];
        out.copy_from_slice(&table[start..start + L]);
        IdxVec(out)
    }

    /// Load `L` indices with a stride: `table[start + k*stride]`.
    ///
    /// Used when map tables are stored row-major (`map[n*dim + j]`, AoS)
    /// rather than column-major (`map[n + set_size*j]`, SoA).
    #[inline(always)]
    pub fn load_strided(table: &[i32], start: usize, stride: usize) -> Self {
        let mut out = [0i32; L];
        for k in 0..L {
            out[k] = table[start + k * stride];
        }
        IdxVec(out)
    }

    /// Sequential indices `base, base+1, …, base+L-1` — the implicit
    /// identity map of a *direct* argument.
    #[inline(always)]
    pub fn iota(base: i32) -> Self {
        let mut out = [0i32; L];
        for (k, o) in out.iter_mut().enumerate() {
            *o = base + k as i32;
        }
        IdxVec(out)
    }

    /// Construct from an explicit lane array.
    #[inline(always)]
    pub fn from_array(a: [i32; L]) -> Self {
        IdxVec(a)
    }

    /// The lane array.
    #[inline(always)]
    pub fn to_array(self) -> [i32; L] {
        self.0
    }

    /// Value of lane `k`.
    #[inline(always)]
    pub fn lane(self, k: usize) -> i32 {
        self.0[k]
    }

    /// Lane-wise `self * s + o` — index arithmetic for `idx*dim + comp`
    /// addressing without leaving the vector domain.
    #[inline(always)]
    pub fn scale_offset(self, s: i32, o: i32) -> Self {
        let mut out = [0i32; L];
        for k in 0..L {
            out[k] = self.0[k] * s + o;
        }
        IdxVec(out)
    }

    /// Lane-wise equality mask against another index vector.
    #[inline(always)]
    pub fn eq_mask(self, other: Self) -> Mask<L> {
        let mut out = [false; L];
        for k in 0..L {
            out[k] = self.0[k] == other.0[k];
        }
        Mask::from_array(out)
    }

    /// `Some(base)` when the lanes are the consecutive run
    /// `base..base+L`. Lane-local renumbering maximizes exactly this
    /// pattern, where a map-driven gather degenerates to a contiguous
    /// vector load (and an accumulating scatter to a load-add-store:
    /// consecutive lanes are necessarily distinct, so no collisions).
    #[inline(always)]
    pub fn consecutive_base(self) -> Option<i32> {
        let b = self.0[0];
        for k in 1..L {
            if self.0[k] != b + k as i32 {
                return None;
            }
        }
        Some(b)
    }

    /// `true` when every lane is distinct — the precondition under which a
    /// vector scatter is race-free. The full/block-permute coloring schemes
    /// (paper §4) exist precisely to establish this property; plan
    /// validators call this in debug builds.
    pub fn all_distinct(self) -> bool {
        for i in 0..L {
            for j in (i + 1)..L {
                if self.0[i] == self.0[j] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_and_lanes() {
        let table: Vec<i32> = (0..32).map(|i| i * 3).collect();
        let v = IdxVec::<4>::load(&table, 5);
        assert_eq!(v.to_array(), [15, 18, 21, 24]);
        assert_eq!(v.lane(2), 21);
    }

    #[test]
    fn strided_load_matches_aos_map_layout() {
        // map stored as [e0n0, e0n1, e1n0, e1n1, ...] (dim=2, AoS):
        let table = [10, 11, 20, 21, 30, 31, 40, 41];
        // lane-load of "node 1 of edges 0..4":
        let v = IdxVec::<4>::load_strided(&table, 1, 2);
        assert_eq!(v.to_array(), [11, 21, 31, 41]);
    }

    #[test]
    fn iota_and_scale_offset() {
        let v = IdxVec::<4>::iota(7);
        assert_eq!(v.to_array(), [7, 8, 9, 10]);
        assert_eq!(v.scale_offset(4, 2).to_array(), [30, 34, 38, 42]);
    }

    #[test]
    fn distinctness_detection() {
        assert!(IdxVec::<4>::from_array([0, 5, 2, 9]).all_distinct());
        assert!(!IdxVec::<4>::from_array([0, 5, 2, 5]).all_distinct());
        assert!(IdxVec::<1>::splat(3).all_distinct());
    }

    #[test]
    fn eq_mask_lanes() {
        let a = IdxVec::<4>::from_array([1, 2, 3, 4]);
        let b = IdxVec::<4>::from_array([1, 0, 3, 0]);
        assert_eq!(a.eq_mask(b).to_array(), [true, false, true, false]);
    }
}
