//! Scalar floating-point abstraction.
//!
//! The paper runs Airfoil in both single and double precision from one
//! source; OP2 threads the element type through its code generator as the
//! `"typ"` string of each `op_arg_dat`. The [`Real`] trait plays that role
//! here: kernels and loop drivers are generic over `R: Real`, and the SIMD
//! lane count adapts to `R::BYTES` (4 doubles vs 8 floats per AVX register).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A scalar floating-point element type (`f32` or `f64`).
///
/// Everything an unstructured-mesh kernel needs from its element type:
/// arithmetic, a square root (the paper's `adt_calc`/`compute_flux`
/// transcendental), min/max (CFL time-step reductions), fused
/// multiply-add, and conversions for setting constants from `f64` literals.
pub trait Real:
    Copy
    + PartialOrd
    + Default
    + Debug
    + Display
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// One half.
    const HALF: Self;
    /// Positive infinity (identity of the `min` reduction).
    const INFINITY: Self;
    /// Size of the element in bytes (4 or 8); drives SIMD lane counts and
    /// the per-kernel byte accounting of paper Tables II/III.
    const BYTES: usize;
    /// OP2-style type name (`"float"` / `"double"`), used in diagnostics.
    const NAME: &'static str;

    /// Lossy conversion from an `f64` literal (used for physics constants).
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (used for diagnostics and residuals).
    fn to_f64(self) -> f64;
    /// Conversion from a usize (e.g. for averaging by element count).
    fn from_usize(n: usize) -> Self {
        Self::from_f64(n as f64)
    }
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Lane-wise minimum (IEEE `min`).
    fn min(self, other: Self) -> Self;
    /// Lane-wise maximum (IEEE `max`).
    fn max(self, other: Self) -> Self;
    /// Fused multiply-add `self * b + c`.
    fn mul_add(self, b: Self, c: Self) -> Self;
    /// `true` when the value is finite (not NaN/∞) — used by validators.
    fn is_finite(self) -> bool;
}

macro_rules! impl_real {
    ($t:ty, $bytes:expr, $name:expr) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const HALF: Self = 0.5;
            const INFINITY: Self = <$t>::INFINITY;
            const BYTES: usize = $bytes;
            const NAME: &'static str = $name;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline(always)]
            fn mul_add(self, b: Self, c: Self) -> Self {
                <$t>::mul_add(self, b, c)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32, 4, "float");
impl_real!(f64, 8, "double");

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_roundtrip<R: Real>() {
        let x = R::from_f64(2.25);
        assert_eq!(x.to_f64(), 2.25);
        assert_eq!((x * x).sqrt().to_f64(), 2.25);
        assert_eq!(R::ZERO + R::ONE, R::ONE);
        assert!(R::INFINITY.min(x) == x);
        assert!((-x).abs() == x);
        assert!(x.is_finite());
        assert!(!R::INFINITY.is_finite());
    }

    #[test]
    fn f32_ops() {
        generic_roundtrip::<f32>();
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f32::NAME, "float");
    }

    #[test]
    fn f64_ops() {
        generic_roundtrip::<f64>();
        assert_eq!(f64::BYTES, 8);
        assert_eq!(f64::NAME, "double");
    }

    #[test]
    fn fma_matches_expanded_form_exactly_on_powers_of_two() {
        // With power-of-two operands FMA and mul+add round identically.
        assert_eq!(2.0f64.mul_add(4.0, 1.0), 9.0);
        assert_eq!(2.0f32.mul_add(4.0, 1.0), 9.0);
    }

    #[test]
    fn from_usize_is_exact_for_small_counts() {
        assert_eq!(f64::from_usize(1_000_000), 1.0e6);
        assert_eq!(f32::from_usize(4096), 4096.0);
    }
}
