//! Sweep decomposition for vectorized loop generation.
//!
//! Paper §4.2: "the iteration range for any given thread where
//! vectorization can take place must be divisible by the vector length …
//! therefore there are actually three loops generated; a scalar pre-sweep
//! to get directly accessed data aligned to the vector length, the main
//! vectorized loop, and a scalar post-sweep to compute set elements left
//! over."
//!
//! [`split_sweep`] performs exactly that decomposition for an arbitrary
//! `[start, end)` range (which, in the MPI+threads hybrid, is rarely
//! aligned), and [`Sweep::vector_chunks`] iterates the aligned body.

use std::ops::Range;

/// The three-loop decomposition of an iteration range (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sweep {
    /// Scalar pre-sweep: `[start, body.start)`, fewer than `lanes` items,
    /// brings the body to lane alignment relative to `align_base`.
    pub pre: Range<usize>,
    /// Vectorized body: length is a multiple of `lanes`, and
    /// `(body.start - align_base) % lanes == 0`.
    pub body: Range<usize>,
    /// Scalar post-sweep: the leftover `< lanes` items.
    pub post: Range<usize>,
    /// Vector length used for the split.
    pub lanes: usize,
}

impl Sweep {
    /// Iterator over the starting indices of each `lanes`-wide chunk of the
    /// vector body.
    pub fn vector_chunks(&self) -> impl Iterator<Item = usize> + '_ {
        self.body.clone().step_by(self.lanes.max(1))
    }

    /// Iterator over all scalar leftover indices (pre- then post-sweep).
    pub fn scalar_items(&self) -> impl Iterator<Item = usize> + '_ {
        self.pre.clone().chain(self.post.clone())
    }

    /// Total number of elements covered (must equal the input range length).
    pub fn len(&self) -> usize {
        self.pre.len() + self.body.len() + self.post.len()
    }

    /// `true` when the covered range is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fraction of elements executed in vector mode — a utilization metric
    /// reported by the plan statistics (small blocks in the block-permute
    /// scheme "may suffer from the underutilization of vector lanes").
    pub fn vector_fraction(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.body.len() as f64 / self.len() as f64
    }
}

/// Split `range` into pre/body/post sweeps for `lanes`-wide vectors, with
/// the body aligned so `(body.start - align_base) % lanes == 0`.
///
/// `align_base` is the index at which the underlying direct data is known
/// to be vector-aligned — 0 for whole-set loops, the block start for
/// block-permuted execution.
///
/// Invariants (property-tested): the three parts tile `range` exactly, the
/// body length is a multiple of `lanes`, the pre-sweep is shorter than
/// `lanes`, and the post-sweep is shorter than `lanes`.
pub fn split_sweep(range: Range<usize>, lanes: usize, align_base: usize) -> Sweep {
    assert!(lanes >= 1, "lanes must be >= 1");
    let (start, end) = (range.start, range.end);
    assert!(start <= end, "inverted range");
    assert!(
        align_base <= start,
        "align_base ({align_base}) must not exceed range start ({start})"
    );

    let misalign = (start - align_base) % lanes;
    let pre_len = if misalign == 0 { 0 } else { lanes - misalign };
    let body_start = (start + pre_len).min(end);
    let body_len = ((end - body_start) / lanes) * lanes;
    let body_end = body_start + body_len;

    Sweep {
        pre: start..body_start,
        body: body_start..body_end,
        post: body_end..end,
        lanes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(sweep: &Sweep, range: Range<usize>, lanes: usize, align_base: usize) {
        // exact tiling
        assert_eq!(sweep.pre.start, range.start);
        assert_eq!(sweep.pre.end, sweep.body.start);
        assert_eq!(sweep.body.end, sweep.post.start);
        assert_eq!(sweep.post.end, range.end);
        assert_eq!(sweep.len(), range.len());
        // alignment and divisibility
        assert_eq!(sweep.body.len() % lanes, 0);
        if !sweep.body.is_empty() {
            assert_eq!((sweep.body.start - align_base) % lanes, 0);
        }
        assert!(sweep.pre.len() < lanes);
        assert!(sweep.post.len() < lanes);
        // every element visited exactly once
        let mut seen: Vec<usize> = sweep.scalar_items().collect();
        for c in sweep.vector_chunks() {
            seen.extend(c..c + lanes);
        }
        seen.sort_unstable();
        let expect: Vec<usize> = range.collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn aligned_range_has_no_presweep() {
        let s = split_sweep(0..16, 4, 0);
        assert!(s.pre.is_empty());
        assert_eq!(s.body, 0..16);
        assert!(s.post.is_empty());
        check_invariants(&s, 0..16, 4, 0);
        assert_eq!(s.vector_fraction(), 1.0);
    }

    #[test]
    fn misaligned_start_generates_presweep() {
        let s = split_sweep(3..21, 4, 0);
        assert_eq!(s.pre, 3..4);
        assert_eq!(s.body, 4..20);
        assert_eq!(s.post, 20..21);
        check_invariants(&s, 3..21, 4, 0);
    }

    #[test]
    fn tiny_range_is_all_scalar() {
        let s = split_sweep(5..7, 8, 0);
        assert!(s.body.is_empty());
        assert_eq!(s.len(), 2);
        check_invariants(&s, 5..7, 8, 0);
        assert_eq!(s.vector_fraction(), 0.0);
    }

    #[test]
    fn empty_range() {
        let s = split_sweep(4..4, 4, 0);
        assert!(s.is_empty());
        check_invariants(&s, 4..4, 4, 0);
    }

    #[test]
    fn align_base_shifts_alignment() {
        // Block starting at 10, range 13..29, lanes 4 — alignment is
        // relative to 10, so body starts at 14 (10 + 4).
        let s = split_sweep(13..29, 4, 10);
        assert_eq!(s.pre, 13..14);
        assert_eq!(s.body, 14..26);
        assert_eq!(s.post, 26..29);
        check_invariants(&s, 13..29, 4, 10);
    }

    #[test]
    fn lanes_one_degenerates_to_all_vector() {
        let s = split_sweep(3..10, 1, 0);
        assert!(s.pre.is_empty() && s.post.is_empty());
        assert_eq!(s.body, 3..10);
        check_invariants(&s, 3..10, 1, 0);
    }

    #[test]
    fn exhaustive_small_cases() {
        for lanes in [1usize, 2, 4, 8, 16] {
            for start in 0..12 {
                for len in 0..40 {
                    let r = start..start + len;
                    let s = split_sweep(r.clone(), lanes, 0);
                    check_invariants(&s, r, lanes, 0);
                }
            }
        }
    }
}
