//! `std::arch` specializations behind the portable [`VecR`] operations.
//!
//! The paper's wrapper classes compile straight to AVX/IMCI intrinsics;
//! the portable lane loops in this crate rely on LLVM doing the same.
//! For the hot operations where autovectorization is not guaranteed —
//! unaligned packed moves, map-driven gathers, FMA, blends, square
//! roots — this module provides explicit AVX2(+FMA) kernels for the two
//! register shapes the benches exercise, `f64×4` (256-bit AVX double)
//! and `f32×8` (256-bit AVX single), selected at compile time by
//! `target_feature` (the workspace builds with `-C target-cpu=native`,
//! see `.cargo/config.toml`).
//!
//! Every function returns `Option`: `Some(result)` when a specialization
//! exists for `(R, L)` on this target, `None` otherwise — the caller
//! (in [`crate::vecr`] / [`crate::mem`]) falls back to the portable lane
//! loop. All kernels are bit-identical to the scalar paths: loads,
//! stores and gathers move bits; `vfmadd` fuses exactly like
//! [`f64::mul_add`]; `vsqrtpd` is correctly rounded like [`f64::sqrt`].

#![allow(clippy::missing_safety_doc)]

use crate::{IdxVec, Mask, Real, VecR};

/// Name of the instruction set the vector kernels compile to — recorded
/// in bench JSON so measurements name the ISA they ran on.
pub fn isa_name() -> &'static str {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx512f",
        target_feature = "fma"
    ))]
    {
        "avx512f+avx2+fma"
    }
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(target_feature = "avx512f")
    ))]
    {
        "avx2+fma"
    }
    #[cfg(all(
        target_arch = "x86_64",
        not(all(target_feature = "avx2", target_feature = "fma"))
    ))]
    {
        "sse2"
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "portable"
    }
}

/// `true` when the explicit AVX2 kernels below are compiled in (vs the
/// portable lane-loop fallback).
pub const fn have_avx2() -> bool {
    cfg!(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))
}

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
mod avx2 {
    use super::*;
    use core::arch::x86_64::*;
    use std::any::TypeId;

    #[inline(always)]
    pub fn is_f64x4<R: Real, const L: usize>() -> bool {
        L == 4 && TypeId::of::<R>() == TypeId::of::<f64>()
    }

    #[inline(always)]
    pub fn is_f32x8<R: Real, const L: usize>() -> bool {
        L == 8 && TypeId::of::<R>() == TypeId::of::<f32>()
    }

    // `VecR` is `#[repr(C)]` over `[R; L]`, so a `VecR<f64, 4>` is four
    // consecutive f64 — loadu/storeu through raw pointers is exact.
    #[inline(always)]
    pub unsafe fn ld_pd<R: Real, const L: usize>(v: &VecR<R, L>) -> __m256d {
        _mm256_loadu_pd(v as *const VecR<R, L> as *const f64)
    }

    #[inline(always)]
    pub unsafe fn st_pd<R: Real, const L: usize>(r: __m256d) -> VecR<R, L> {
        let mut out = VecR::<R, L>::zero();
        _mm256_storeu_pd(&mut out as *mut VecR<R, L> as *mut f64, r);
        out
    }

    #[inline(always)]
    pub unsafe fn ld_ps<R: Real, const L: usize>(v: &VecR<R, L>) -> __m256 {
        _mm256_loadu_ps(v as *const VecR<R, L> as *const f32)
    }

    #[inline(always)]
    pub unsafe fn st_ps<R: Real, const L: usize>(r: __m256) -> VecR<R, L> {
        let mut out = VecR::<R, L>::zero();
        _mm256_storeu_ps(&mut out as *mut VecR<R, L> as *mut f32, r);
        out
    }
}

macro_rules! no_avx2_fallback {
    ($($arg:ident),*) => {
        #[cfg(not(all(
            target_arch = "x86_64",
            target_feature = "avx2",
            target_feature = "fma"
        )))]
        {
            $(let _ = $arg;)*
            None
        }
    };
}

/// Packed unaligned load of `data[start..start+L]` (`vmovupd`/`vmovups`).
#[inline(always)]
pub fn load<R: Real, const L: usize>(data: &[R], start: usize) -> Option<VecR<R, L>> {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        use core::arch::x86_64::*;
        if avx2::is_f64x4::<R, L>() {
            let s = &data[start..start + L];
            return Some(unsafe { avx2::st_pd(_mm256_loadu_pd(s.as_ptr() as *const f64)) });
        }
        if avx2::is_f32x8::<R, L>() {
            let s = &data[start..start + L];
            return Some(unsafe { avx2::st_ps(_mm256_loadu_ps(s.as_ptr() as *const f32)) });
        }
        None
    }
    no_avx2_fallback!(data, start)
}

/// Packed unaligned store to `data[start..start+L]`.
#[inline(always)]
pub fn store<R: Real, const L: usize>(v: VecR<R, L>, data: &mut [R], start: usize) -> bool {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        use core::arch::x86_64::*;
        if avx2::is_f64x4::<R, L>() {
            let s = &mut data[start..start + L];
            unsafe { _mm256_storeu_pd(s.as_mut_ptr() as *mut f64, avx2::ld_pd(&v)) };
            return true;
        }
        if avx2::is_f32x8::<R, L>() {
            let s = &mut data[start..start + L];
            unsafe { _mm256_storeu_ps(s.as_mut_ptr() as *mut f32, avx2::ld_ps(&v)) };
            return true;
        }
        false
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    {
        let _ = (v, data, start);
        false
    }
}

/// Map-driven gather `data[idx[k]*dim + comp]` via `vgatherdpd` /
/// `vgatherdps`. Effective indices are bounds-checked once up front;
/// out-of-range indices fall back to the scalar path's panic.
#[inline(always)]
pub fn gather<R: Real, const L: usize>(
    data: &[R],
    idx: IdxVec<L>,
    dim: usize,
    comp: usize,
) -> Option<VecR<R, L>> {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        use core::arch::x86_64::*;
        if avx2::is_f64x4::<R, L>() {
            let eff: [i32; 4] = std::array::from_fn(|k| idx.lane(k) * dim as i32 + comp as i32);
            if eff.iter().all(|&i| (i as usize) < data.len() && i >= 0) {
                let v = unsafe {
                    let vi = _mm_loadu_si128(eff.as_ptr() as *const __m128i);
                    avx2::st_pd(_mm256_i32gather_pd::<8>(data.as_ptr() as *const f64, vi))
                };
                return Some(v);
            }
            return None; // scalar path reports the OOB index
        }
        if avx2::is_f32x8::<R, L>() {
            let eff: [i32; 8] = std::array::from_fn(|k| idx.lane(k) * dim as i32 + comp as i32);
            if eff.iter().all(|&i| (i as usize) < data.len() && i >= 0) {
                let v = unsafe {
                    let vi = _mm256_loadu_si256(eff.as_ptr() as *const __m256i);
                    avx2::st_ps(_mm256_i32gather_ps::<4>(data.as_ptr() as *const f32, vi))
                };
                return Some(v);
            }
            return None;
        }
        None
    }
    no_avx2_fallback!(data, idx, dim, comp)
}

/// Fused multiply-add `a*b + c` (`vfmadd213pd`) — fuses exactly like the
/// scalar [`f64::mul_add`], so results are bit-identical to the portable
/// path.
#[inline(always)]
pub fn mul_add<R: Real, const L: usize>(
    a: VecR<R, L>,
    b: VecR<R, L>,
    c: VecR<R, L>,
) -> Option<VecR<R, L>> {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        use core::arch::x86_64::*;
        if avx2::is_f64x4::<R, L>() {
            return Some(unsafe {
                avx2::st_pd(_mm256_fmadd_pd(
                    avx2::ld_pd(&a),
                    avx2::ld_pd(&b),
                    avx2::ld_pd(&c),
                ))
            });
        }
        if avx2::is_f32x8::<R, L>() {
            return Some(unsafe {
                avx2::st_ps(_mm256_fmadd_ps(
                    avx2::ld_ps(&a),
                    avx2::ld_ps(&b),
                    avx2::ld_ps(&c),
                ))
            });
        }
        None
    }
    no_avx2_fallback!(a, b, c)
}

/// Packed square root (`vsqrtpd`) — correctly rounded, identical to the
/// scalar [`f64::sqrt`] per lane.
#[inline(always)]
pub fn sqrt<R: Real, const L: usize>(a: VecR<R, L>) -> Option<VecR<R, L>> {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        use core::arch::x86_64::*;
        if avx2::is_f64x4::<R, L>() {
            return Some(unsafe { avx2::st_pd(_mm256_sqrt_pd(avx2::ld_pd(&a))) });
        }
        if avx2::is_f32x8::<R, L>() {
            return Some(unsafe { avx2::st_ps(_mm256_sqrt_ps(avx2::ld_ps(&a))) });
        }
        None
    }
    no_avx2_fallback!(a)
}

/// Per-lane blend (`vblendvpd`): lane `k` is `t[k]` where `mask[k]` is
/// set, else `f[k]` — the branch-free `select()` of paper §4.2.
#[inline(always)]
pub fn select<R: Real, const L: usize>(
    mask: Mask<L>,
    t: VecR<R, L>,
    f: VecR<R, L>,
) -> Option<VecR<R, L>> {
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        use core::arch::x86_64::*;
        if avx2::is_f64x4::<R, L>() {
            return Some(unsafe {
                let m = _mm256_castsi256_pd(_mm256_setr_epi64x(
                    -(mask.lane(0) as i64),
                    -(mask.lane(1) as i64),
                    -(mask.lane(2) as i64),
                    -(mask.lane(3) as i64),
                ));
                avx2::st_pd(_mm256_blendv_pd(avx2::ld_pd(&f), avx2::ld_pd(&t), m))
            });
        }
        if avx2::is_f32x8::<R, L>() {
            return Some(unsafe {
                let lanes: [i32; 8] = std::array::from_fn(|k| -(mask.lane(k) as i32));
                let m = _mm256_castsi256_ps(_mm256_loadu_si256(lanes.as_ptr() as *const __m256i));
                avx2::st_ps(_mm256_blendv_ps(avx2::ld_ps(&f), avx2::ld_ps(&t), m))
            });
        }
        None
    }
    no_avx2_fallback!(mask, t, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    // On AVX2 hosts these exercise the intrinsic kernels; elsewhere they
    // exercise the None fallback — either way the public VecR operations
    // must agree with per-lane scalar math (asserted in vecr/mem tests).

    #[test]
    fn isa_name_is_nonempty() {
        assert!(!isa_name().is_empty());
    }

    #[test]
    fn specializations_agree_with_scalar_lanes() {
        let a4 = VecR::<f64, 4>::from_array([1.5, -2.0, 0.25, 9.0]);
        let b4 = VecR::<f64, 4>::from_array([2.0, 3.0, -4.0, 0.5]);
        let c4 = VecR::<f64, 4>::from_array([0.1, 0.2, 0.3, 0.4]);
        if let Some(r) = mul_add(a4, b4, c4) {
            for k in 0..4 {
                assert_eq!(r.lane(k), a4.lane(k).mul_add(b4.lane(k), c4.lane(k)));
            }
        }
        if let Some(r) = sqrt(VecR::<f64, 4>::from_array([4.0, 9.0, 2.0, 0.0])) {
            assert_eq!(r.to_array(), [2.0, 3.0, 2.0f64.sqrt(), 0.0]);
        }
        let m = Mask::from_array([true, false, false, true]);
        if let Some(r) = select(m, a4, b4) {
            assert_eq!(r.to_array(), [1.5, 3.0, -4.0, 9.0]);
        }

        let a8 = VecR::<f32, 8>::from_fn(|k| k as f32 - 3.0);
        let b8 = VecR::<f32, 8>::splat(2.0);
        if let Some(r) = mul_add(a8, b8, b8) {
            for k in 0..8 {
                assert_eq!(r.lane(k), a8.lane(k).mul_add(2.0, 2.0));
            }
        }
    }

    #[test]
    fn gather_and_load_agree_with_indexing() {
        let data: Vec<f64> = (0..32).map(|i| (i * i) as f64).collect();
        if let Some(v) = load::<f64, 4>(&data, 5) {
            assert_eq!(v.to_array(), [25.0, 36.0, 49.0, 64.0]);
        }
        let idx = IdxVec::<4>::from_array([7, 0, 3, 5]);
        if let Some(v) = gather::<f64, 4>(&data, idx, 4, 1) {
            let want: [f64; 4] = std::array::from_fn(|k| data[idx.lane(k) as usize * 4 + 1]);
            assert_eq!(v.to_array(), want);
        }
        // out-of-range effective index: must decline, not fault
        let oob = IdxVec::<4>::from_array([7, 0, 3, 100]);
        assert!(gather::<f64, 4>(&data, oob, 4, 1).is_none() || !have_avx2());

        let mut out = vec![0.0f64; 8];
        let stored = store(VecR::<f64, 4>::splat(7.0), &mut out, 2);
        if stored {
            assert_eq!(&out[2..6], &[7.0; 4]);
            assert_eq!(out[0], 0.0);
        }
    }

    #[test]
    fn f32x8_load_store_roundtrip() {
        let data: Vec<f32> = (0..16).map(|i| i as f32 * 0.5).collect();
        if let Some(v) = load::<f32, 8>(&data, 3) {
            let mut out = vec![0.0f32; 16];
            assert!(store(v, &mut out, 1));
            assert_eq!(&out[1..9], &data[3..11]);
        }
    }
}
