//! Lane masks for vectorized control flow.
//!
//! The SIMD programming model has no per-lane branching; the paper (§4.2)
//! requires kernels to replace conditionals with `select()` driven by
//! comparison masks (AVX `vcmppd`+`vblendvpd`, IMCI mask registers). A
//! [`Mask<L>`] is the portable equivalent: one boolean per lane, produced by
//! the comparison methods on [`VecR`](crate::VecR) and consumed by
//! `VecR::select` and the masked memory operations.

use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A per-lane boolean mask for `L`-lane vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mask<const L: usize>(pub(crate) [bool; L]);

impl<const L: usize> Mask<L> {
    /// Mask with every lane set to `b`.
    #[inline(always)]
    pub fn splat(b: bool) -> Self {
        Mask([b; L])
    }

    /// Mask from an explicit lane array.
    #[inline(always)]
    pub fn from_array(a: [bool; L]) -> Self {
        Mask(a)
    }

    /// The lane array.
    #[inline(always)]
    pub fn to_array(self) -> [bool; L] {
        self.0
    }

    /// Value of lane `i`.
    #[inline(always)]
    pub fn lane(self, i: usize) -> bool {
        self.0[i]
    }

    /// `true` if any lane is set.
    #[inline(always)]
    pub fn any(self) -> bool {
        self.0.iter().any(|&b| b)
    }

    /// `true` if all lanes are set.
    #[inline(always)]
    pub fn all(self) -> bool {
        self.0.iter().all(|&b| b)
    }

    /// Number of set lanes.
    #[inline(always)]
    pub fn count(self) -> usize {
        self.0.iter().filter(|&&b| b).count()
    }

    /// Mask of the first `n` lanes — the tail mask used when a loop
    /// remainder is executed masked instead of scalar (an alternative the
    /// paper measured and rejected; kept for the `scatter_modes` ablation).
    #[inline(always)]
    pub fn first(n: usize) -> Self {
        let mut m = [false; L];
        for (i, b) in m.iter_mut().enumerate() {
            *b = i < n;
        }
        Mask(m)
    }
}

impl<const L: usize> BitAnd for Mask<L> {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        let mut out = [false; L];
        for i in 0..L {
            out[i] = self.0[i] & rhs.0[i];
        }
        Mask(out)
    }
}

impl<const L: usize> BitOr for Mask<L> {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        let mut out = [false; L];
        for i in 0..L {
            out[i] = self.0[i] | rhs.0[i];
        }
        Mask(out)
    }
}

impl<const L: usize> BitXor for Mask<L> {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = [false; L];
        for i in 0..L {
            out[i] = self.0[i] ^ rhs.0[i];
        }
        Mask(out)
    }
}

impl<const L: usize> Not for Mask<L> {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [false; L];
        for i in 0..L {
            out[i] = !self.0[i];
        }
        Mask(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_any_all_count() {
        let t = Mask::<4>::splat(true);
        let f = Mask::<4>::splat(false);
        assert!(t.all() && t.any() && t.count() == 4);
        assert!(!f.any() && !f.all() && f.count() == 0);
    }

    #[test]
    fn boolean_algebra() {
        let a = Mask::<4>::from_array([true, true, false, false]);
        let b = Mask::<4>::from_array([true, false, true, false]);
        assert_eq!((a & b).to_array(), [true, false, false, false]);
        assert_eq!((a | b).to_array(), [true, true, true, false]);
        assert_eq!((a ^ b).to_array(), [false, true, true, false]);
        assert_eq!((!a).to_array(), [false, false, true, true]);
    }

    #[test]
    fn first_n_tail_mask() {
        let m = Mask::<8>::first(3);
        assert_eq!(m.count(), 3);
        assert!(m.lane(0) && m.lane(2) && !m.lane(3));
        assert_eq!(Mask::<8>::first(0).count(), 0);
        assert_eq!(Mask::<8>::first(8).count(), 8);
    }
}
