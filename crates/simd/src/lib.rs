//! # ump-simd — portable SIMD wrapper classes for unstructured-mesh kernels
//!
//! This crate is the Rust analogue of the vector wrapper classes the paper
//! builds on top of Intel's `dvec.h` / `micvec.h` headers (paper Fig. 4):
//! fixed-width vector value types with overloaded operators, explicit
//! gather/scatter constructors driven by mesh mappings, masked `select`
//! instead of branches, and horizontal reductions.
//!
//! The paper selects the lane count per ISA with preprocessor macros
//! (`#define VEC 4` for AVX, `8` for IMCI). Here the lane count is a const
//! generic parameter, so the same kernel source instantiates at any width:
//!
//! * [`F64x4`] — the AVX double-precision shape (4 × f64, 256 bit)
//! * [`F64x8`] — the IMCI/AVX-512 double shape (8 × f64, 512 bit)
//! * [`F32x8`] / [`F32x16`] — the single-precision equivalents
//! * `VecR<R, 1>` — a degenerate scalar vector, handy for testing
//!
//! The baseline implementation is *portable*: lanes are `[R; L]` arrays
//! and every operation is an `#[inline(always)]` lane loop. Compiled with
//! `-C target-cpu=native` (set in this workspace's `.cargo/config.toml`)
//! LLVM lowers most of these loops to packed vector instructions on
//! AVX2/AVX-512 hosts. For the operations where that lowering is not
//! guaranteed — unaligned packed moves, map-driven gathers, FMA, blends,
//! square roots — [`arch`] supplies explicit `std::arch` AVX2+FMA kernels
//! for the `f64×4` and `f32×8` shapes (selected at compile time by
//! `target_feature`, bit-identical to the portable path), which is exactly
//! the machine code the paper's intrinsics produce, without tying the
//! crate to one ISA.
//!
//! Beyond the value types, the crate provides:
//!
//! * [`IdxVec`] — a lane-wide vector of `i32` mapping indices (the paper's
//!   `I32vec4`/`I32vec8`), loaded straight from `op_map` tables,
//! * gather/scatter helpers for both *strided* direct data
//!   (`arg.data[n*dim + d]`) and *map-indexed* indirect data
//!   (`arg.data[map[n]*dim + d]`),
//! * [`Sweep`] — the scalar-presweep / aligned-vector-body / scalar-postsweep
//!   loop decomposition the generated SIMD loops use (paper §4.2),
//! * [`Mask`] + [`select`](VecR::select) — branch handling inside vectorized
//!   kernels (paper §4.2's `select()` requirement).

#![deny(missing_docs)]

pub mod arch;
pub mod idx;
pub mod layout;
pub mod mask;
pub mod mem;
pub mod real;
pub mod sweep;
pub mod vecr;

pub use arch::{have_avx2, isa_name};
pub use idx::IdxVec;
pub use layout::{DatView, Layout};
pub use mask::Mask;
pub use real::Real;
pub use sweep::{split_sweep, Sweep};
pub use vecr::VecR;

/// AVX-shaped double-precision vector: 4 × `f64` (256 bit).
pub type F64x4 = VecR<f64, 4>;
/// IMCI/AVX-512-shaped double-precision vector: 8 × `f64` (512 bit).
pub type F64x8 = VecR<f64, 8>;
/// AVX-shaped single-precision vector: 8 × `f32` (256 bit).
pub type F32x8 = VecR<f32, 8>;
/// IMCI/AVX-512-shaped single-precision vector: 16 × `f32` (512 bit).
pub type F32x16 = VecR<f32, 16>;

/// Lane count used by the "AVX" configuration for a given element type
/// (4 doubles or 8 floats per 256-bit register).
pub const fn avx_lanes<R: Real>() -> usize {
    256 / (8 * R::BYTES)
}

/// Lane count used by the "IMCI"/AVX-512 configuration for a given element
/// type (8 doubles or 16 floats per 512-bit register).
pub const fn imci_lanes<R: Real>() -> usize {
    512 / (8 * R::BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_widths_match_paper_table() {
        assert_eq!(avx_lanes::<f64>(), 4);
        assert_eq!(avx_lanes::<f32>(), 8);
        assert_eq!(imci_lanes::<f64>(), 8);
        assert_eq!(imci_lanes::<f32>(), 16);
    }
}
