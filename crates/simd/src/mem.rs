//! Memory movement: packing mesh data into vector registers and back.
//!
//! The paper's §2 taxonomy of SIMD memory access — (1) aligned contiguous,
//! (2) unaligned contiguous, (3) gather/scatter from computed addresses —
//! maps onto the methods in this module:
//!
//! | paper operation                                   | method |
//! |---------------------------------------------------|--------|
//! | aligned/unaligned vector load of direct data      | [`VecR::load`] |
//! | strided gather of AoS direct data (`data[n*dim+d]`)| [`VecR::load_strided`] |
//! | map-driven gather (`data[map[n]*dim+d]`)          | [`VecR::gather`] |
//! | vector store of direct data                       | [`VecR::store`] |
//! | strided scatter of AoS direct data                | [`VecR::store_strided`] |
//! | map-driven scatter (permute schemes, lanes distinct)| [`VecR::scatter`] |
//! | serialized colored increment (original scheme)    | [`VecR::scatter_add_serial`] |
//! | masked scatter-add (measured slower in the paper) | [`VecR::scatter_add_masked`] |

use crate::{IdxVec, Mask, Real, VecR};

impl<R: Real, const L: usize> VecR<R, L> {
    /// Load `L` consecutive lanes from `data[start..start+L]`.
    ///
    /// The generated main loop guarantees `start` is a multiple of `L`
    /// (after the scalar pre-sweep), making this the aligned-load case.
    #[inline(always)]
    pub fn load(data: &[R], start: usize) -> Self {
        if let Some(v) = crate::arch::load(data, start) {
            return v;
        }
        let mut out = [R::ZERO; L];
        out.copy_from_slice(&data[start..start + L]);
        VecR(out)
    }

    /// Strided gather of direct AoS data: lane `k` is
    /// `data[start + k*stride]` — the paper's
    /// `doublev(&arg2.data[n*4 + d], 4)` constructor.
    #[inline(always)]
    pub fn load_strided(data: &[R], start: usize, stride: usize) -> Self {
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = data[start + k * stride];
        }
        VecR(out)
    }

    /// Map-driven gather: lane `k` is `data[idx[k] as usize * dim + comp]` —
    /// the paper's `doublev(arg0.data + comp, dim * map0idx)` constructor
    /// (`_mm512_i32logather_pd` on IMCI).
    #[inline(always)]
    pub fn gather(data: &[R], idx: IdxVec<L>, dim: usize, comp: usize) -> Self {
        if let Some(v) = crate::arch::gather(data, idx, dim, comp) {
            return v;
        }
        let mut out = [R::ZERO; L];
        for k in 0..L {
            out[k] = data[idx.lane(k) as usize * dim + comp];
        }
        VecR(out)
    }

    /// Masked map-driven gather; inactive lanes are `fill`.
    #[inline(always)]
    pub fn gather_masked(
        data: &[R],
        idx: IdxVec<L>,
        dim: usize,
        comp: usize,
        mask: Mask<L>,
        fill: R,
    ) -> Self {
        let mut out = [fill; L];
        for k in 0..L {
            if mask.lane(k) {
                out[k] = data[idx.lane(k) as usize * dim + comp];
            }
        }
        VecR(out)
    }

    /// Store all lanes to `data[start..start+L]`.
    #[inline(always)]
    pub fn store(self, data: &mut [R], start: usize) {
        if crate::arch::store(self, data, start) {
            return;
        }
        data[start..start + L].copy_from_slice(&self.0);
    }

    /// Strided scatter of direct AoS data: `data[start + k*stride] = lane k`.
    #[inline(always)]
    pub fn store_strided(self, data: &mut [R], start: usize, stride: usize) {
        for k in 0..L {
            data[start + k * stride] = self.0[k];
        }
    }

    /// Map-driven *overwriting* scatter: `data[idx[k]*dim + comp] = lane k`.
    ///
    /// Sound only when the lane targets are distinct; the full-permute and
    /// block-permute coloring schemes guarantee this (paper §4). Debug
    /// builds assert the invariant.
    #[inline(always)]
    pub fn scatter(self, data: &mut [R], idx: IdxVec<L>, dim: usize, comp: usize) {
        debug_assert!(
            idx.all_distinct(),
            "vector scatter with colliding lanes — plan violates lane independence"
        );
        for k in 0..L {
            data[idx.lane(k) as usize * dim + comp] = self.0[k];
        }
    }

    /// Map-driven *accumulating* scatter with distinct lanes:
    /// `data[idx[k]*dim + comp] += lane k` (IMCI scatter after the permute
    /// schemes establish independence).
    #[inline(always)]
    pub fn scatter_add(self, data: &mut [R], idx: IdxVec<L>, dim: usize, comp: usize) {
        debug_assert!(
            idx.all_distinct(),
            "vector scatter-add with colliding lanes — plan violates lane independence"
        );
        for k in 0..L {
            data[idx.lane(k) as usize * dim + comp] += self.0[k];
        }
    }

    /// Serialized accumulating scatter: lanes applied one at a time in lane
    /// order, so colliding targets accumulate correctly.
    ///
    /// This is the "sequentially scattering data out of the vector
    /// register" fallback the paper uses for the original two-level
    /// coloring scheme, and the serialization bottleneck Table VIII blames
    /// for `res_calc`'s Phi performance.
    #[inline(always)]
    pub fn scatter_add_serial(self, data: &mut [R], idx: IdxVec<L>, dim: usize, comp: usize) {
        for k in 0..L {
            data[idx.lane(k) as usize * dim + comp] += self.0[k];
        }
    }

    /// Masked accumulating scatter: only lanes set in `mask` are applied,
    /// still serialized. The paper measured masked scatters and found them
    /// "slower than just sequentially scattering data"; kept for the
    /// `scatter_modes` ablation bench.
    #[inline(always)]
    pub fn scatter_add_masked(
        self,
        data: &mut [R],
        idx: IdxVec<L>,
        dim: usize,
        comp: usize,
        mask: Mask<L>,
    ) {
        for k in 0..L {
            if mask.lane(k) {
                data[idx.lane(k) as usize * dim + comp] += self.0[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F64x4;

    fn data16() -> Vec<f64> {
        (0..16).map(|i| i as f64).collect()
    }

    #[test]
    fn load_store_roundtrip() {
        let d = data16();
        let v = F64x4::load(&d, 4);
        assert_eq!(v.to_array(), [4.0, 5.0, 6.0, 7.0]);
        let mut out = vec![0.0; 16];
        v.store(&mut out, 8);
        assert_eq!(&out[8..12], &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn strided_load_reads_aos_components() {
        // 4 elements with dim=4 (airfoil q layout), component 2 of each:
        let d = data16();
        let v = F64x4::load_strided(&d, 2, 4);
        assert_eq!(v.to_array(), [2.0, 6.0, 10.0, 14.0]);
        let mut out = vec![0.0; 16];
        v.store_strided(&mut out, 2, 4);
        assert_eq!(out[2], 2.0);
        assert_eq!(out[6], 6.0);
        assert_eq!(out[14], 14.0);
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn gather_follows_mapping() {
        // data for 8 elements of dim 2
        let d: Vec<f64> = (0..16).map(|i| i as f64 * 10.0).collect();
        let idx = IdxVec::<4>::from_array([7, 0, 3, 5]);
        let v = F64x4::gather(&d, idx, 2, 1);
        assert_eq!(v.to_array(), [150.0, 10.0, 70.0, 110.0]);
    }

    #[test]
    fn scatter_distinct_lanes() {
        let mut d = vec![0.0f64; 12];
        let idx = IdxVec::<4>::from_array([5, 1, 3, 0]);
        F64x4::from_array([50.0, 10.0, 30.0, 0.5]).scatter(&mut d, idx, 2, 0);
        assert_eq!(d[10], 50.0);
        assert_eq!(d[2], 10.0);
        assert_eq!(d[6], 30.0);
        assert_eq!(d[0], 0.5);
    }

    #[test]
    fn serial_scatter_add_handles_collisions() {
        let mut d = vec![0.0f64; 4];
        // two lanes hit element 1: must accumulate, not race
        let idx = IdxVec::<4>::from_array([1, 1, 0, 1]);
        F64x4::from_array([1.0, 2.0, 5.0, 4.0]).scatter_add_serial(&mut d, idx, 1, 0);
        assert_eq!(d[1], 7.0);
        assert_eq!(d[0], 5.0);
    }

    #[test]
    #[should_panic(expected = "lane independence")]
    #[cfg(debug_assertions)]
    fn vector_scatter_panics_on_collision_in_debug() {
        let mut d = vec![0.0f64; 4];
        let idx = IdxVec::<4>::from_array([1, 1, 0, 2]);
        F64x4::splat(1.0).scatter_add(&mut d, idx, 1, 0);
    }

    #[test]
    fn masked_gather_and_scatter() {
        let d: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let idx = IdxVec::<4>::from_array([0, 2, 4, 6]);
        let m = Mask::from_array([true, false, true, false]);
        let v = F64x4::gather_masked(&d, idx, 1, 0, m, -1.0);
        assert_eq!(v.to_array(), [0.0, -1.0, 4.0, -1.0]);

        let mut out = vec![0.0f64; 8];
        v.scatter_add_masked(&mut out, idx, 1, 0, m);
        assert_eq!(out[0], 0.0);
        assert_eq!(out[4], 4.0);
        assert_eq!(out[2], 0.0); // masked-off lane not applied
    }

    #[test]
    fn gather_scatter_roundtrip_permutation() {
        let d: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let idx = IdxVec::<4>::from_array([6, 4, 1, 3]);
        let mut out = vec![0.0f64; 8];
        F64x4::gather(&d, idx, 1, 0).scatter(&mut out, idx, 1, 0);
        for &i in &[6usize, 4, 1, 3] {
            assert_eq!(out[i], d[i]);
        }
    }
}
