//! Property-based tests for the SIMD layer: vector ops must agree with the
//! scalar reference lane-by-lane, gathers/scatters must round-trip, and the
//! sweep split must tile any range exactly.

use proptest::prelude::*;
use ump_simd::{split_sweep, F32x8, F64x4, IdxVec, Mask, VecR};

fn arr4() -> impl Strategy<Value = [f64; 4]> {
    prop::array::uniform4(-1.0e6f64..1.0e6)
}

proptest! {
    #[test]
    fn add_matches_scalar(a in arr4(), b in arr4()) {
        let v = F64x4::from_array(a) + F64x4::from_array(b);
        for k in 0..4 {
            prop_assert_eq!(v.lane(k), a[k] + b[k]);
        }
    }

    #[test]
    fn mul_matches_scalar(a in arr4(), b in arr4()) {
        let v = F64x4::from_array(a) * F64x4::from_array(b);
        for k in 0..4 {
            prop_assert_eq!(v.lane(k), a[k] * b[k]);
        }
    }

    #[test]
    fn select_matches_scalar_ternary(a in arr4(), b in arr4()) {
        let va = F64x4::from_array(a);
        let vb = F64x4::from_array(b);
        let m = va.simd_lt(vb);
        let sel = F64x4::select(m, va, vb);
        for k in 0..4 {
            let expect = if a[k] < b[k] { a[k] } else { b[k] };
            prop_assert_eq!(sel.lane(k), expect);
        }
    }

    #[test]
    fn reduce_min_max_bound_all_lanes(a in arr4()) {
        let v = F64x4::from_array(a);
        let (mn, mx) = (v.reduce_min(), v.reduce_max());
        for k in 0..4 {
            prop_assert!(mn <= a[k] && a[k] <= mx);
        }
        prop_assert!(a.contains(&mn) && a.contains(&mx));
    }

    #[test]
    fn reduce_sum_close_to_fold(a in arr4()) {
        let v = F64x4::from_array(a);
        let fold: f64 = a.iter().sum();
        // pairwise vs sequential association differ only by rounding
        prop_assert!((v.reduce_sum() - fold).abs() <= 1e-9 * (1.0 + fold.abs()));
    }

    #[test]
    fn gather_matches_scalar_indexing(
        data in prop::collection::vec(-100.0f64..100.0, 32..128),
        raw in prop::array::uniform4(0usize..1000),
        dim in 1usize..4,
    ) {
        let nelem = data.len() / dim;
        prop_assume!(nelem > 0);
        let idx = IdxVec::<4>::from_array(raw.map(|r| (r % nelem) as i32));
        for comp in 0..dim {
            let v = F64x4::gather(&data, idx, dim, comp);
            for k in 0..4 {
                prop_assert_eq!(v.lane(k), data[idx.lane(k) as usize * dim + comp]);
            }
        }
    }

    #[test]
    fn serial_scatter_add_equals_scalar_loop(
        vals in arr4(),
        raw in prop::array::uniform4(0usize..8),
    ) {
        let idx = IdxVec::<4>::from_array(raw.map(|r| r as i32));
        let mut simd_out = vec![0.0f64; 8];
        F64x4::from_array(vals).scatter_add_serial(&mut simd_out, idx, 1, 0);
        let mut scalar_out = vec![0.0f64; 8];
        for k in 0..4 {
            scalar_out[raw[k]] += vals[k];
        }
        prop_assert_eq!(simd_out, scalar_out);
    }

    #[test]
    fn masked_scatter_add_respects_mask(
        vals in arr4(),
        raw in prop::array::uniform4(0usize..8),
        mask_bits in prop::array::uniform4(any::<bool>()),
    ) {
        let idx = IdxVec::<4>::from_array(raw.map(|r| r as i32));
        let mask = Mask::from_array(mask_bits);
        let mut got = vec![0.0f64; 8];
        F64x4::from_array(vals).scatter_add_masked(&mut got, idx, 1, 0, mask);
        let mut expect = vec![0.0f64; 8];
        for k in 0..4 {
            if mask_bits[k] {
                expect[raw[k]] += vals[k];
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sweep_tiles_any_range(start in 0usize..1000, len in 0usize..5000, lanes_pow in 0u32..5, align_off in 0usize..64) {
        let lanes = 1usize << lanes_pow;
        let align_base = start.saturating_sub(align_off);
        let s = split_sweep(start..start + len, lanes, align_base);
        prop_assert_eq!(s.len(), len);
        prop_assert_eq!(s.body.len() % lanes, 0);
        prop_assert!(s.pre.len() < lanes);
        prop_assert!(s.post.len() < lanes);
        if !s.body.is_empty() {
            prop_assert_eq!((s.body.start - align_base) % lanes, 0);
        }
        let count = s.scalar_items().count() + s.vector_chunks().count() * lanes;
        prop_assert_eq!(count, len);
    }

    #[test]
    fn f32_ops_match_scalar(a in prop::array::uniform8(-1.0e4f32..1.0e4), b in prop::array::uniform8(0.5f32..100.0)) {
        let v = F32x8::from_array(a) / F32x8::from_array(b);
        for k in 0..8 {
            prop_assert_eq!(v.lane(k), a[k] / b[k]);
        }
        let s = F32x8::from_array(b).sqrt();
        for k in 0..8 {
            prop_assert_eq!(s.lane(k), b[k].sqrt());
        }
    }

    #[test]
    fn single_lane_vector_is_scalar(x in -1.0e6f64..1.0e6, y in -1.0e6f64..1.0e6) {
        let a = VecR::<f64, 1>::splat(x);
        let b = VecR::<f64, 1>::splat(y);
        prop_assert_eq!((a * b + a).lane(0), x * y + x);
        prop_assert_eq!((a.max(b)).lane(0), x.max(y));
    }
}
