//! UMPT format property tests, mirroring the snapshot corruption suite
//! in `checkpoint_roundtrip.rs`: hostile bytes must produce a typed
//! `Err` (or decode to a still-valid store), never a panic; well-formed
//! stores round-trip bit-identically.

use proptest::prelude::*;
use std::sync::OnceLock;
use ump_core::Backend;
use ump_tune::{registry_hash, App, HostProbe, TuneEntry, TuneKey, TuneStore, Tuner};

/// A realistic store shared by every corruption case: every registered
/// backend appears as some entry's decision, so name decoding is
/// exercised across the whole registry.
fn sample_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut store = TuneStore::new();
        for (i, backend) in Backend::all().into_iter().enumerate() {
            store.upsert(TuneEntry {
                key: TuneKey {
                    app: if i % 2 == 0 { App::Airfoil } else { App::Volna },
                    nx: 32 + i as u64,
                    ny: 16 + i as u64,
                    registry: registry_hash(),
                    host_sig: 0xdead_beef ^ i as u64,
                },
                backend,
                block_size: 256 << (i % 3),
                trials: i as u32 + 1,
                seconds_per_step: 1e-3 * (i + 1) as f64,
                gb_per_s: 0.5 * i as f64,
            });
        }
        store.encode()
    })
}

#[test]
fn round_trip_is_bit_identical() {
    let bytes = sample_bytes();
    let store = TuneStore::decode(bytes).expect("own encoding decodes");
    assert_eq!(store.len(), Backend::all().len());
    assert_eq!(store.encode(), bytes, "encode∘decode must be the identity");
}

#[test]
fn version_bump_and_empty_input_are_typed_errors() {
    assert!(TuneStore::decode(&[]).is_err());
    let mut bumped = sample_bytes().to_vec();
    bumped[4] = bumped[4].wrapping_add(1); // version low byte
    assert!(
        TuneStore::decode(&bumped).is_err(),
        "future version accepted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Flip one byte anywhere: decode must return — Ok with
    // different-but-valid entries is fine (a flipped mesh dim is just a
    // different key), a typed error is fine, a panic is the bug. The
    // magic/version prefix must always be *detected*.
    #[test]
    fn single_byte_corruption_never_panics(idx in 0usize..1 << 20, mask in 1usize..256) {
        let mut bytes = sample_bytes().to_vec();
        let i = idx % bytes.len();
        bytes[i] ^= mask as u8;
        let decoded = TuneStore::decode(&bytes);
        if i < 8 {
            prop_assert!(decoded.is_err(), "corrupt magic/version at byte {i} accepted");
        }
        if let Ok(store) = decoded {
            // whatever decoded must still be a coherent store: every
            // entry names a registered backend with plausible numbers
            let reencoded = store.encode();
            prop_assert_eq!(TuneStore::decode(&reencoded).unwrap(), store);
        }
    }

    // Any strict prefix is a typed error — the torn-write case.
    #[test]
    fn truncated_store_is_a_typed_error(cut in 0usize..1 << 20) {
        let bytes = sample_bytes();
        let cut = cut % bytes.len(); // strict prefix
        prop_assert!(TuneStore::decode(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
    }

    // Corruption composed with truncation must also degrade to a typed
    // error, never a panic.
    #[test]
    fn corrupt_then_truncate_never_panics(
        idx in 0usize..1 << 20,
        mask in 1usize..256,
        cut in 0usize..1 << 20,
    ) {
        let mut bytes = sample_bytes().to_vec();
        let i = idx % bytes.len();
        bytes[i] ^= mask as u8;
        let cut = cut % bytes.len();
        prop_assert!(TuneStore::decode(&bytes[..cut]).is_err());
    }

    // Arbitrary garbage prefixed with the right magic+version still
    // never panics.
    #[test]
    fn random_payloads_never_panic(len in 0usize..256, seed in 0u64..u64::MAX) {
        let mut bytes = Vec::with_capacity(12 + len);
        bytes.extend_from_slice(b"UMPT");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let mut x = seed | 1;
        for _ in 0..len {
            // xorshift garbage
            x ^= x << 13; x ^= x >> 7; x ^= x << 17;
            bytes.push(x as u8);
        }
        let _ = TuneStore::decode(&bytes);
    }
}

// ---------------------------------------------------------------------
// File-backed degradation: a corrupt or missing store file must cold-
// start the tuner, never fail it.
// ---------------------------------------------------------------------

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    dir.join(name)
}

#[test]
fn warm_start_from_persisted_store_runs_zero_trials() {
    let path = tmp("warm_start.umpt");
    let _ = std::fs::remove_file(&path);
    let probe = HostProbe::fixed(2, 8.0);

    let cold = Tuner::with_probe(probe)
        .with_store_path(&path)
        .with_top_k(2)
        .with_trial_steps(1);
    let first = cold.pick(App::Airfoil, 12, 8);
    assert!(!first.from_store && first.trials > 0);
    assert!(path.exists(), "search must persist its decision");

    // a brand-new tuner (fresh process stand-in) warm-starts from disk
    let warm = Tuner::with_probe(probe)
        .with_store_path(&path)
        .with_top_k(2)
        .with_trial_steps(1);
    let second = warm.pick(App::Airfoil, 12, 8);
    assert!(second.from_store, "persisted decision not picked up");
    assert_eq!(second.trials, 0, "warm start must run zero trials");
    assert_eq!(second.backend, first.backend);
    assert_eq!(warm.stats().store_hits, 1);
    assert_eq!(warm.stats().trials_run, 0);
}

#[test]
fn corrupt_store_file_degrades_to_fresh_search() {
    let path = tmp("corrupt.umpt");
    std::fs::write(&path, b"UMPT\x63\x00\x00\x00garbage").unwrap();
    let tuner = Tuner::with_probe(HostProbe::fixed(2, 8.0))
        .with_store_path(&path)
        .with_top_k(1)
        .with_trial_steps(1);
    let c = tuner.pick(App::Volna, 10, 8);
    assert!(!c.from_store, "corrupt store must not produce hits");
    assert!(Backend::all().contains(&c.backend));
    // and the fresh search overwrites the corrupt file with a valid one
    assert!(TuneStore::load(&path).unwrap().len() == 1);
}
