//! Conformance for auto selection (ISSUE 8 satellite): the tuner's
//! pick is always a registered `Backend`, stepping with it matches the
//! sequential reference to ≤ 1e-12 on both apps, and a second identical
//! tune call is a pure store hit with zero trials.

use ump_core::{Backend, ExecPool, PlanCache};
use ump_tune::{step_auto_airfoil_on, step_auto_volna_on, App, HostProbe, Tuner};

const STEPS: usize = 3;

fn fast_tuner() -> Tuner {
    // fixed probe: deterministic machine model, no live bandwidth
    // measurement; small top_k keeps the trial budget test-sized
    Tuner::with_probe(HostProbe::fixed(4, 16.0))
        .with_top_k(3)
        .with_trial_steps(1)
        .with_team(2)
}

#[test]
fn airfoil_auto_pick_is_registered_and_matches_seq() {
    let tuner = fast_tuner();
    let (nx, ny) = (24, 12);
    let c = tuner.pick(App::Airfoil, nx, ny);
    assert!(
        Backend::all().contains(&c.backend),
        "tuner invented backend {:?}",
        c.backend
    );

    let pool = ExecPool::new(2);
    let cache = PlanCache::new();
    let mut auto = ump_apps::airfoil::Airfoil::<f64>::seeded(nx, ny, 0);
    let mut seq = ump_apps::airfoil::Airfoil::<f64>::seeded(nx, ny, 0);
    for step in 0..STEPS {
        let a = step_auto_airfoil_on(&tuner, &mut auto, nx, ny, &pool, &cache, None);
        let s = ump_apps::airfoil::drivers::step_seq(&mut seq, None);
        assert!(
            (a - s).abs() <= 1e-12,
            "step {step}: auto ({}) rms {a} vs seq rms {s}",
            c.backend.name()
        );
    }
}

#[test]
fn volna_auto_pick_is_registered_and_matches_seq() {
    let tuner = fast_tuner();
    let (nx, ny) = (20, 14);
    let c = tuner.pick(App::Volna, nx, ny);
    assert!(Backend::all().contains(&c.backend));

    let pool = ExecPool::new(2);
    let cache = PlanCache::new();
    let mut auto = ump_apps::volna::Volna::<f64>::seeded(nx, ny, 0);
    let mut seq = ump_apps::volna::Volna::<f64>::seeded(nx, ny, 0);
    for step in 0..STEPS {
        let a = step_auto_volna_on(&tuner, &mut auto, nx, ny, &pool, &cache, None);
        let s = ump_apps::volna::drivers::step_seq(&mut seq, None);
        assert!(
            (a - s).abs() <= 1e-12,
            "step {step}: auto ({}) dt {a} vs seq dt {s}",
            c.backend.name()
        );
    }
}

#[test]
fn second_identical_tune_is_a_pure_store_hit() {
    let tuner = fast_tuner();
    for (app, nx, ny) in [(App::Airfoil, 16, 10), (App::Volna, 14, 10)] {
        let cold = tuner.pick(app, nx, ny);
        assert!(!cold.from_store && cold.trials > 0, "{app}: cold pick");
        let warm = tuner.pick(app, nx, ny);
        assert!(warm.from_store, "{app}: second pick missed the store");
        assert_eq!(warm.trials, 0, "{app}: warm pick ran trials");
        assert_eq!(warm.backend, cold.backend);
        assert_eq!(warm.block_size, cold.block_size);
    }
    let stats = tuner.stats();
    assert_eq!(stats.picks, 4);
    assert_eq!(stats.store_hits, 2);
    assert_eq!(stats.store_misses, 2);
}

#[test]
fn trial_measurements_collect_per_kernel_loopstats() {
    // the tuner's GB/s figure comes from per-kernel LoopStats sums —
    // nonzero means instrumentation flowed through whatever shape won,
    // including the fused paths (per-member attribution)
    let tuner = fast_tuner();
    let c = tuner.pick(App::Airfoil, 16, 10);
    assert!(
        c.gb_per_s > 0.0,
        "winner {} reported no per-kernel bandwidth",
        c.backend.name()
    );
}
