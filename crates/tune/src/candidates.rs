//! Candidate enumeration from registry capability flags.

use ump_core::Backend;

/// One point of the tuning search space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// A registered backend (never an invented one).
    pub backend: Backend,
    /// Mini-partition block size handed to the dispatcher.
    pub block_size: usize,
    /// Vector lanes this shape commits to (1 for scalar shapes).
    pub lanes: usize,
    /// Worker team the trial will run with (1 for pool-free shapes,
    /// `ranks()` for the in-process distributed ones).
    pub team: usize,
}

/// Block sizes tried for shapes where blocking matters (pooled and
/// fused paths re-block work per team member; the paper's Fig. 7 sweep
/// flattens out in this range).
const BLOCKED: [usize; 2] = [256, 1024];
/// Single block size for shapes that ignore blocking (sequential and
/// whole-set SIMD paths).
const UNBLOCKED: [usize; 1] = [1024];

/// Cross the full registry with per-shape block sizes. Every candidate
/// is derived from `Backend::all()` and its capability flags — nothing
/// here can produce an unregistered shape.
pub fn enumerate(team: usize) -> Vec<Candidate> {
    let team = team.max(1);
    let mut out = Vec::new();
    for backend in Backend::all() {
        let blocks: &[usize] = if backend.needs_pool() || backend.is_fused() {
            &BLOCKED
        } else {
            &UNBLOCKED
        };
        for &block_size in blocks {
            out.push(Candidate {
                backend,
                block_size,
                lanes: backend.lanes(),
                team: if backend.needs_pool() {
                    team
                } else {
                    backend.ranks()
                },
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_whole_registry() {
        let cands = enumerate(4);
        for b in Backend::all() {
            assert!(
                cands.iter().any(|c| c.backend == b),
                "no candidate for {}",
                b.name()
            );
        }
        // pooled shapes get the block sweep
        assert!(
            cands
                .iter()
                .filter(|c| c.backend == Backend::Threaded)
                .count()
                == BLOCKED.len()
        );
        for c in &cands {
            assert!(c.team >= 1 && c.lanes >= 1 && c.block_size >= 1);
            assert!(Backend::all().contains(&c.backend));
        }
    }
}
