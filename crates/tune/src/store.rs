//! The persistent tuning store: a versioned little-endian `UMPT` file,
//! same typed-decode discipline as the UMPD mesh and UMPJ snapshot
//! formats — hostile bytes produce an [`io::Error`], never a panic,
//! and a well-formed store round-trips bit-identically.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   [u8;4] = "UMPT"
//! version u32    = 1
//! nentries u32   (≤ 4096)
//! entry × nentries:
//!   app       u8   (0 = airfoil, 1 = volna)
//!   nx, ny    u64
//!   registry  u64  (FNV-1a over Backend::all() names)
//!   host_sig  u64  (HostProbe::signature)
//!   name_len  u32  (≤ 64) + backend name bytes (must parse)
//!   block     u64  (1..=2²⁰)
//!   trials    u32  (≤ 10⁶)
//!   secs/step f64 bits (finite, > 0)
//!   gb/s      f64 bits (finite, ≥ 0)
//! ```

use crate::App;
use std::io;
use ump_core::Backend;

/// Store file magic.
pub const TUNE_STORE_MAGIC: [u8; 4] = *b"UMPT";
/// Store format version.
pub const TUNE_STORE_VERSION: u32 = 1;
/// Plausibility cap on entry count — a tuning store indexes (app, mesh)
/// pairs, not a database.
const MAX_ENTRIES: usize = 4096;
/// Backend names are short CLI words.
const MAX_NAME: usize = 64;

/// What a tuning decision is keyed by. A store entry is only reused
/// when *all four* coordinates match: same app, same mesh dims, same
/// registered backend set (a registry change invalidates old picks),
/// same host signature (a different machine re-tunes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TuneKey {
    /// Application.
    pub app: App,
    /// Mesh x dimension.
    pub nx: u64,
    /// Mesh y dimension.
    pub ny: u64,
    /// [`registry_hash`] at write time.
    pub registry: u64,
    /// [`HostProbe::signature`](crate::HostProbe::signature) at write
    /// time.
    pub host_sig: u64,
}

/// One persisted decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TuneEntry {
    /// The lookup key.
    pub key: TuneKey,
    /// The winning registered backend.
    pub backend: Backend,
    /// The winning block size.
    pub block_size: usize,
    /// How many measured trials produced this decision.
    pub trials: u32,
    /// Measured wall seconds per timestep of the winner.
    pub seconds_per_step: f64,
    /// Measured useful bandwidth of the winner, GB/s.
    pub gb_per_s: f64,
}

/// The in-memory store: a small keyed set of [`TuneEntry`]s with a
/// binary codec.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneStore {
    entries: Vec<TuneEntry>,
}

/// FNV-1a over the registered backend names, in registry order — the
/// store key component that invalidates decisions when the backend set
/// itself changes.
pub fn registry_hash() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in Backend::all() {
        for byte in b.name().as_bytes() {
            h ^= *byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= b'\n' as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn read_exact<'a>(bytes: &mut &'a [u8], n: usize, what: &str) -> io::Result<&'a [u8]> {
    if bytes.len() < n {
        return Err(bad(format!(
            "tune store truncated reading {what}: need {n}, have {}",
            bytes.len()
        )));
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Ok(head)
}

fn read_u32(bytes: &mut &[u8], what: &str) -> io::Result<u32> {
    let b = read_exact(bytes, 4, what)?;
    Ok(u32::from_le_bytes(b.try_into().unwrap()))
}

fn read_u64(bytes: &mut &[u8], what: &str) -> io::Result<u64> {
    let b = read_exact(bytes, 8, what)?;
    Ok(u64::from_le_bytes(b.try_into().unwrap()))
}

fn read_f64(bytes: &mut &[u8], what: &str) -> io::Result<f64> {
    Ok(f64::from_bits(read_u64(bytes, what)?))
}

impl TuneStore {
    /// Empty store.
    pub fn new() -> TuneStore {
        TuneStore::default()
    }

    /// Number of persisted decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No decisions yet?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Find the decision for a key, if any.
    pub fn lookup(&self, key: &TuneKey) -> Option<&TuneEntry> {
        self.entries.iter().find(|e| e.key == *key)
    }

    /// Insert or replace the decision for `entry.key`.
    pub fn upsert(&mut self, entry: TuneEntry) {
        if let Some(slot) = self.entries.iter_mut().find(|e| e.key == entry.key) {
            *slot = entry;
        } else {
            self.entries.push(entry);
        }
    }

    /// Encode to the UMPT v1 byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.entries.len() * 80);
        out.extend_from_slice(&TUNE_STORE_MAGIC);
        out.extend_from_slice(&TUNE_STORE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for e in &self.entries {
            out.push(e.key.app.tag());
            out.extend_from_slice(&e.key.nx.to_le_bytes());
            out.extend_from_slice(&e.key.ny.to_le_bytes());
            out.extend_from_slice(&e.key.registry.to_le_bytes());
            out.extend_from_slice(&e.key.host_sig.to_le_bytes());
            let name = e.backend.name();
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(e.block_size as u64).to_le_bytes());
            out.extend_from_slice(&e.trials.to_le_bytes());
            out.extend_from_slice(&e.seconds_per_step.to_bits().to_le_bytes());
            out.extend_from_slice(&e.gb_per_s.to_bits().to_le_bytes());
        }
        out
    }

    /// Decode and validate UMPT bytes. Every violation — bad magic,
    /// future version, truncation, unregistered backend name,
    /// implausible counts or non-finite rates — is a typed
    /// [`io::Error`]; this function must never panic on hostile input.
    pub fn decode(mut bytes: &[u8]) -> io::Result<TuneStore> {
        let bytes = &mut bytes;
        let magic = read_exact(bytes, 4, "magic")?;
        if magic != TUNE_STORE_MAGIC {
            return Err(bad(format!("bad tune store magic {magic:?}")));
        }
        let version = read_u32(bytes, "version")?;
        if version != TUNE_STORE_VERSION {
            return Err(bad(format!(
                "tune store version {version} (supported: {TUNE_STORE_VERSION})"
            )));
        }
        let nentries = read_u32(bytes, "entry count")? as usize;
        if nentries > MAX_ENTRIES {
            return Err(bad(format!("implausible entry count {nentries}")));
        }
        let mut entries = Vec::with_capacity(nentries);
        for i in 0..nentries {
            let tag = read_exact(bytes, 1, "app tag")?[0];
            let app =
                App::from_tag(tag).ok_or_else(|| bad(format!("entry {i}: bad app tag {tag}")))?;
            let nx = read_u64(bytes, "nx")?;
            let ny = read_u64(bytes, "ny")?;
            let registry = read_u64(bytes, "registry hash")?;
            let host_sig = read_u64(bytes, "host signature")?;
            let name_len = read_u32(bytes, "backend name length")? as usize;
            if name_len == 0 || name_len > MAX_NAME {
                return Err(bad(format!("entry {i}: backend name length {name_len}")));
            }
            let name_bytes = read_exact(bytes, name_len, "backend name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| bad(format!("entry {i}: backend name is not UTF-8")))?;
            let backend = Backend::parse(name)
                .ok_or_else(|| bad(format!("entry {i}: unregistered backend {name:?}")))?;
            let block = read_u64(bytes, "block size")?;
            if block == 0 || block > 1 << 20 {
                return Err(bad(format!("entry {i}: block size {block}")));
            }
            let trials = read_u32(bytes, "trial count")?;
            if trials > 1_000_000 {
                return Err(bad(format!("entry {i}: implausible trial count {trials}")));
            }
            let seconds_per_step = read_f64(bytes, "seconds per step")?;
            if !seconds_per_step.is_finite() || seconds_per_step <= 0.0 {
                return Err(bad(format!(
                    "entry {i}: seconds/step {seconds_per_step} not a positive finite number"
                )));
            }
            let gb_per_s = read_f64(bytes, "GB/s")?;
            if !gb_per_s.is_finite() || gb_per_s < 0.0 {
                return Err(bad(format!("entry {i}: GB/s {gb_per_s} invalid")));
            }
            entries.push(TuneEntry {
                key: TuneKey {
                    app,
                    nx,
                    ny,
                    registry,
                    host_sig,
                },
                backend,
                block_size: block as usize,
                trials,
                seconds_per_step,
                gb_per_s,
            });
        }
        if !bytes.is_empty() {
            return Err(bad(format!(
                "{} trailing bytes after last tune entry",
                bytes.len()
            )));
        }
        Ok(TuneStore { entries })
    }

    /// Load from a file; `NotFound` bubbles up as the normal cold-start
    /// signal, corrupt contents as `InvalidData`.
    pub fn load(path: &std::path::Path) -> io::Result<TuneStore> {
        TuneStore::decode(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneStore {
        let mut s = TuneStore::new();
        s.upsert(TuneEntry {
            key: TuneKey {
                app: App::Airfoil,
                nx: 48,
                ny: 24,
                registry: registry_hash(),
                host_sig: 0x1234,
            },
            backend: Backend::Threaded,
            block_size: 256,
            trials: 5,
            seconds_per_step: 1.25e-3,
            gb_per_s: 12.5,
        });
        s.upsert(TuneEntry {
            key: TuneKey {
                app: App::Volna,
                nx: 20,
                ny: 14,
                registry: registry_hash(),
                host_sig: 0x1234,
            },
            backend: Backend::FusedSimd { lanes: 4 },
            block_size: 1024,
            trials: 6,
            seconds_per_step: 8.0e-4,
            gb_per_s: 20.0,
        });
        s
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let s = sample();
        let bytes = s.encode();
        let back = TuneStore::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn upsert_replaces_same_key() {
        let mut s = sample();
        let mut e = *s.lookup(&sample().entries[0].key).unwrap();
        e.backend = Backend::Seq;
        s.upsert(e);
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup(&e.key).unwrap().backend, Backend::Seq);
    }

    #[test]
    fn hostile_headers_are_typed_errors() {
        assert!(TuneStore::decode(&[]).is_err());
        assert!(TuneStore::decode(b"UMPX\x01\x00\x00\x00\x00\x00\x00\x00").is_err());
        let mut bytes = sample().encode();
        bytes[4] = bytes[4].wrapping_add(1); // version low byte
        assert!(TuneStore::decode(&bytes).is_err());
    }

    #[test]
    fn unregistered_backend_name_is_rejected() {
        let mut s = sample();
        let bytes = s.encode();
        // corrupt the backend-name bytes of the first entry in place:
        // "threaded" starts after 12 (header) + 1 + 8*4 (key) + 4 (len)
        let name_at = 12 + 1 + 32 + 4;
        let mut corrupt = bytes.clone();
        corrupt[name_at] = b'z';
        assert!(TuneStore::decode(&corrupt).is_err());
        s.entries.clear();
        assert!(TuneStore::decode(&s.encode()).unwrap().is_empty());
    }

    #[test]
    fn registry_hash_is_order_sensitive_and_stable() {
        assert_eq!(registry_hash(), registry_hash());
        assert_ne!(registry_hash(), 0);
    }
}
