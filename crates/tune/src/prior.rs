//! The archsim prior: rank candidates with the roofline-plus-latency
//! model before spending any wall-clock time on trials.

use crate::candidates::Candidate;
use crate::App;
use ump_archsim::{predict, Backend as ModelBackend, KernelWork, Machine};
use ump_color::{PlanInputs, PlanStats, TwoLevelPlan};
use ump_core::Backend;
use ump_mesh::Mesh2d;

/// Mesh facts the per-kernel work derivation needs: set sizes plus the
/// measured plan statistics of the indirect-increment loops.
#[derive(Clone, Copy, Debug)]
pub struct MeshShape {
    /// Cell count.
    pub cells: usize,
    /// Interior-edge count.
    pub edges: usize,
    /// Boundary-edge count.
    pub bedges: usize,
    /// Cache-block reuse factor from the real two-level plan.
    pub reuse: f64,
    /// Colored-increment serialization depth from the real plan.
    pub serialization: u32,
}

impl MeshShape {
    /// Measure a mesh: set sizes directly, locality from a real
    /// two-level plan over `edge→cell` (the same statistics the bench
    /// harness feeds the model).
    pub fn of(mesh: &Mesh2d, block_size: usize) -> MeshShape {
        let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], block_size);
        let plan = TwoLevelPlan::build(&inputs);
        let stats = PlanStats::of_two_level(&plan, &[&mesh.edge2cell], 4);
        MeshShape {
            cells: mesh.n_cells(),
            edges: mesh.n_edges(),
            bedges: mesh.n_bedges(),
            reuse: stats.reuse_factor,
            serialization: stats.max_elem_colors.max(1),
        }
    }

    /// Iteration-set size by name.
    pub fn set_size(&self, set: &str) -> usize {
        match set {
            "cells" => self.cells,
            "edges" => self.edges,
            _ => self.bedges,
        }
    }
}

/// Build the model input for one kernel (mirrors the bench harness's
/// derivation: one i32 map word per indirect argument, `bres_calc` is
/// the canonical unvectorizable kernel, plan statistics apply only to
/// indirect loops).
pub fn work_for(app: App, kernel: &str, shape: &MeshShape) -> KernelWork {
    let profile = app.profile(kernel);
    let t = profile.transfers();
    let n_elems = shape.set_size(&profile.set);
    let map_words = profile.args.iter().filter(|a| a.is_indirect()).count();
    let vectorizable = profile.name != "bres_calc";
    let indirect = t.indirect_read + t.indirect_write > 0;
    KernelWork {
        n_elems,
        word_bytes: 8,
        reuse: if indirect { shape.reuse } else { 1.0 },
        serialization: if t.indirect_write > 0 {
            shape.serialization
        } else {
            1
        },
        map_words,
        vectorizable,
        profile,
    }
}

/// The model analogue of a registry backend, plus how far the shape
/// falls short of the model's whole-machine assumption: `predict`
/// prices every backend as if it owned all cores, so single-threaded
/// shapes are charged `cores / ranks-or-1` on top.
fn analogue(b: Backend) -> ModelBackend {
    match b {
        Backend::Seq | Backend::MpiFused => ModelBackend::ScalarMpi,
        Backend::Threaded | Backend::Fused | Backend::Tiled => ModelBackend::ScalarThreaded,
        Backend::Simd { .. } | Backend::MpiFusedSimd { .. } => ModelBackend::VecMpi,
        Backend::SimdThreaded { .. } | Backend::FusedSimd { .. } | Backend::TiledSimd { .. } => {
            ModelBackend::VecThreaded
        }
        Backend::SimdScheme { .. } => ModelBackend::AutoVec,
        Backend::Simt | Backend::FusedSimt => ModelBackend::OpenCl,
    }
}

/// Predicted seconds for one whole timestep of `app` under `cand` on
/// `machine` — the prior score (lower is better).
pub fn score(machine: &Machine, cand: &Candidate, app: App, shape: &MeshShape) -> f64 {
    let model_backend = analogue(cand.backend);
    // whole-machine model vs what the shape can actually occupy
    let occupancy = if cand.backend.needs_pool() {
        // a worker team on a single-core host oversubscribes it: the
        // workers time-slice one core and pay barrier and context-switch
        // churn the whole-machine model never sees — charge pooled
        // shapes double there so the prior ranks the pool-free shapes
        // (seq, whole-set SIMD) first
        if machine.cores <= 1 {
            2.0
        } else {
            1.0
        }
    } else {
        (machine.cores as f64 / cand.backend.ranks() as f64).max(1.0)
    };
    let mut seconds = 0.0;
    for (kernel, _set, calls) in app.kernels() {
        let w = work_for(app, kernel, shape);
        seconds += predict(machine, model_backend, &w).seconds * calls * occupancy;
    }
    if cand.backend.is_fused() {
        // fusion's first-order win is eliding per-loop launches: credit
        // roughly half the merged launches (the chains keep ~2 groups)
        let merged = (app.kernels().len() as f64 - 2.0).max(0.0);
        seconds = (seconds - merged * machine.launch_us * 1e-6 * 0.5).max(seconds * 0.5);
    }
    seconds
}

/// Rank candidates by prior score ascending and keep the best `top_k`.
/// Ties and model blind spots are what the measured trials are for.
pub fn rank(
    machine: &Machine,
    cands: &[Candidate],
    app: App,
    shape: &MeshShape,
    top_k: usize,
) -> Vec<Candidate> {
    let mut scored: Vec<(f64, Candidate)> = cands
        .iter()
        .map(|c| (score(machine, c, app, shape), *c))
        .collect();
    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
    scored
        .into_iter()
        .take(top_k.max(1))
        .map(|(_, c)| c)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::enumerate;
    use ump_archsim::machines;
    use ump_mesh::generators::quad_channel;

    #[test]
    fn prior_prefers_parallel_shapes_on_a_parallel_machine() {
        let mesh = quad_channel(48, 24).mesh;
        let shape = MeshShape::of(&mesh, 256);
        assert!(shape.reuse > 1.0 && shape.serialization >= 2);
        let m = machines::host(16, 60.0);
        let cands = enumerate(4);
        let seq = cands.iter().find(|c| c.backend == Backend::Seq).unwrap();
        let thr = cands
            .iter()
            .find(|c| c.backend == Backend::Threaded)
            .unwrap();
        assert!(
            score(&m, thr, App::Airfoil, &shape) < score(&m, seq, App::Airfoil, &shape),
            "threaded should beat seq on a 16-core model"
        );
        let top = rank(&m, &cands, App::Airfoil, &shape, 5);
        assert_eq!(top.len(), 5);
        assert!(top.iter().all(|c| Backend::all().contains(&c.backend)));
        assert!(
            !top.iter().any(|c| c.backend == Backend::Seq),
            "seq must not survive top-5 pruning on a 16-core model"
        );
    }

    #[test]
    fn prior_prefers_pool_free_shapes_on_a_single_core_host() {
        let mesh = quad_channel(48, 24).mesh;
        let shape = MeshShape::of(&mesh, 256);
        let m = machines::host(1, 8.0);
        let cands = enumerate(4);
        for app in [App::Airfoil, App::Volna] {
            // pairwise: each pooled shape must lose to its pool-free
            // analogue when there is only one core to share
            for (free, pooled) in [
                (Backend::Seq, Backend::Threaded),
                (Backend::Seq, Backend::Fused),
                (
                    Backend::Simd { lanes: 4 },
                    Backend::SimdThreaded { lanes: 4 },
                ),
                (Backend::Simd { lanes: 4 }, Backend::FusedSimd { lanes: 4 }),
            ] {
                let f = cands.iter().find(|c| c.backend == free).unwrap();
                let p = cands.iter().find(|c| c.backend == pooled).unwrap();
                assert!(
                    score(&m, f, app, &shape) < score(&m, p, app, &shape),
                    "{} must outrank {} on a 1-core host ({app:?})",
                    free.name(),
                    pooled.name()
                );
            }
            // and the overall winner must not need the pool at all
            let top = rank(&m, &cands, app, &shape, 1);
            assert!(
                !top[0].backend.needs_pool(),
                "1-core prior picked pooled {} for {app:?}",
                top[0].backend.name()
            );
        }
    }

    #[test]
    fn every_candidate_scores_finite() {
        let mesh = quad_channel(20, 14).mesh;
        let shape = MeshShape::of(&mesh, 256);
        let m = machines::host(1, 8.0);
        for app in [App::Airfoil, App::Volna] {
            for c in enumerate(2) {
                let s = score(&m, &c, app, &shape);
                assert!(s.is_finite() && s > 0.0, "{:?} scored {s}", c.backend);
            }
        }
    }
}
