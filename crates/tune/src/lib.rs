//! # ump-tune — self-tuning backend selection
//!
//! The paper's core finding (§6.6) is that the winning execution shape
//! flips with kernel, mesh, and machine: direct kernels are
//! bandwidth-bound everywhere, `res_calc`-class indirect kernels trade
//! gather efficiency against scatter serialization, and latency-bound
//! boundary loops punish per-loop launch overhead. With 17 registered
//! [`Backend`]s, hand-picking one per app per host is exactly the
//! burden the OP2-lineage runtimes exist to remove.
//!
//! This crate closes the loop from *model* to *measurement* to
//! *persisted decision*:
//!
//! 1. **Candidate space + prior** ([`candidates`], [`prior`]): the
//!    `(backend, block_size, lanes, team)` cross product is enumerated
//!    from registry capability flags, each candidate is scored with
//!    `ump_archsim::predict` on a [`Machine`](ump_archsim::Machine)
//!    auto-calibrated from the host (a tiny STREAM-triad probe,
//!    [`probe::HostProbe`]), and only the top-K prior candidates
//!    survive.
//! 2. **Measured trials** ([`tuner`]): each survivor runs a few real
//!    timesteps through the registry's `step_on` dispatcher on the
//!    actual mesh, scored by wall seconds/step with per-kernel
//!    [`LoopStats`](ump_core::LoopStats) granularity (the fused paths
//!    attribute group time back to member loops).
//! 3. **Persistent store** ([`store`]): decisions land in a versioned
//!    little-endian `UMPT` file keyed by `(app, mesh dims, backend-set
//!    hash, host signature)`, so a warm start skips both planning and
//!    search. Corrupt or version-mismatched stores degrade to a fresh
//!    search — a typed [`Err`](std::io::Error), never a panic.
//!
//! `auto` is deliberately an *entry point*, not an 18th registry
//! variant: [`Tuner::pick`] always returns a concrete registered
//! [`Backend`], so checkpoints, job specs, and conformance tests keep
//! their closed-world guarantees.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod candidates;
pub mod prior;
pub mod probe;
pub mod store;
pub mod tuner;

pub use candidates::{enumerate, Candidate};
pub use probe::HostProbe;
pub use store::{
    registry_hash, TuneEntry, TuneKey, TuneStore, TUNE_STORE_MAGIC, TUNE_STORE_VERSION,
};
pub use tuner::{step_auto_airfoil_on, step_auto_volna_on, Choice, Tuner, TunerStats};

use ump_core::Backend;

/// The two applications the tuner knows how to drive; mirrors
/// `ump_serve::App` without depending on the service layer (serve
/// depends on tune, not the other way around).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum App {
    /// The 2D Euler airfoil benchmark (5 kernels).
    Airfoil,
    /// The Volna shallow-water solver (7 kernels).
    Volna,
}

impl App {
    /// Stable lowercase name (store encoding uses the tag, not this).
    pub fn name(self) -> &'static str {
        match self {
            App::Airfoil => "airfoil",
            App::Volna => "volna",
        }
    }

    /// Parse from [`name`](App::name).
    pub fn parse(s: &str) -> Option<App> {
        match s {
            "airfoil" => Some(App::Airfoil),
            "volna" => Some(App::Volna),
            _ => None,
        }
    }

    /// One-byte store tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            App::Airfoil => 0,
            App::Volna => 1,
        }
    }

    /// Inverse of [`tag`](App::tag).
    pub(crate) fn from_tag(t: u8) -> Option<App> {
        match t {
            0 => Some(App::Airfoil),
            1 => Some(App::Volna),
            _ => None,
        }
    }

    /// The per-timestep kernel table `(kernel, set, calls_per_step)` —
    /// the same bookkeeping the `repro` harness uses for Tables V–VIII.
    pub fn kernels(self) -> &'static [(&'static str, &'static str, f64)] {
        match self {
            App::Airfoil => &[
                ("save_soln", "cells", 1.0),
                ("adt_calc", "cells", 2.0),
                ("res_calc", "edges", 2.0),
                ("bres_calc", "bedges", 2.0),
                ("update", "cells", 2.0),
            ],
            App::Volna => &[
                ("sim_1", "cells", 1.0),
                ("compute_flux", "edges", 2.0),
                ("numerical_flux", "edges", 1.0),
                ("space_disc", "edges", 2.0),
                ("bc_flux", "bedges", 2.0),
                ("RK_1", "cells", 1.0),
                ("RK_2", "cells", 1.0),
            ],
        }
    }

    /// Look up this app's [`LoopProfile`](ump_core::LoopProfile) by
    /// kernel name.
    pub fn profile(self, kernel: &str) -> ump_core::LoopProfile {
        match self {
            App::Airfoil => ump_apps::airfoil::profile(kernel),
            App::Volna => ump_apps::volna::profile(kernel),
        }
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Assert a backend came out of the registry — every tuner decision
/// must be expressible as a plain registered [`Backend`].
pub fn is_registered(b: Backend) -> bool {
    Backend::all().contains(&b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_round_trip() {
        for app in [App::Airfoil, App::Volna] {
            assert_eq!(App::parse(app.name()), Some(app));
            assert_eq!(App::from_tag(app.tag()), Some(app));
        }
        assert_eq!(App::parse("cfd"), None);
        assert_eq!(App::from_tag(9), None);
    }

    #[test]
    fn kernel_tables_name_real_profiles() {
        for app in [App::Airfoil, App::Volna] {
            for (kernel, set, calls) in app.kernels() {
                let p = app.profile(kernel);
                assert_eq!(p.set, *set, "{app}/{kernel} set mismatch");
                assert!(*calls >= 1.0);
            }
        }
    }
}
