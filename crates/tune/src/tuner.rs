//! The tuner: prior-pruned measured trials behind a persistent store.

use crate::candidates::{enumerate, Candidate};
use crate::prior::{rank, MeshShape};
use crate::probe::HostProbe;
use crate::store::{registry_hash, TuneEntry, TuneKey, TuneStore};
use crate::App;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;
use ump_apps::{airfoil, volna};
use ump_archsim::{machines, Machine};
use ump_core::{Backend, ExecPool, PlanCache, Recorder};

/// A tuning decision: always a concrete registered [`Backend`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Choice {
    /// The selected backend.
    pub backend: Backend,
    /// The selected block size.
    pub block_size: usize,
    /// Measured trials run to make this decision (0 on a store hit).
    pub trials: u32,
    /// Did the decision come straight from the persistent store?
    pub from_store: bool,
    /// Measured wall seconds per timestep of the winner.
    pub seconds_per_step: f64,
    /// Measured useful bandwidth of the winner, GB/s (per-kernel
    /// [`LoopStats`](ump_core::LoopStats) sum; the fused paths report
    /// through the per-member attribution).
    pub gb_per_s: f64,
}

/// Counters a service layer can surface.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Total `pick` calls.
    pub picks: u64,
    /// Picks answered from the store with zero trials.
    pub store_hits: u64,
    /// Picks that had to search.
    pub store_misses: u64,
    /// Measured trials run across all searches.
    pub trials_run: u64,
}

/// The self-tuning backend selector. Construction probes the host (or
/// takes a fixed probe for determinism); `pick` answers from the store
/// when it can and otherwise runs a prior-pruned trial search.
pub struct Tuner {
    probe: HostProbe,
    machine: Machine,
    top_k: usize,
    trial_steps: u64,
    team: usize,
    store_path: Option<PathBuf>,
    store: Mutex<TuneStore>,
    pool: OnceLock<ExecPool>,
    picks: AtomicU64,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    trials_run: AtomicU64,
}

impl Default for Tuner {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Tuner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tuner")
            .field("probe", &self.probe)
            .field("top_k", &self.top_k)
            .field("trial_steps", &self.trial_steps)
            .field("team", &self.team)
            .field("store_path", &self.store_path)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Tuner {
    /// Probe the live host; no persistence.
    pub fn new() -> Tuner {
        Self::with_probe(HostProbe::measure())
    }

    /// Build from a known probe (tests, replays): no bandwidth
    /// measurement happens, so construction is deterministic and
    /// instant.
    pub fn with_probe(probe: HostProbe) -> Tuner {
        let machine = machines::host(probe.cores, probe.stream_gbs);
        Tuner {
            probe,
            machine,
            top_k: 6,
            trial_steps: 2,
            team: probe.cores.clamp(1, 8),
            store_path: None,
            store: Mutex::new(TuneStore::new()),
            pool: OnceLock::new(),
            picks: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_misses: AtomicU64::new(0),
            trials_run: AtomicU64::new(0),
        }
    }

    /// Persist decisions to (and warm-start from) a UMPT file. A
    /// missing, corrupt, or version-mismatched file degrades to an
    /// empty store — cold search, never a panic.
    pub fn with_store_path(mut self, path: impl Into<PathBuf>) -> Tuner {
        let path = path.into();
        if let Ok(loaded) = TuneStore::load(&path) {
            *self.store.lock().unwrap() = loaded;
        }
        self.store_path = Some(path);
        self
    }

    /// Seed the store directly (tests; service layers that manage their
    /// own persistence).
    pub fn with_store(self, store: TuneStore) -> Tuner {
        *self.store.lock().unwrap() = store;
        self
    }

    /// Prior survivors measured per search (default 6).
    pub fn with_top_k(mut self, k: usize) -> Tuner {
        self.top_k = k.max(1);
        self
    }

    /// Timed steps per trial after the one planning warm-up step
    /// (default 2).
    pub fn with_trial_steps(mut self, steps: u64) -> Tuner {
        self.trial_steps = steps.max(1);
        self
    }

    /// Worker-team size used for pooled trial backends (default:
    /// probed cores, capped at 8).
    pub fn with_team(mut self, team: usize) -> Tuner {
        self.team = team.max(1);
        self
    }

    /// The probe this tuner was calibrated from.
    pub fn probe(&self) -> HostProbe {
        self.probe
    }

    /// The auto-calibrated machine model backing the prior.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TunerStats {
        TunerStats {
            picks: self.picks.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_misses: self.store_misses.load(Ordering::Relaxed),
            trials_run: self.trials_run.load(Ordering::Relaxed),
        }
    }

    /// Current store contents (cloned).
    pub fn store(&self) -> TuneStore {
        self.store.lock().unwrap().clone()
    }

    /// The trial pool (created lazily; shared with the `step_auto`
    /// convenience drivers).
    pub fn pool(&self) -> &ExecPool {
        self.pool.get_or_init(|| ExecPool::new(self.team))
    }

    fn key(&self, app: App, nx: usize, ny: usize) -> TuneKey {
        TuneKey {
            app,
            nx: nx as u64,
            ny: ny as u64,
            registry: registry_hash(),
            host_sig: self.probe.signature(),
        }
    }

    /// Decide the backend for `(app, nx, ny)`: a pure store lookup on a
    /// warm start (zero trials, zero planning), otherwise an archsim
    /// prior-pruned measured search whose result is persisted.
    pub fn pick(&self, app: App, nx: usize, ny: usize) -> Choice {
        self.picks.fetch_add(1, Ordering::Relaxed);
        let key = self.key(app, nx, ny);
        if let Some(e) = self.store.lock().unwrap().lookup(&key) {
            self.store_hits.fetch_add(1, Ordering::Relaxed);
            return Choice {
                backend: e.backend,
                block_size: e.block_size,
                trials: 0,
                from_store: true,
                seconds_per_step: e.seconds_per_step,
                gb_per_s: e.gb_per_s,
            };
        }
        self.store_misses.fetch_add(1, Ordering::Relaxed);
        let choice = self.search(app, nx, ny);
        self.trials_run
            .fetch_add(choice.trials as u64, Ordering::Relaxed);
        let mut store = self.store.lock().unwrap();
        store.upsert(TuneEntry {
            key,
            backend: choice.backend,
            block_size: choice.block_size,
            trials: choice.trials,
            seconds_per_step: choice.seconds_per_step.max(f64::MIN_POSITIVE),
            gb_per_s: choice.gb_per_s.max(0.0),
        });
        if let Some(path) = &self.store_path {
            // best-effort persistence: an unwritable store costs a
            // re-search next process, nothing else
            let _ = std::fs::write(path, store.encode());
        }
        choice
    }

    /// Prior-pruned candidates for `(app, shape)` — exposed for the
    /// bench harness to report what survived.
    pub fn shortlist(&self, app: App, shape: &MeshShape) -> Vec<Candidate> {
        rank(&self.machine, &enumerate(self.team), app, shape, self.top_k)
    }

    fn search(&self, app: App, nx: usize, ny: usize) -> Choice {
        match app {
            App::Airfoil => {
                let pristine = ump_apps::airfoil::Airfoil::<f64>::seeded(nx, ny, 0);
                let shape = MeshShape::of(&pristine.case.mesh, 256);
                self.run_trials(app, &shape, |cand, rec| {
                    let mut sim = pristine.clone();
                    let pool = self.pool();
                    let cache = PlanCache::new();
                    airfoil::drivers::step_on(
                        cand.backend,
                        &mut sim,
                        pool,
                        &cache,
                        0,
                        cand.block_size,
                        None,
                    );
                    let t0 = Instant::now();
                    for _ in 0..self.trial_steps {
                        airfoil::drivers::step_on(
                            cand.backend,
                            &mut sim,
                            pool,
                            &cache,
                            0,
                            cand.block_size,
                            Some(rec),
                        );
                    }
                    t0.elapsed().as_secs_f64() / self.trial_steps as f64
                })
            }
            App::Volna => {
                let pristine = ump_apps::volna::Volna::<f64>::seeded(nx, ny, 0);
                let shape = MeshShape::of(&pristine.case.mesh, 256);
                self.run_trials(app, &shape, |cand, rec| {
                    let mut sim = pristine.clone();
                    let pool = self.pool();
                    let cache = PlanCache::new();
                    volna::drivers::step_on(
                        cand.backend,
                        &mut sim,
                        pool,
                        &cache,
                        0,
                        cand.block_size,
                        None,
                    );
                    let t0 = Instant::now();
                    for _ in 0..self.trial_steps {
                        volna::drivers::step_on(
                            cand.backend,
                            &mut sim,
                            pool,
                            &cache,
                            0,
                            cand.block_size,
                            Some(rec),
                        );
                    }
                    t0.elapsed().as_secs_f64() / self.trial_steps as f64
                })
            }
        }
    }

    /// Run one warmed, timed trial per shortlisted candidate and keep
    /// the measured-best. `run` returns wall seconds/step; per-kernel
    /// rates come from the recorder it fills.
    fn run_trials<F>(&self, app: App, shape: &MeshShape, mut run: F) -> Choice
    where
        F: FnMut(&Candidate, &Recorder) -> f64,
    {
        let shortlist = self.shortlist(app, shape);
        let mut best: Option<Choice> = None;
        let mut trials = 0u32;
        for cand in &shortlist {
            let rec = Recorder::new();
            let secs = run(cand, &rec);
            trials += 1;
            let gb = useful_gb_per_s(app, &rec);
            if best.as_ref().is_none_or(|b| secs < b.seconds_per_step) {
                best = Some(Choice {
                    backend: cand.backend,
                    block_size: cand.block_size,
                    trials: 0,
                    from_store: false,
                    seconds_per_step: secs,
                    gb_per_s: gb,
                });
            }
        }
        let mut choice = best.expect("shortlist is never empty (top_k >= 1)");
        choice.trials = trials;
        choice
    }
}

/// Sum the app's per-kernel [`LoopStats`](ump_core::LoopStats) into one
/// useful-bandwidth figure (GB/s). With the fused paths attributing
/// group time back to member loops, this works identically across
/// every registered shape.
fn useful_gb_per_s(app: App, rec: &Recorder) -> f64 {
    let mut bytes = 0.0;
    let mut seconds = 0.0;
    for (kernel, _, _) in app.kernels() {
        if let Some(s) = rec.get(kernel) {
            bytes += s.bytes;
            seconds += s.seconds;
        }
    }
    if seconds > 0.0 {
        bytes / seconds / 1e9
    } else {
        0.0
    }
}

/// One auto-tuned Airfoil timestep on an explicit pool: pick (store
/// hit after the first call), then dispatch through the registry's
/// `step_on`. `nx`/`ny` must be the dims `sim` was built with — the
/// sim does not carry them.
pub fn step_auto_airfoil_on(
    tuner: &Tuner,
    sim: &mut ump_apps::airfoil::Airfoil<f64>,
    nx: usize,
    ny: usize,
    pool: &ExecPool,
    cache: &PlanCache,
    rec: Option<&Recorder>,
) -> f64 {
    let c = tuner.pick(App::Airfoil, nx, ny);
    airfoil::drivers::step_on(c.backend, sim, pool, cache, 0, c.block_size, rec)
}

/// One auto-tuned Volna timestep on an explicit pool (see
/// [`step_auto_airfoil_on`]).
pub fn step_auto_volna_on(
    tuner: &Tuner,
    sim: &mut ump_apps::volna::Volna<f64>,
    nx: usize,
    ny: usize,
    pool: &ExecPool,
    cache: &PlanCache,
    rec: Option<&Recorder>,
) -> f64 {
    let c = tuner.pick(App::Volna, nx, ny);
    volna::drivers::step_on(c.backend, sim, pool, cache, 0, c.block_size, rec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_tuner() -> Tuner {
        Tuner::with_probe(HostProbe::fixed(2, 8.0))
            .with_top_k(2)
            .with_trial_steps(1)
            .with_team(2)
    }

    #[test]
    fn cold_pick_searches_then_warm_pick_hits_the_store() {
        let tuner = fast_tuner();
        let cold = tuner.pick(App::Airfoil, 12, 8);
        assert!(Backend::all().contains(&cold.backend));
        assert!(!cold.from_store);
        assert_eq!(cold.trials, 2, "top_k=2 means exactly two trials");
        assert!(cold.seconds_per_step > 0.0);

        let warm = tuner.pick(App::Airfoil, 12, 8);
        assert!(warm.from_store);
        assert_eq!(warm.trials, 0, "warm start must run zero trials");
        assert_eq!(warm.backend, cold.backend);
        assert_eq!(warm.block_size, cold.block_size);

        let stats = tuner.stats();
        assert_eq!(stats.picks, 2);
        assert_eq!(stats.store_hits, 1);
        assert_eq!(stats.store_misses, 1);
        assert_eq!(stats.trials_run, 2);
    }

    #[test]
    fn different_mesh_or_app_is_a_different_key() {
        let tuner = fast_tuner();
        tuner.pick(App::Airfoil, 12, 8);
        let c2 = tuner.pick(App::Airfoil, 16, 8);
        assert!(!c2.from_store, "different dims must re-search");
        let c3 = tuner.pick(App::Volna, 12, 8);
        assert!(!c3.from_store, "different app must re-search");
        assert_eq!(tuner.stats().store_misses, 3);
    }

    #[test]
    fn step_auto_matches_seq_bitwise_tolerance() {
        let tuner = fast_tuner();
        let pool = ExecPool::new(2);
        let cache = PlanCache::new();
        let mut auto = ump_apps::airfoil::Airfoil::<f64>::seeded(12, 8, 0);
        let mut refr = ump_apps::airfoil::Airfoil::<f64>::seeded(12, 8, 0);
        for _ in 0..3 {
            let a = step_auto_airfoil_on(&tuner, &mut auto, 12, 8, &pool, &cache, None);
            let s = airfoil::drivers::step_seq(&mut refr, None);
            assert!((a - s).abs() <= 1e-12, "rms diverged: {a} vs {s}");
        }
    }
}
