//! Host calibration probe: core count + a tiny STREAM-triad bandwidth
//! measurement, feeding `ump_archsim::machines::host`.

/// What the prior needs to know about the machine it is running on.
///
/// `measure()` runs a sub-100ms STREAM-style triad across all cores;
/// tests and deterministic callers use [`HostProbe::fixed`] instead,
/// since a measured probe varies run to run (the store key only folds
/// in a coarse bandwidth bucket for exactly that reason — see
/// [`signature`](HostProbe::signature)).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HostProbe {
    /// Available hardware parallelism.
    pub cores: usize,
    /// Measured aggregate triad bandwidth, GB/s.
    pub stream_gbs: f64,
}

/// Per-thread triad working set: 3 arrays × 2²⁰ doubles = 24 MB —
/// comfortably past last-level cache at any plausible core count.
const TRIAD_N: usize = 1 << 20;
/// Timed repetitions per thread (best-of, as STREAM itself reports).
const TRIAD_REPS: usize = 3;
/// Probe thread cap: past this the measurement saturates the memory
/// controller anyway and only the setup cost grows.
const MAX_PROBE_THREADS: usize = 16;

impl HostProbe {
    /// Construct from known values — the deterministic path for tests
    /// and for replaying a probe recorded elsewhere.
    pub fn fixed(cores: usize, stream_gbs: f64) -> HostProbe {
        HostProbe {
            cores: cores.max(1),
            stream_gbs: stream_gbs.max(0.1),
        }
    }

    /// Measure the live host: `available_parallelism` for the core
    /// count, and a parallel `a[i] = b[i] + s·c[i]` triad for the
    /// bandwidth roof (sum of per-thread best-rep rates).
    pub fn measure() -> HostProbe {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let threads = cores.min(MAX_PROBE_THREADS);
        let per_thread: Vec<f64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| scope.spawn(move || triad_gbs(t as u64)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        HostProbe {
            cores,
            stream_gbs: per_thread.iter().sum::<f64>().max(0.1),
        }
    }

    /// Coarse, stable identity of this host for the tuning-store key:
    /// FNV-1a over the core count and the bandwidth rounded to 16 GB/s
    /// buckets, so ordinary run-to-run probe noise maps to the same
    /// signature while a different machine (or container shape) does
    /// not.
    pub fn signature(&self) -> u64 {
        let bucket = (self.stream_gbs / 16.0).round() as u64;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for w in [self.cores as u64, bucket] {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

/// One thread's triad rate in GB/s (best of [`TRIAD_REPS`]).
fn triad_gbs(salt: u64) -> f64 {
    let mut a = vec![0.0f64; TRIAD_N];
    let b = vec![1.5f64 + salt as f64 * 1e-9; TRIAD_N];
    let c = vec![0.25f64; TRIAD_N];
    let mut best = 0.0f64;
    for rep in 0..TRIAD_REPS {
        let s = 1.0 + rep as f64 * 1e-12;
        let t0 = std::time::Instant::now();
        for i in 0..TRIAD_N {
            a[i] = b[i] + s * c[i];
        }
        let dt = t0.elapsed().as_secs_f64().max(1e-9);
        // three streams of 8-byte words per element
        best = best.max((3 * 8 * TRIAD_N) as f64 / dt / 1e9);
    }
    // keep the result observable so the loop is not dead code
    std::hint::black_box(a[TRIAD_N / 2]);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_probe_is_plausible() {
        let p = HostProbe::measure();
        assert!(p.cores >= 1);
        assert!(p.stream_gbs > 0.1, "triad rate {}", p.stream_gbs);
    }

    #[test]
    fn signature_is_stable_under_probe_noise() {
        let a = HostProbe::fixed(8, 40.0);
        let b = HostProbe::fixed(8, 43.0); // same 16 GB/s bucket
        let c = HostProbe::fixed(8, 80.0);
        let d = HostProbe::fixed(4, 40.0);
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature());
        assert_ne!(a.signature(), d.signature());
    }
}
