//! Cross-timestep sparse tiling: record N timesteps as one super-chain,
//! compute per-tile dependency cones through the indirection maps, and
//! sweep each tile through all N steps while its working set stays in
//! cache.
//!
//! Within-step fusion ([`Chain`](crate::chain::Chain)) removes dispatch
//! rounds but still re-streams every dat from memory once per timestep.
//! The OP2 sparse-tiling lineage goes further: partition the mesh into
//! *tiles*, grow each tile's footprint **backward** one halo layer per
//! dependence through the maps (the *dependency cone*), and execute each
//! tile through many loops — and many *steps* — before touching the next
//! tile. Fringe iterations shared by neighboring cones are computed
//! redundantly by every tile that needs them, which is what makes tiles
//! independent: no inter-tile synchronization inside an epoch.
//!
//! The pieces:
//!
//! * [`TiledChain`] — the recorder. Sets, maps and the *evolving* dats
//!   (anything some recorded loop writes) are registered up front; each
//!   loop is recorded with its [`LoopDesc`] and an element-level body
//!   that reaches evolving dats **only** through a [`TileCtx`] (the
//!   executor redirects those accesses into tile-private shadow
//!   storage). Read-only data (coordinates, geometry, maps) is captured
//!   by the bodies directly — it is never written, so tiles may share it.
//! * **Epochs** — the super-chain is cut at global-reduction
//!   synchronization points ([`global_barrier`]): a loop that consumes a
//!   global value produced earlier in the chain (Volna's CFL Δt) starts
//!   a new epoch, because every tile's partial must be merged before any
//!   tile may read the result. Airfoil's RMS is produced but never
//!   consumed in-chain, so its whole N-step super-chain is one epoch.
//! * [`TiledChain::schedule`] — the cone analysis. Ownership of every
//!   set is a contiguous, block-aligned partition into `n_tiles` ranges.
//!   Per epoch and tile, a backward walk over the loop descriptors
//!   computes the exact iteration subsets: a loop executes every
//!   iteration that writes a *needed* row; reads of evolving dats by
//!   those iterations become needed one loop earlier; a direct `Write`
//!   satisfies (removes) needs. What survives to the epoch start is the
//!   tile's copy-in footprint.
//! * [`TiledChain::execute`] — the executor. Two pool rounds per epoch:
//!   round 1 runs one task per tile (copy the footprint into a
//!   worker-recycled shadow, run the cone's iterations for every loop in
//!   ascending element order, stage owned rows into a per-tile out
//!   buffer); round 2 writes the staged rows back. The barrier between
//!   the rounds is what keeps copy-in reads (pre-epoch state) and
//!   owned-row write-back race-free. Loop epilogues (reduction merges)
//!   run after write-back, in recorded order.
//!
//! # Determinism
//!
//! Each tile executes its iterations in ascending element order, so for
//! every *owned* row the increment accumulation order equals the
//! sequential reference's — tiled element state is **bit-identical to
//! `step_seq`** for any tile size, step count, or team size. Reduction
//! contributions are only accumulated for owned iterations into
//! per-block partial slots (ownership is block-aligned, so each slot
//! belongs to exactly one tile), and the partials are folded in slot
//! order at the epoch barrier — the same ordered-fold discipline as the
//! fused and distributed paths, making reduction histories independent
//! of the tiling configuration.

use std::ops::Range;
use std::sync::Mutex;

use ump_core::{Access, ExecPool, FusionStats, Recorder, SharedDat};
use ump_mesh::{Csr, MapTable};

use crate::desc::{global_barrier, LoopDesc};

// ---------------------------------------------------------------------------
// row sets (dense bitsets over a set's elements)
// ---------------------------------------------------------------------------

/// Dense bitset over one set's elements — the working representation of
/// needed-row sets and executed-iteration sets during cone analysis.
#[derive(Clone)]
struct RowSet {
    words: Vec<u64>,
    n: usize,
}

impl RowSet {
    fn new(n: usize) -> RowSet {
        RowSet {
            words: vec![0; n.div_ceil(64)],
            n,
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        debug_assert!(i < self.n);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn insert_range(&mut self, r: Range<u32>) {
        for i in r {
            self.set(i as usize);
        }
    }

    fn or(&mut self, other: &RowSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    fn and_not(&mut self, other: &RowSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Maximal runs of consecutive set bits, ascending.
    fn runs(&self) -> Vec<Range<u32>> {
        let mut out = Vec::new();
        let mut open: Option<Range<u32>> = None;
        for i in self.iter() {
            let i = i as u32;
            match open.take() {
                Some(r) if r.end == i => open = Some(r.start..i + 1),
                Some(r) => {
                    out.push(r);
                    open = Some(i..i + 1);
                }
                None => open = Some(i..i + 1),
            }
        }
        if let Some(r) = open {
            out.push(r);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// recorder
// ---------------------------------------------------------------------------

/// Handle to a registered evolving dat — the key bodies pass to
/// [`TileCtx::dat`] / [`TileCtx::dat_mut`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatId(usize);

/// One resolved (non-global) argument of a recorded loop: which
/// registered dat it touches (if any — read-only dats are unregistered
/// and ignored by the cone walk), through which registered map, and how.
struct TArg {
    dat: Option<usize>,
    map: Option<usize>,
    access: Access,
}

struct TLoop<'a, T> {
    desc: LoopDesc,
    set: usize,
    step: usize,
    args: Vec<TArg>,
    // the loop reduces into a global: its owned iterations must always
    // execute (each tile contributes exactly its own partials), even
    // when no registered dat pulls them into the cone
    global_write: bool,
    #[allow(clippy::type_complexity)]
    body: Box<dyn Fn(&TileCtx<'_, T>, usize) + Sync + 'a>,
    #[allow(clippy::type_complexity)]
    run_body: Option<Box<dyn Fn(&TileCtx<'_, T>, usize, usize) + Sync + 'a>>,
    epilogue: Option<Box<dyn Fn() + Sync + 'a>>,
}

struct DatReg<'a, T> {
    name: String,
    set: usize,
    dim: usize,
    data: SharedDat<'a, T>,
}

/// The cross-timestep recorder: N timesteps of loops registered as one
/// super-chain over declared sets, maps, and evolving dats. See the
/// module docs for the execution model; `crates/apps` records both
/// applications through this (the `run_tiled[_on]` drivers), and the
/// property-test harness records synthetic integer chains to pin
/// bit-exactness.
pub struct TiledChain<'a, T: Copy + Default + Send + Sync> {
    name: String,
    sets: Vec<(String, usize)>,
    maps: Vec<&'a MapTable>,
    dats: Vec<DatReg<'a, T>>,
    loops: Vec<TLoop<'a, T>>,
    n_steps: usize,
}

impl<'a, T: Copy + Default + Send + Sync> TiledChain<'a, T> {
    /// New empty super-chain named `name` (the fusion-stats key under
    /// which [`execute`](TiledChain::execute) reports).
    pub fn new(name: impl Into<String>) -> TiledChain<'a, T> {
        TiledChain {
            name: name.into(),
            sets: Vec::new(),
            maps: Vec::new(),
            dats: Vec::new(),
            loops: Vec::new(),
            n_steps: 0,
        }
    }

    /// Declare an iteration set (`"cells"`, `"edges"`, …) of `n`
    /// elements. Every recorded loop's set must be declared first.
    pub fn register_set(&mut self, name: impl Into<String>, n: usize) {
        let name = name.into();
        assert!(
            self.sets.iter().all(|(s, _)| *s != name),
            "set '{name}' registered twice"
        );
        self.sets.push((name, n));
    }

    /// Declare an indirection map. Required for every map an evolving
    /// dat is reached through; maps used only for read-only data need
    /// not be registered.
    pub fn register_map(&mut self, map: &'a MapTable) {
        assert!(
            self.maps.iter().all(|m| m.name != map.name),
            "map '{}' registered twice",
            map.name
        );
        self.maps.push(map);
    }

    /// Declare an evolving dat (one some recorded loop writes) living on
    /// `set` with `dim` components per element, backed by `data` in AoS
    /// order. Bodies reach it only through the returned [`DatId`]; the
    /// executor redirects those accesses into tile-private shadows.
    pub fn register_dat(
        &mut self,
        name: impl Into<String>,
        set: &str,
        dim: usize,
        data: &'a mut [T],
    ) -> DatId {
        let name = name.into();
        let set_idx = self.set_index(set);
        assert_eq!(
            data.len(),
            self.sets[set_idx].1 * dim,
            "dat '{name}': storage is not set_size x dim"
        );
        assert!(
            self.dats.iter().all(|d| d.name != name),
            "dat '{name}' registered twice"
        );
        self.dats.push(DatReg {
            name,
            set: set_idx,
            dim,
            data: SharedDat::new(data),
        });
        DatId(self.dats.len() - 1)
    }

    /// Mark the start of the next recorded timestep (stats only — the
    /// cone analysis needs no step boundaries, but the cross-step
    /// traffic estimate groups loops by step).
    pub fn begin_step(&mut self) {
        self.n_steps += 1;
    }

    /// Timesteps recorded so far (at least 1 once a loop is recorded).
    pub fn steps(&self) -> usize {
        self.n_steps.max(1)
    }

    /// Loops recorded so far.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// `true` before the first recorded loop.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    fn set_index(&self, name: &str) -> usize {
        self.sets
            .iter()
            .position(|(s, _)| s == name)
            .unwrap_or_else(|| panic!("set '{name}' not registered"))
    }

    /// Record one loop: descriptor plus an element-level body
    /// `body(ctx, e)` that accesses evolving dats through `ctx` only.
    pub fn record(&mut self, desc: LoopDesc, body: impl Fn(&TileCtx<'_, T>, usize) + Sync + 'a) {
        self.push(desc, Box::new(body), None);
    }

    /// [`record`](TiledChain::record) with an additional vector run body
    /// `run_body(ctx, start, len)` covering the whole contiguous element
    /// run `[start, start + len)` — used instead of the scalar body when
    /// [`execute`](TiledChain::execute) runs with `lanes > 1` and the
    /// run is at least one vector wide. The run body owns its tail
    /// handling.
    pub fn record_vec(
        &mut self,
        desc: LoopDesc,
        body: impl Fn(&TileCtx<'_, T>, usize) + Sync + 'a,
        run_body: impl Fn(&TileCtx<'_, T>, usize, usize) + Sync + 'a,
    ) {
        self.push(desc, Box::new(body), Some(Box::new(run_body)));
    }

    #[allow(clippy::type_complexity)]
    fn push(
        &mut self,
        desc: LoopDesc,
        body: Box<dyn Fn(&TileCtx<'_, T>, usize) + Sync + 'a>,
        run_body: Option<Box<dyn Fn(&TileCtx<'_, T>, usize, usize) + Sync + 'a>>,
    ) {
        let set = self.set_index(&desc.profile.set);
        assert_eq!(
            self.sets[set].1, desc.n_elems,
            "loop {}: n_elems disagrees with set '{}'",
            desc.profile.name, desc.profile.set
        );
        let mut args = Vec::new();
        for a in &desc.profile.args {
            let (map, dat) = match &a.ind {
                ump_core::Indirection::Global => continue,
                ump_core::Indirection::Direct => {
                    (None, self.dats.iter().position(|d| d.name == a.dat))
                }
                ump_core::Indirection::Indirect { map, .. } => {
                    let dat = self.dats.iter().position(|d| d.name == a.dat);
                    let m = self.maps.iter().position(|m| m.name == *map);
                    if let Some(d) = dat {
                        let m = m.unwrap_or_else(|| {
                            panic!(
                                "loop {}: map '{map}' reaches evolving dat '{}' but is not registered",
                                desc.profile.name, a.dat
                            )
                        });
                        assert_eq!(
                            self.maps[m].from_size, desc.n_elems,
                            "loop {}: map '{map}' from-size mismatch",
                            desc.profile.name
                        );
                        assert_eq!(
                            self.maps[m].to_size,
                            self.sets[self.dats[d].set].1,
                            "loop {}: map '{map}' target-size mismatch with dat '{}'",
                            desc.profile.name,
                            a.dat
                        );
                    }
                    (m, dat)
                }
            };
            if let Some(d) = dat {
                if map.is_none() {
                    assert_eq!(
                        self.dats[d].set, set,
                        "loop {}: direct arg '{}' lives on another set",
                        desc.profile.name, a.dat
                    );
                }
            } else {
                assert!(
                    !a.access.writes(),
                    "loop {}: written dat '{}' is not registered",
                    desc.profile.name,
                    a.dat
                );
            }
            args.push(TArg {
                dat,
                map,
                access: a.access,
            });
        }
        let global_write = desc
            .profile
            .args
            .iter()
            .any(|a| a.ind == ump_core::Indirection::Global && a.access.writes());
        self.loops.push(TLoop {
            desc,
            set,
            step: self.n_steps.saturating_sub(1),
            args,
            global_write,
            body,
            run_body,
            epilogue: None,
        });
    }

    /// Attach an epilogue to the last recorded loop: runs once, on the
    /// dispatching thread, after the epoch containing that loop has
    /// completed (all tiles computed and written back). This is where
    /// per-block reduction partials are merged in slot order — the
    /// ordered-fold discipline that keeps reduction histories
    /// independent of the tiling configuration.
    pub fn epilogue(&mut self, f: impl Fn() + Sync + 'a) {
        let l = self
            .loops
            .last_mut()
            .expect("epilogue before any recorded loop");
        assert!(
            l.epilogue.is_none(),
            "loop {} has an epilogue",
            l.desc.name()
        );
        l.epilogue = Some(Box::new(f));
    }

    // -----------------------------------------------------------------
    // schedule: epochs + dependency cones
    // -----------------------------------------------------------------

    /// Cut the recorded super-chain at global synchronization points
    /// ([`global_barrier`]): a new epoch starts at every loop whose
    /// global arguments conflict with a global already touched in the
    /// current epoch (read-after-reduce, reduce-after-read). Returns the
    /// loop-index range of each epoch, in order.
    pub fn epoch_ranges(&self) -> Vec<Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0usize;
        for i in 1..self.loops.len() {
            let barrier = self.loops[start..i]
                .iter()
                .any(|prev| global_barrier(&prev.desc, &self.loops[i].desc).is_some());
            if barrier {
                out.push(start..i);
                start = i;
            }
        }
        if start < self.loops.len() {
            out.push(start..self.loops.len());
        }
        out
    }

    /// Compute the tiled schedule: ownership partitions, epochs, and per
    /// epoch × tile the dependency-cone iteration runs, copy-in
    /// footprints and owned write-back ranges. `tile_elems` sizes tiles
    /// on the *anchor set* (the last recorded loop's set); ownership of
    /// every set is block-aligned so reduction partial slots are
    /// tile-exclusive.
    pub fn schedule(&self, tile_elems: usize, block_size: usize) -> TileSchedule {
        assert!(!self.loops.is_empty(), "schedule of an empty chain");
        let block_size = block_size.max(1);
        let anchor = self.loops.last().unwrap().set;
        let n_anchor = self.sets[anchor].1;
        let blocks_per_tile = tile_elems.max(1).div_ceil(block_size).max(1);
        let anchor_blocks = n_anchor.div_ceil(block_size).max(1);
        let n_tiles = anchor_blocks.div_ceil(blocks_per_tile).max(1);

        // contiguous block-aligned ownership of every set
        let owned: Vec<Vec<Range<u32>>> = self
            .sets
            .iter()
            .map(|&(_, n)| {
                let blocks = n.div_ceil(block_size).max(1);
                (0..n_tiles)
                    .map(|t| {
                        let lo = (t * blocks / n_tiles) * block_size;
                        let hi = ((t + 1) * blocks / n_tiles) * block_size;
                        (lo.min(n) as u32)..(hi.min(n) as u32)
                    })
                    .collect()
            })
            .collect();

        // map inverses (target row -> source iterations), built once
        let inv: Vec<Csr> = self.maps.iter().map(|m| m.invert()).collect();

        let mut executed_iters = 0usize;
        let essential_iters: usize = self.loops.iter().map(|l| l.desc.n_elems).sum();
        let mut copy_in_words = 0usize;
        let mut copy_out_words = 0usize;

        let mut epochs = Vec::new();
        for range in self.epoch_ranges() {
            let eloops = &self.loops[range.clone()];
            // evolving dats written anywhere in this epoch
            let mut written: Vec<usize> = eloops
                .iter()
                .flat_map(|l| {
                    l.args
                        .iter()
                        .filter(|a| a.access.writes())
                        .filter_map(|a| a.dat)
                })
                .collect();
            written.sort_unstable();
            written.dedup();

            let mut tiles = Vec::with_capacity(n_tiles);
            for t in 0..n_tiles {
                // backward needed-row closure, seeded with the owned rows
                // of every dat the epoch writes
                let mut needed: Vec<Option<RowSet>> = vec![None; self.dats.len()];
                for &d in &written {
                    let mut rs = RowSet::new(self.sets[self.dats[d].set].1);
                    rs.insert_range(owned[self.dats[d].set][t].clone());
                    needed[d] = Some(rs);
                }
                let mut iters_rev: Vec<Vec<Range<u32>>> = Vec::with_capacity(eloops.len());
                for l in eloops.iter().rev() {
                    // executed iterations: everything that writes a
                    // needed row of any evolving dat, plus the owned
                    // range when the loop reduces into a global
                    let mut e = RowSet::new(self.sets[l.set].1);
                    if l.global_write {
                        e.insert_range(owned[l.set][t].clone());
                    }
                    for a in l.args.iter().filter(|a| a.access.writes()) {
                        let Some(d) = a.dat else { continue };
                        let Some(nd) = &needed[d] else { continue };
                        match a.map {
                            None => e.or(nd),
                            Some(m) => {
                                for row in nd.iter() {
                                    for &s in inv[m].row(row) {
                                        e.set(s as usize);
                                    }
                                }
                            }
                        }
                    }
                    executed_iters += e.count();
                    // a direct full Write satisfies the rows it covers
                    for a in &l.args {
                        if a.access == Access::Write && a.map.is_none() {
                            if let Some(d) = a.dat {
                                if let Some(nd) = needed[d].as_mut() {
                                    nd.and_not(&e);
                                }
                            }
                        }
                    }
                    // reads of evolving dats by executed iterations
                    // become needed one loop earlier (Inc reads the
                    // prior value, so it needs its target rows too)
                    for a in l.args.iter().filter(|a| a.access.reads()) {
                        let Some(d) = a.dat else { continue };
                        let nd = needed[d]
                            .get_or_insert_with(|| RowSet::new(self.sets[self.dats[d].set].1));
                        match a.map {
                            None => nd.or(&e),
                            Some(m) => {
                                for it in e.iter() {
                                    for &r in self.maps[m].row(it) {
                                        nd.set(r as usize);
                                    }
                                }
                            }
                        }
                    }
                    iters_rev.push(e.runs());
                }
                iters_rev.reverse();
                let copy_in: Vec<(usize, Vec<Range<u32>>)> = needed
                    .iter()
                    .enumerate()
                    .filter_map(|(d, nd)| {
                        let nd = nd.as_ref()?;
                        if !nd.any() {
                            return None;
                        }
                        copy_in_words += nd.count() * self.dats[d].dim;
                        Some((d, nd.runs()))
                    })
                    .collect();
                let copy_out: Vec<(usize, Range<u32>)> = written
                    .iter()
                    .map(|&d| {
                        let r = owned[self.dats[d].set][t].clone();
                        copy_out_words += (r.end - r.start) as usize * self.dats[d].dim;
                        (d, r)
                    })
                    .collect();
                tiles.push(TilePlan {
                    iters: iters_rev,
                    copy_in,
                    copy_out,
                });
            }
            epochs.push(EpochPlan {
                loops: range,
                tiles,
            });
        }

        // cross-step traffic the untiled path would re-stream: at every
        // step boundary *inside* an epoch, dats touched on both sides
        // stay tile-resident instead of making a round trip to memory
        let mut cross_step_words = 0usize;
        for ep in &epochs {
            let eloops = &self.loops[ep.loops.clone()];
            let steps: Vec<usize> = {
                let mut s: Vec<usize> = eloops.iter().map(|l| l.step).collect();
                s.dedup();
                s
            };
            for pair in steps.windows(2) {
                for (d, reg) in self.dats.iter().enumerate() {
                    let touched = |step: usize| {
                        eloops
                            .iter()
                            .any(|l| l.step == step && l.args.iter().any(|a| a.dat == Some(d)))
                    };
                    if touched(pair[0]) && touched(pair[1]) {
                        cross_step_words += self.sets[reg.set].1 * reg.dim;
                    }
                }
            }
        }

        TileSchedule {
            n_tiles,
            block_size,
            anchor_set: anchor,
            owned,
            epochs,
            executed_iters,
            essential_iters,
            copy_in_words,
            copy_out_words,
            cross_step_words,
        }
    }

    // -----------------------------------------------------------------
    // executor
    // -----------------------------------------------------------------

    /// Execute the recorded super-chain under `sched` on `pool`: two
    /// dispatch rounds per epoch (tile sweep, then owned-row
    /// write-back), epilogues at each epoch barrier. `lanes > 1` runs
    /// [`record_vec`](TiledChain::record_vec) run bodies on contiguous
    /// runs at least one vector wide. `word_bytes` scales the byte
    /// metrics of the returned [`TileReport`], which is also reported to
    /// `rec` under this chain's name via
    /// [`Recorder::record_fusion`].
    pub fn execute(
        &self,
        pool: &ExecPool,
        sched: &TileSchedule,
        n_threads: usize,
        lanes: usize,
        word_bytes: usize,
        rec: Option<&Recorder>,
    ) -> TileReport {
        let dims: Vec<usize> = self.dats.iter().map(|d| d.dim).collect();
        // worker-recycled full-size shadow sets: at most `team` live at
        // once, far fewer than one per tile
        let shadow_pool: Mutex<Vec<Vec<Vec<T>>>> = Mutex::new(Vec::new());
        let mut rounds = 0usize;

        for ep in &sched.epochs {
            let eloops = &self.loops[ep.loops.clone()];
            // per-tile staging buffers for the owned rows (written back
            // in round 2, after every tile has read pre-epoch state)
            let mut out_bufs: Vec<Vec<Vec<T>>> = ep
                .tiles
                .iter()
                .map(|tp| {
                    tp.copy_out
                        .iter()
                        .map(|(d, r)| {
                            vec![T::default(); (r.end - r.start) as usize * self.dats[*d].dim]
                        })
                        .collect()
                })
                .collect();
            let out_shared: Vec<Vec<SharedDat<'_, T>>> = out_bufs
                .iter_mut()
                .map(|per_tile| per_tile.iter_mut().map(|b| SharedDat::new(b)).collect())
                .collect();

            // round 1: sweep every tile through the epoch's loops
            pool.run_round(ep.tiles.len(), n_threads, 1, &|t| {
                let tp = &ep.tiles[t];
                let mut shadow = shadow_pool.lock().unwrap().pop().unwrap_or_default();
                if shadow.len() != self.dats.len() {
                    shadow = self
                        .dats
                        .iter()
                        .map(|d| vec![T::default(); d.data.len()])
                        .collect();
                }
                for (d, runs) in &tp.copy_in {
                    let dim = dims[*d];
                    // SAFETY: round 1 only reads the global storage
                    let global = unsafe { self.dats[*d].data.as_slice() };
                    let sh = &mut shadow[*d];
                    for r in runs {
                        let (a, b) = (r.start as usize * dim, r.end as usize * dim);
                        sh[a..b].copy_from_slice(&global[a..b]);
                    }
                }
                {
                    let views: Vec<SharedDat<'_, T>> =
                        shadow.iter_mut().map(|s| SharedDat::new(s)).collect();
                    for (li, l) in eloops.iter().enumerate() {
                        let or = &sched.owned[l.set][t];
                        let ctx = TileCtx {
                            dats: &views,
                            dims: &dims,
                            owned: or.start as usize..or.end as usize,
                        };
                        let vector = lanes > 1 && l.run_body.is_some();
                        for r in &tp.iters[li] {
                            let (s, e) = (r.start as usize, r.end as usize);
                            if vector && e - s >= lanes {
                                (l.run_body.as_ref().unwrap())(&ctx, s, e - s);
                            } else {
                                for i in s..e {
                                    (l.body)(&ctx, i);
                                }
                            }
                        }
                    }
                    for (k, (d, r)) in tp.copy_out.iter().enumerate() {
                        let dim = dims[*d];
                        let n = (r.end - r.start) as usize * dim;
                        // SAFETY: this tile's staging buffer, exclusively
                        let dst = unsafe { out_shared[t][k].slice_mut(0, n) };
                        // SAFETY: this worker's shadow
                        let src = unsafe { views[*d].slice(r.start as usize * dim, n) };
                        dst.copy_from_slice(src);
                    }
                }
                shadow_pool.lock().unwrap().push(shadow);
            });
            rounds += 1;

            // round 2: write owned rows back (disjoint per tile)
            pool.run_round(ep.tiles.len(), n_threads, 1, &|t| {
                for (k, (d, r)) in ep.tiles[t].copy_out.iter().enumerate() {
                    let dim = dims[*d];
                    let n = (r.end - r.start) as usize * dim;
                    // SAFETY: ownership ranges partition the set
                    let dst = unsafe { self.dats[*d].data.slice_mut(r.start as usize * dim, n) };
                    // SAFETY: round 1 completed; buffers are read-only now
                    let src = unsafe { out_shared[t][k].slice(0, n) };
                    dst.copy_from_slice(src);
                }
            });
            rounds += 1;

            for l in eloops {
                if let Some(epi) = &l.epilogue {
                    epi();
                }
            }
        }

        let report = TileReport {
            steps: self.steps(),
            loops: self.loops.len(),
            epochs: sched.epochs.len(),
            tiles: sched.n_tiles,
            rounds,
            executed_iters: sched.executed_iters,
            essential_iters: sched.essential_iters,
            copy_in_bytes: (sched.copy_in_words * word_bytes) as f64,
            copy_out_bytes: (sched.copy_out_words * word_bytes) as f64,
            cross_step_bytes_saved: (sched.cross_step_words * word_bytes) as f64,
        };
        if let Some(r) = rec {
            r.record_fusion(
                &self.name,
                FusionStats {
                    executions: 1,
                    loops: report.loops,
                    groups: report.epochs,
                    fused_rounds: report.rounds,
                    unfused_rounds: report.loops,
                    bytes_saved: 0.0,
                    steps: report.steps,
                    cross_step_bytes_saved: report.cross_step_bytes_saved,
                },
            );
        }
        report
    }
}

// ---------------------------------------------------------------------------
// schedule + report types
// ---------------------------------------------------------------------------

/// One epoch of a [`TileSchedule`]: the member loops and the per-tile
/// cone plans.
pub struct EpochPlan {
    /// Member loop indices into the recorded super-chain (contiguous).
    pub loops: Range<usize>,
    /// One plan per tile.
    pub tiles: Vec<TilePlan>,
}

/// One tile's plan for one epoch: which iterations of each member loop
/// it executes (its dependency cone), which rows it snapshots in, and
/// which rows it owns and writes back.
pub struct TilePlan {
    /// Per member loop (in epoch order): the executed iterations as
    /// maximal ascending runs. Everything beyond the tile's owned range
    /// is redundant fringe compute.
    pub iters: Vec<Vec<Range<u32>>>,
    /// Per evolving dat with surviving needs: the rows whose pre-epoch
    /// values the tile copies into its shadow.
    pub copy_in: Vec<(usize, Vec<Range<u32>>)>,
    /// Per dat written in the epoch: the owned row range written back.
    pub copy_out: Vec<(usize, Range<u32>)>,
}

/// The complete tiled schedule of a recorded super-chain.
pub struct TileSchedule {
    /// Number of tiles (contiguous block-aligned partitions of the
    /// anchor set).
    pub n_tiles: usize,
    /// Block size ownership is aligned to (reduction slot granularity).
    pub block_size: usize,
    /// Set index tiles are sized on (the last recorded loop's set).
    pub anchor_set: usize,
    /// `owned[set][tile]` — the contiguous element range tile `tile`
    /// owns of set `set`.
    pub owned: Vec<Vec<Range<u32>>>,
    /// The epochs, in execution order.
    pub epochs: Vec<EpochPlan>,
    /// Iterations executed, summed over tiles and loops (fringe
    /// iterations counted once per tile that runs them).
    pub executed_iters: usize,
    /// Iterations the untiled chain executes (Σ loop sizes).
    pub essential_iters: usize,
    /// Words copied into tile shadows, summed over epochs and tiles.
    pub copy_in_words: usize,
    /// Words written back from tile shadows.
    pub copy_out_words: usize,
    /// Dat words that stay tile-resident across a step boundary inside
    /// an epoch instead of being re-streamed from memory.
    pub cross_step_words: usize,
}

impl TileSchedule {
    /// Fraction of extra (fringe) iterations relative to the untiled
    /// chain: `0.0` means no redundant compute (single tile).
    pub fn redundant_fraction(&self) -> f64 {
        if self.essential_iters == 0 {
            0.0
        } else {
            self.executed_iters as f64 / self.essential_iters as f64 - 1.0
        }
    }
}

/// What one tiled execution did — the tiling counterpart of
/// [`ChainReport`](crate::chain::ChainReport).
#[derive(Clone, Copy, Debug)]
pub struct TileReport {
    /// Timesteps the super-chain covered.
    pub steps: usize,
    /// Loops recorded.
    pub loops: usize,
    /// Epochs (global synchronization sections) executed.
    pub epochs: usize,
    /// Tiles swept per epoch.
    pub tiles: usize,
    /// Pool dispatch rounds issued (2 per epoch).
    pub rounds: usize,
    /// Iterations executed including redundant fringe compute.
    pub executed_iters: usize,
    /// Iterations the untiled chain executes.
    pub essential_iters: usize,
    /// Bytes copied into tile shadows.
    pub copy_in_bytes: f64,
    /// Bytes written back from tile shadows.
    pub copy_out_bytes: f64,
    /// Bytes not re-streamed across step boundaries inside epochs.
    pub cross_step_bytes_saved: f64,
}

impl TileReport {
    /// Fraction of redundant (fringe) iterations, `0.0` for one tile.
    pub fn redundant_fraction(&self) -> f64 {
        if self.essential_iters == 0 {
            0.0
        } else {
            self.executed_iters as f64 / self.essential_iters as f64 - 1.0
        }
    }
}

// ---------------------------------------------------------------------------
// tile execution context
// ---------------------------------------------------------------------------

/// The view a loop body gets of the evolving dats while its tile is
/// being swept: accesses resolve into the tile's private shadow storage,
/// and [`owned`](TileCtx::owned) tells reduction code whether the
/// current iteration belongs to this tile (fringe iterations must not
/// contribute to reduction partials — their owner contributes them).
pub struct TileCtx<'c, T> {
    dats: &'c [SharedDat<'c, T>],
    dims: &'c [usize],
    owned: Range<usize>,
}

impl<T: Copy> TileCtx<'_, T> {
    /// Shared view of an evolving dat's shadow (AoS: row `e` at
    /// `e * dim`).
    #[inline(always)]
    pub fn dat(&self, d: DatId) -> &[T] {
        // SAFETY: one worker owns this tile's shadow for the whole sweep
        unsafe { self.dats[d.0].as_slice() }
    }

    /// Mutable view of an evolving dat's shadow.
    ///
    /// # Safety
    /// The caller must not hold another view of the *same* dat while
    /// mutating (views of different dats may coexist — they alias
    /// distinct buffers).
    #[inline(always)]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn dat_mut(&self, d: DatId) -> &mut [T] {
        unsafe { self.dats[d.0].slice_mut(0, self.dats[d.0].len()) }
    }

    /// Components per element of `d`.
    #[inline(always)]
    pub fn dim(&self, d: DatId) -> usize {
        self.dims[d.0]
    }

    /// Does the current tile own iteration `e` of the running loop's
    /// set? Reduction contributions must be gated on this.
    #[inline(always)]
    pub fn owned(&self, e: usize) -> bool {
        self.owned.contains(&e)
    }
}
