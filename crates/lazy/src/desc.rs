//! The declarative loop layer and the fusion dependency analysis.
//!
//! A [`LoopDesc`] is everything the runtime knows about a recorded loop
//! *as data*: the iteration set it runs over and the access descriptors
//! of its arguments (reusing [`LoopProfile`], the same structure the
//! paper's Table II/III rows are derived from). [`fuse_groups`] walks a
//! recorded chain and greedily extends each fused group while the next
//! loop is compatible with **every** member — the legality rules are
//! documented at the crate root and implemented in [`conflict`].

use std::ops::Range;

use ump_core::{Access, Indirection, LoopProfile};

/// Per-kernel lane selection under `Shape::Simd`.
///
/// Vectorization is not free: gathers, lane packing and the split sweep
/// all cost instructions that only pay off when there is arithmetic to
/// amortize them. Memory-bound kernels (plain copies like `save_soln`)
/// are better off as the scalar element loop the compiler can turn into
/// straight `memcpy`-like moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VecHint {
    /// Decide from the profile's arithmetic intensity (the default):
    /// vectorize when the kernel does at least one flop per word moved,
    /// or uses transcendentals (sqrt chains dominate those kernels).
    #[default]
    Auto,
    /// Force the scalar element loop.
    Scalar,
    /// Force the vector body.
    Vector,
}

/// The declarative description of one recorded loop: set identity plus
/// per-argument access descriptors.
#[derive(Clone, Debug)]
pub struct LoopDesc {
    /// The loop's `op_par_loop` signature: kernel name, set name, and
    /// per-argument `(dat, map-or-direct, access)` descriptors.
    pub profile: LoopProfile,
    /// Iteration-set size (the set *identity* together with
    /// `profile.set`).
    pub n_elems: usize,
    /// Lane selection under `Shape::Simd` (ignored by other shapes).
    pub vec_hint: VecHint,
}

impl LoopDesc {
    /// Describe a loop of `n_elems` iterations with `profile`'s
    /// signature.
    pub fn new(profile: LoopProfile, n_elems: usize) -> LoopDesc {
        LoopDesc {
            profile,
            n_elems,
            vec_hint: VecHint::Auto,
        }
    }

    /// Same, with an explicit lane-selection override.
    pub fn with_hint(mut self, hint: VecHint) -> LoopDesc {
        self.vec_hint = hint;
        self
    }

    /// Should this loop run its vector body under `Shape::Simd`?
    pub fn vectorize(&self) -> bool {
        match self.vec_hint {
            VecHint::Vector => true,
            VecHint::Scalar => false,
            VecHint::Auto => {
                let words = self.profile.transfers().total_words();
                self.profile.transcendentals_per_elem > 0.0
                    || self.profile.flops_per_elem >= words as f64
            }
        }
    }

    /// Does any argument scatter through a map (indirect write or
    /// increment)? Under `Shape::Simd` such a loop ends every chunk in a
    /// serialized lane scatter, the one part of the vector body that
    /// never amortizes — callers that know the storage is lane-friendly
    /// use this to pin scatter kernels to their scalar bodies.
    pub fn has_indirect_write(&self) -> bool {
        self.profile
            .args
            .iter()
            .any(|a| a.is_indirect() && a.access.writes())
    }

    /// Kernel name (diagnostics, instrumentation keys).
    pub fn name(&self) -> &str {
        &self.profile.name
    }
}

/// Why `second` cannot join a fused group containing `first` (`None` =
/// compatible). Implements the legality rules from the crate docs:
/// same-set, no indirect dependency, no global reuse.
pub fn conflict(first: &LoopDesc, second: &LoopDesc) -> Option<String> {
    if first.profile.set != second.profile.set || first.n_elems != second.n_elems {
        return Some(format!(
            "different iteration sets: {}[{}] vs {}[{}]",
            first.profile.set, first.n_elems, second.profile.set, second.n_elems
        ));
    }
    for a in &first.profile.args {
        for b in &second.profile.args {
            if a.dat != b.dat {
                continue;
            }
            // read-after-read never conflicts, direct or not
            if !(a.access.writes() || b.access.writes()) {
                continue;
            }
            let a_global = a.ind == Indirection::Global;
            let b_global = b.ind == Indirection::Global;
            if a_global || b_global {
                return Some(format!(
                    "global '{}' written by {} must complete before {} reuses it",
                    a.dat, first.profile.name, second.profile.name
                ));
            }
            if a.is_indirect() || b.is_indirect() {
                return Some(format!(
                    "indirect dependency on '{}' between {} and {}",
                    a.dat, first.profile.name, second.profile.name
                ));
            }
            // both direct with a write: element-private, fusable
        }
    }
    None
}

/// Why `second` needs a *global synchronization point* after `first`
/// when the two loops share a cross-timestep tiled epoch (`None` = they
/// may share one). This is the epoch-cut rule of the tiling scheduler
/// ([`TiledChain::epoch_ranges`](crate::tile::TiledChain::epoch_ranges)):
/// tiles execute an epoch independently, so a globally-reduced value can
/// only be *consumed* after every tile's partial has been merged at an
/// epoch barrier.
///
/// The rule is weaker than [`conflict`]'s global clause (which splits
/// fused *groups* but keeps the loops in the same per-step chain): two
/// `Inc` accumulations of the same global commute into per-tile
/// partials, and read-read reuse is free. Everything else —
/// read-after-reduce (Volna's `RK_1` consuming the Δt that
/// `numerical_flux` reduced) and reduce-after-read (the next step's
/// `numerical_flux` restarting the reduction `RK` loops just read) —
/// demands the barrier.
pub fn global_barrier(first: &LoopDesc, second: &LoopDesc) -> Option<String> {
    for a in &first.profile.args {
        if a.ind != Indirection::Global {
            continue;
        }
        for b in &second.profile.args {
            if b.ind != Indirection::Global || a.dat != b.dat {
                continue;
            }
            let both_inc = a.access == Access::Inc && b.access == Access::Inc;
            let neither_writes = !a.access.writes() && !b.access.writes();
            if !(both_inc || neither_writes) {
                return Some(format!(
                    "global '{}': {} ({:?}) then {} ({:?}) needs an epoch barrier",
                    a.dat, first.profile.name, a.access, second.profile.name, b.access
                ));
            }
        }
    }
    None
}

/// One group of a partitioned chain: the member loops (indices into the
/// recorded order) and whether they run as a pooled colored dispatch or
/// serially on the dispatcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupSpec {
    /// Indices of the member loops (contiguous in recorded order).
    pub loops: Range<usize>,
    /// `true`: the member runs serially on the dispatching thread (a
    /// [`record_seq`](crate::chain::Chain::record_seq) loop, never
    /// fused). `false`: one colored dispatch for the whole group.
    pub seq: bool,
}

/// Partition a recorded chain into maximal fusable groups, preserving
/// recorded order. `entries` pairs each loop's descriptor with its
/// run-serially flag; serial loops always form singleton groups.
pub fn fuse_groups(entries: &[(&LoopDesc, bool)]) -> Vec<GroupSpec> {
    let mut groups: Vec<GroupSpec> = Vec::new();
    let mut open: Option<Range<usize>> = None;
    for (i, (desc, seq)) in entries.iter().enumerate() {
        if *seq {
            if let Some(r) = open.take() {
                groups.push(GroupSpec {
                    loops: r,
                    seq: false,
                });
            }
            groups.push(GroupSpec {
                loops: i..i + 1,
                seq: true,
            });
            continue;
        }
        match open.take() {
            None => open = Some(i..i + 1),
            Some(r) => {
                let compatible = entries[r.clone()]
                    .iter()
                    .all(|(member, _)| conflict(member, desc).is_none());
                if compatible {
                    open = Some(r.start..i + 1);
                } else {
                    groups.push(GroupSpec {
                        loops: r,
                        seq: false,
                    });
                    open = Some(i..i + 1);
                }
            }
        }
    }
    if let Some(r) = open {
        groups.push(GroupSpec {
            loops: r,
            seq: false,
        });
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_core::{Access, ArgInfo};

    fn desc(name: &str, set: &str, n: usize, args: Vec<ArgInfo>) -> LoopDesc {
        LoopDesc::new(
            LoopProfile {
                name: name.into(),
                set: set.into(),
                args,
                flops_per_elem: 1.0,
                transcendentals_per_elem: 0.0,
                description: String::new(),
            },
            n,
        )
    }

    fn groups_of(descs: &[LoopDesc]) -> Vec<GroupSpec> {
        let entries: Vec<(&LoopDesc, bool)> = descs.iter().map(|d| (d, false)).collect();
        fuse_groups(&entries)
    }

    #[test]
    fn vec_hint_auto_tracks_arithmetic_intensity() {
        // a pure copy: 8 words moved, 4 flops — memory-bound, scalar
        let mut copy = desc(
            "save",
            "cells",
            100,
            vec![
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("qold", 4, Access::Write),
            ],
        );
        copy.profile.flops_per_elem = 4.0;
        assert!(!copy.vectorize());
        // transcendentals force vectorization regardless of word count
        copy.profile.transcendentals_per_elem = 2.0;
        assert!(copy.vectorize());
        copy.profile.transcendentals_per_elem = 0.0;
        // explicit overrides win over Auto
        assert!(copy.clone().with_hint(VecHint::Vector).vectorize());
        copy.profile.flops_per_elem = 100.0;
        assert!(copy.vectorize());
        assert!(!copy.clone().with_hint(VecHint::Scalar).vectorize());
    }

    #[test]
    fn direct_only_chains_always_fuse() {
        // write → read → rw → write over the same dats, all direct
        let chain = [
            desc(
                "a",
                "cells",
                100,
                vec![
                    ArgInfo::direct("u", 4, Access::Read),
                    ArgInfo::direct("v", 4, Access::Write),
                ],
            ),
            desc("b", "cells", 100, vec![ArgInfo::direct("v", 4, Access::Rw)]),
            desc(
                "c",
                "cells",
                100,
                vec![
                    ArgInfo::direct("v", 4, Access::Read),
                    ArgInfo::direct("u", 4, Access::Write),
                ],
            ),
        ];
        let g = groups_of(&chain);
        assert_eq!(
            g,
            vec![GroupSpec {
                loops: 0..3,
                seq: false
            }]
        );
    }

    #[test]
    fn indirect_raw_splits_the_chain() {
        // an indirect increment followed by an indirect read of the same
        // dat through the shared map: the canonical illegal fusion
        let chain = [
            desc(
                "scatter",
                "edges",
                50,
                vec![
                    ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0),
                    ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 1),
                ],
            ),
            desc(
                "gather",
                "edges",
                50,
                vec![
                    ArgInfo::indirect("acc", 1, Access::Read, "edge2cell", 0),
                    ArgInfo::direct("out", 1, Access::Write),
                ],
            ),
        ];
        let g = groups_of(&chain);
        assert_eq!(g.len(), 2, "indirect RAW must split: {g:?}");
        let why = conflict(&chain[0], &chain[1]).unwrap();
        assert!(why.contains("indirect"), "{why}");
    }

    #[test]
    fn indirect_war_and_waw_split_too() {
        let read_ind = desc(
            "r",
            "edges",
            50,
            vec![
                ArgInfo::indirect("acc", 1, Access::Read, "edge2cell", 0),
                ArgInfo::direct("out", 1, Access::Write),
            ],
        );
        let inc_ind = desc(
            "w",
            "edges",
            50,
            vec![ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0)],
        );
        // WAR: indirect read then indirect increment
        assert!(conflict(&read_ind, &inc_ind).is_some());
        // WAW: two indirect increments of the same dat
        assert!(conflict(&inc_ind, &inc_ind).is_some());
    }

    #[test]
    fn direct_write_with_unrelated_indirect_reads_fuses() {
        // Airfoil's save_soln + adt_calc shape: the indirect arg (x) is
        // read-only everywhere, the shared dat (q) is read-read
        let save = desc(
            "save",
            "cells",
            100,
            vec![
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("qold", 4, Access::Write),
            ],
        );
        let adt = desc(
            "adt",
            "cells",
            100,
            vec![
                ArgInfo::indirect("x", 2, Access::Read, "cell2node", 0),
                ArgInfo::direct("q", 4, Access::Read),
                ArgInfo::direct("adt", 1, Access::Write),
            ],
        );
        assert_eq!(conflict(&save, &adt), None);
    }

    #[test]
    fn global_reduction_reuse_splits() {
        let reduce = desc(
            "nf",
            "edges",
            50,
            vec![
                ArgInfo::direct("flux", 4, Access::Read),
                ArgInfo::global("dt", 1, Access::Inc),
            ],
        );
        let consume = desc(
            "rk",
            "edges",
            50,
            vec![
                ArgInfo::direct("flux", 4, Access::Read),
                ArgInfo::global("dt", 1, Access::Read),
            ],
        );
        assert!(conflict(&reduce, &consume).is_some());
        // but two loops only *reading* the same global fuse fine
        assert_eq!(conflict(&consume, &consume), None);
    }

    #[test]
    fn global_barrier_is_weaker_than_conflict() {
        let args = |acc: Access| {
            vec![
                ArgInfo::direct("flux", 4, Access::Read),
                ArgInfo::global("dt", 1, acc),
            ]
        };
        let inc = desc("nf", "edges", 50, args(Access::Inc));
        let read = desc("rk", "edges", 50, args(Access::Read));
        // commuting Inc-Inc and read-read reuse need no epoch barrier,
        // even though conflict() refuses to fuse the Inc-Inc pair
        assert_eq!(global_barrier(&inc, &inc), None);
        assert!(conflict(&inc, &inc).is_some());
        assert_eq!(global_barrier(&read, &read), None);
        // read-after-reduce and reduce-after-read both cut
        assert!(global_barrier(&inc, &read).is_some());
        assert!(global_barrier(&read, &inc).is_some());
        // different globals never interact
        let other = desc(
            "other",
            "edges",
            50,
            vec![ArgInfo::global("rms", 1, Access::Read)],
        );
        assert_eq!(global_barrier(&inc, &other), None);
    }

    #[test]
    fn different_sets_split_and_seq_loops_are_singletons() {
        let a = desc("a", "cells", 100, vec![]);
        let b = desc("b", "edges", 150, vec![]);
        let c = desc("c", "cells", 100, vec![]);
        let entries = [(&a, false), (&b, true), (&c, false)];
        let g = fuse_groups(&entries);
        assert_eq!(g.len(), 3);
        assert!(g[1].seq);
        // same set name but different size is a different set
        let c_small = desc("c", "cells", 99, vec![]);
        assert!(conflict(&a, &c_small).is_some());
        assert_eq!(conflict(&a, &c), None);
    }
}
