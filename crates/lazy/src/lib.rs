//! # ump-lazy — loop-chain recording and cross-loop fusion
//!
//! OP2's later runtimes defer `op_par_loop` execution: loops are
//! *recorded* into a queue, dependencies between them are analyzed from
//! the access descriptors, and compatible neighbors are *fused* so the
//! data a loop produced is still cache-resident when the next loop
//! consumes it. For this reproduction the payoff is twofold and exactly
//! what the paper's backends are limited by:
//!
//! * **fewer synchronization rounds** — a fused group of loops executes
//!   as *one* colored dispatch on the persistent
//!   [`ExecPool`](ump_core::ExecPool) instead of one per loop (each
//!   color round is a team-wide barrier), and
//! * **less memory traffic** — within a fused group a mini-partition's
//!   working set is traversed once for all member loops, not re-streamed
//!   from DRAM per loop.
//!
//! The pieces:
//!
//! * [`desc::LoopDesc`] — the declarative layer: a loop's iteration-set
//!   identity plus per-argument `(dat, map-or-direct, access)`
//!   descriptors (reusing [`ump_core::LoopProfile`]), so loop metadata
//!   exists as *data* the analyzer can reason about, not only as
//!   closures;
//! * [`desc::fuse_groups`] — the dependency analysis partitioning a
//!   recorded chain into maximal fusable groups;
//! * [`chain::Chain`] — the recorder: loops are registered with their
//!   descriptor and a block-level execution closure, then
//!   [`Chain::execute`] plans, fuses and dispatches the whole chain,
//!   reporting what fusion saved through
//!   [`ump_core::Recorder::record_fusion`];
//! * fused executors for every shared-memory shape: colored-block
//!   threading ([`Shape::Threaded`]), the SIMT / OpenCL-on-CPU
//!   emulation ([`Shape::Simt`], which reuses
//!   [`ump_core::simt_block_sweep`] per member loop), and vectorized
//!   fused execution ([`Shape::Simd`], which runs loops recorded with
//!   [`Chain::record_simd`] / [`Chain::record_simd_two_phase`] through
//!   the scalar-presweep / vector-body / scalar-postsweep decomposition
//!   of [`ump_core::simd_block_sweep`] — cross-loop fusion composed with
//!   the paper's explicit SIMD on the same union-write-set plans and
//!   pool dispatch path).
//!
//! # Fusion legality
//!
//! Two recorded loops may share a fused group only when **every** pair
//! of loops in the group satisfies all of:
//!
//! 1. **Same iteration set** (same set name *and* size): fused execution
//!    interleaves the loops block-by-block, so their block structures
//!    must coincide.
//! 2. **No indirect dependency**: for every dat accessed by both loops
//!    where at least one access writes (`Write`/`Inc`/`Rw`), *both*
//!    accesses must be direct. An indirect access on either side breaks
//!    fusion — an indirect read after an indirect increment through a
//!    shared map (RAW), an indirect increment after a read (WAR), or two
//!    indirect writes (WAW) could all observe partially-updated targets,
//!    because when block `b` of the later loop runs, other blocks of the
//!    earlier loop (different colors) have not executed yet. Direct
//!    dependencies always fuse: element `e`'s data is touched only by
//!    the block containing `e`, and within a block the member loops run
//!    in recorded order — so **direct-only chains always fuse**.
//! 3. **No global reuse**: a global (reduction) argument written by one
//!    loop and accessed by another must see the *completed* reduction,
//!    which only exists after the earlier loop's last block — the group
//!    is split so the reduction finishes (and the loop's epilogue runs)
//!    first.
//!
//! The plan of a fused group is a
//! [`TwoLevelPlan`](ump_color::TwoLevelPlan) built over the **union of
//! the written maps** of the group ([`ump_color::PlanInputs::merged`]),
//! fetched through the shared [`ump_core::PlanCache`] — so the coloring
//! respects every member's write conflicts and is still computed once
//! per shape and reused across the time loop.
//!
//! Loops recorded with [`Chain::record_seq`] (tiny boundary sets the
//! paper drops from analysis) run serially on the dispatching thread
//! between groups and never fuse.
//!
//! # Distributed chains: halo/compute overlap
//!
//! The paper's full execution model is two-level: message-passing ranks
//! own mesh partitions and exchange halos before indirect loops (§2,
//! §6.5), while each rank runs the colored/fused shared-memory schedule
//! above. A rank-local chain records its halo exchanges with
//! [`Chain::record_exchange`] (start = non-blocking sends, finish =
//! receive + unpack) and classifies its loops with
//! [`Chain::mark_interior`] (reads no ghost data) and
//! [`Chain::mark_boundary`] (per-element ghost-read flags, e.g.
//! [`LocalMesh::boundary_edges`](ump_core::LocalMesh::boundary_edges)).
//! The executor then runs the latency-hiding schedule: exchanges start
//! in recorded order, interior loops and the **interior blocks** of
//! boundary-marked groups execute while the messages are in flight, the
//! pending finishes complete, and the **boundary blocks** run last.
//! [`ExchangePolicy::Blocking`] finishes every exchange immediately
//! instead (the classical schedule) while computing in the *same* order,
//! so the two policies are bit-identical — the halo bench
//! (`benches/halo.rs`, `BENCH_halo.json`) isolates pure latency hiding.
//!
//! # Cross-timestep sparse tiling
//!
//! [`tile::TiledChain`] records **N timesteps** as one super-chain and
//! turns the runtime from barrier-reducing into bandwidth-eliminating:
//! the mesh is partitioned into tiles, each tile's dependency cone is
//! grown backward through the maps one halo layer per loop, and the
//! executor sweeps every tile through all member loops — across
//! timestep boundaries — while its working set stays cache-resident.
//! Fringe iterations shared by neighboring cones are computed
//! redundantly by each tile that needs them, so tiles never synchronize
//! inside an *epoch*; epochs are cut exactly at global-reduction
//! consumption points ([`desc::global_barrier`], a deliberately weaker
//! rule than [`conflict`]'s global clause — commuting `Inc`/`Inc`
//! accumulations tile fine as per-block partials). The [`tile`] module
//! docs state the legality and bit-determinism contract.
//!
//! # Example
//!
//! A direct-only chain fuses into one colored dispatch:
//!
//! ```
//! use ump_core::{Access, ArgInfo, ExecPool, LoopProfile, PlanCache, SharedDat};
//! use ump_lazy::{Chain, LoopDesc, Shape};
//!
//! let desc = |name: &str, args| {
//!     LoopDesc::new(
//!         LoopProfile {
//!             name: name.into(),
//!             set: "items".into(),
//!             args,
//!             flops_per_elem: 1.0,
//!             transcendentals_per_elem: 0.0,
//!             description: String::new(),
//!         },
//!         100,
//!     )
//! };
//! let pool = ExecPool::new(2);
//! let cache = PlanCache::new();
//! let mut data = vec![0.0f64; 100];
//! let report;
//! {
//!     let view = SharedDat::new(&mut data);
//!     let v = &view;
//!     let mut chain = Chain::new("example");
//!     chain.record(
//!         desc("fill", vec![ArgInfo::direct("a", 1, Access::Write)]),
//!         vec![],
//!         move |e| unsafe { v.slice_mut(e, 1)[0] = e as f64 },
//!     );
//!     chain.record(
//!         desc("double", vec![ArgInfo::direct("a", 1, Access::Rw)]),
//!         vec![],
//!         move |e| unsafe { v.slice_mut(e, 1)[0] *= 2.0 },
//!     );
//!     assert_eq!(chain.groups().len(), 1, "direct-only chains always fuse");
//!     report = chain.execute(&pool, &cache, Shape::Threaded, 0, 32, 8, None);
//! }
//! assert_eq!(report.fused_rounds, 1, "one colored dispatch for both loops");
//! assert_eq!(data[7], 14.0);
//! ```
//!
//! [`Chain::execute`]: chain::Chain::execute
//! [`Chain::record_seq`]: chain::Chain::record_seq
//! [`Chain::record_simd`]: chain::Chain::record_simd
//! [`Chain::record_simd_two_phase`]: chain::Chain::record_simd_two_phase
//! [`Chain::record_exchange`]: chain::Chain::record_exchange
//! [`Chain::mark_interior`]: chain::Chain::mark_interior
//! [`Chain::mark_boundary`]: chain::Chain::mark_boundary
//! [`ExchangePolicy::Blocking`]: chain::ExchangePolicy::Blocking
//! [`Shape::Threaded`]: chain::Shape::Threaded
//! [`Shape::Simt`]: chain::Shape::Simt
//! [`Shape::Simd`]: chain::Shape::Simd

#![deny(missing_docs)]

pub mod chain;
pub mod desc;
pub mod tile;

pub use chain::{Chain, ChainReport, ExchangePolicy, Shape};
pub use desc::{conflict, fuse_groups, global_barrier, GroupSpec, LoopDesc, VecHint};
pub use tile::{DatId, TileCtx, TileReport, TileSchedule, TiledChain};
