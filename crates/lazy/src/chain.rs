//! The chain recorder and the fused executors.
//!
//! A [`Chain`] records loops (descriptor + execution closure) in program
//! order; [`Chain::execute`] partitions them into fusable groups
//! ([`fuse_groups`]), builds one union-write-set
//! [`TwoLevelPlan`](ump_color::TwoLevelPlan) per group through the
//! shared [`PlanCache`], and dispatches each group as a single colored
//! run on an [`ExecPool`] — the member loops execute back-to-back on
//! each block while the block's working set is cache-resident.
//!
//! Bodies are *block-level* closures. Within a color round a block's
//! bodies run in recorded loop order, and the group plan is colored by
//! the union of the members' written maps, so the same coloring
//! invariant the unfused engines rely on holds for every member's
//! writes. Mutation from bodies goes through
//! [`SharedDat`](ump_core::SharedDat) views exactly as in the generated
//! drivers.

use std::collections::HashSet;
use std::ops::Range;
use std::time::Instant;

use ump_color::PlanInputs;
use ump_core::pool::{simd_block_sweep, simt_block_sweep};
use ump_core::{ExecPool, FusionStats, Indirection, PlanCache, Recorder, Scheme};
use ump_mesh::MapTable;

use crate::desc::{fuse_groups, GroupSpec, LoopDesc};

/// The execution shape of a fused dispatch — the two shared-memory
/// backends of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Colored-block threading (the OpenMP analogue): each member loop
    /// iterates its block range element-wise.
    Threaded,
    /// SIMT (OpenCL-on-CPU) emulation: two-phase member loops run in
    /// lock-step chunks of `width` with color-bucketed increments
    /// ([`ump_core::simt_block_sweep`]); `sched_overhead_ns` models the
    /// OpenCL work-group scheduling cost, charged once per
    /// (block, loop) dispatch for every pooled loop — a fused group of
    /// `k` loops still pays `k` work-group dispatches per block, so
    /// fusion's win under this shape is barriers and locality, not
    /// modelled scheduling cost.
    Simt {
        /// Lock-step chunk width (work-items per SIMT batch).
        width: usize,
        /// Busy-wait per work-group dispatch, 0 for an ideal runtime.
        sched_overhead_ns: u64,
    },
    /// Vectorized fused execution: each colored block runs the paper's
    /// three-sweep decomposition (§4.2) per member loop — scalar
    /// pre-sweep to lane alignment, `lanes`-wide vector body built from
    /// `VecR` gather/scatter lane bodies, scalar post-sweep — via
    /// [`ump_core::simd_block_sweep`]. Only loops recorded through
    /// [`Chain::record_simd`] / [`Chain::record_simd_two_phase`] have
    /// vector bodies; other recorded loops fall back to their scalar
    /// element bodies. `lanes` must match the width the vector bodies
    /// were compiled for (the drivers' const generic `L`) — the executor
    /// asserts it.
    Simd {
        /// Vector width of the recorded lane bodies.
        lanes: usize,
    },
}

/// Block-level execution closure of a recorded loop.
type BlockBody<'a> = Box<dyn Fn(&ump_color::TwoLevelPlan, Shape, usize, Range<u32>) + Sync + 'a>;

/// Halo classification of a recorded loop — what the distributed
/// executor may do with the loop while halo exchanges are in flight.
#[derive(Clone, Copy)]
enum HaloClass<'a> {
    /// Nothing declared (every single-rank loop): conservatively treated
    /// as if it might read halo data, so pending exchanges complete
    /// before the loop runs.
    Unknown,
    /// The loop reads no halo data ([`Chain::mark_interior`]): it runs in
    /// full while exchanges are in flight.
    Interior,
    /// `flags[e]` marks the elements that read halo data
    /// ([`Chain::mark_boundary`]): the loop's group splits into an
    /// interior pass (runs under pending exchanges), the exchange
    /// completion, and a boundary pass.
    Boundary(&'a [bool]),
}

/// Charge the SIMT shape's work-group scheduling cost for one
/// (block, loop) dispatch — every pooled loop pays it, exactly like the
/// unfused [`simt_colored`](ump_core::ExecPool::simt_colored) engine
/// charges each work-group (two-phase loops pay it inside
/// [`simt_block_sweep`] instead).
fn sched_spin(shape: Shape) {
    if let Shape::Simt {
        sched_overhead_ns, ..
    } = shape
    {
        ump_core::pool::spin_ns(sched_overhead_ns);
    }
}

enum Body<'a> {
    /// Dispatched through the pool, block by block.
    Blocks(BlockBody<'a>),
    /// Run serially on the dispatching thread (tiny sets).
    Seq(Box<dyn Fn() + Sync + 'a>),
    /// A halo exchange: `start` posts the non-blocking sends, `finish`
    /// receives and unpacks. Between the two the executor runs interior
    /// work — the latency-hiding schedule of the distributed backend.
    Exchange {
        start: Box<dyn Fn() + Sync + 'a>,
        finish: Box<dyn Fn() + Sync + 'a>,
    },
}

struct RecordedLoop<'a> {
    desc: LoopDesc,
    written: Vec<&'a MapTable>,
    body: Body<'a>,
    halo: HaloClass<'a>,
    epilogue: Option<Box<dyn Fn() + Sync + 'a>>,
}

/// What one chain execution did and saved; also pushed into the
/// [`Recorder`] (as [`FusionStats`]) when one is supplied.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChainReport {
    /// Loops recorded (exchanges included).
    pub loops: usize,
    /// Groups dispatched (fused + sequential + exchanges).
    pub groups: usize,
    /// Pool dispatch rounds issued.
    pub fused_rounds: usize,
    /// Rounds the same chain would issue executing loop-by-loop.
    pub unfused_rounds: usize,
    /// Read bytes not re-streamed thanks to fusion (paper counting).
    pub bytes_saved: f64,
    /// Halo exchanges recorded in the chain.
    pub exchanges: usize,
    /// Pooled groups executed as an interior/boundary split.
    pub split_groups: usize,
    /// Seconds spent waiting in exchange `finish` calls — near zero when
    /// interior compute hid the message latency.
    pub halo_wait_s: f64,
}

impl ChainReport {
    /// Dispatch rounds fusion removed.
    pub fn rounds_saved(&self) -> usize {
        self.unfused_rounds.saturating_sub(self.fused_rounds)
    }
}

/// A recorded chain of loops awaiting fused execution.
pub struct Chain<'a> {
    name: String,
    loops: Vec<RecordedLoop<'a>>,
}

impl<'a> Chain<'a> {
    /// Empty chain named for instrumentation (`rec.fusion(name)`).
    pub fn new(name: impl Into<String>) -> Chain<'a> {
        Chain {
            name: name.into(),
            loops: Vec::new(),
        }
    }

    /// Chain name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of recorded loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// `true` when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    fn push_blocks(&mut self, desc: LoopDesc, written: Vec<&'a MapTable>, body: BlockBody<'a>) {
        let mut names: Vec<&str> = written.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(
            names,
            desc.profile.written_maps(),
            "{}: written tables must match the descriptor's written maps",
            desc.profile.name
        );
        for m in &written {
            assert_eq!(
                m.from_size, desc.n_elems,
                "{}: written map size mismatch",
                desc.profile.name
            );
        }
        self.loops.push(RecordedLoop {
            desc,
            written,
            body: Body::Blocks(body),
            halo: HaloClass::Unknown,
            epilogue: None,
        });
    }

    /// Record a loop whose body runs element-wise in every shape —
    /// direct loops and loops whose execution is shape-agnostic.
    /// `written` holds the tables of the descriptor's written maps (empty
    /// for loops without indirect writes).
    pub fn record(
        &mut self,
        desc: LoopDesc,
        written: Vec<&'a MapTable>,
        body: impl Fn(usize) + Sync + 'a,
    ) -> &mut Self {
        self.push_blocks(
            desc,
            written,
            Box::new(move |_plan, shape, _b, range| {
                sched_spin(shape);
                for e in range {
                    body(e as usize);
                }
            }),
        );
        self
    }

    /// Record a loop whose body sees the whole block (`block id`,
    /// element range) — for per-block reduction partials sized by
    /// `n_elems.div_ceil(block_size)`, the block count every two-level
    /// plan of this set uses.
    pub fn record_blocks(
        &mut self,
        desc: LoopDesc,
        written: Vec<&'a MapTable>,
        body: impl Fn(usize, Range<u32>) + Sync + 'a,
    ) -> &mut Self {
        self.push_blocks(
            desc,
            written,
            Box::new(move |_plan, shape, b, range| {
                sched_spin(shape);
                body(b, range)
            }),
        );
        self
    }

    /// Record a two-phase (compute → increment) loop — the indirect-
    /// increment kernels. The threaded shape applies each element's
    /// increment immediately; the SIMT shape runs lock-step chunks with
    /// color-bucketed increments, exactly like the unfused
    /// [`simt_colored`](ump_core::ExecPool::simt_colored) engine.
    pub fn record_two_phase<I: Send>(
        &mut self,
        desc: LoopDesc,
        written: Vec<&'a MapTable>,
        compute: impl Fn(usize) -> I + Sync + 'a,
        apply: impl Fn(usize, &I) + Sync + 'a,
    ) -> &mut Self {
        self.push_blocks(
            desc,
            written,
            Box::new(move |plan, shape, b, range| match shape {
                // without a recorded vector body the SIMD shape degrades
                // to the threaded element loop (still correct: one
                // thread per block, increments applied immediately)
                Shape::Threaded | Shape::Simd { .. } => {
                    for e in range {
                        let e = e as usize;
                        let inc = compute(e);
                        apply(e, &inc);
                    }
                }
                Shape::Simt {
                    width,
                    sched_overhead_ns,
                } => simt_block_sweep(plan, b, range, width, sched_overhead_ns, &compute, &apply),
            }),
        );
        self
    }

    /// Record a loop with both a scalar element body and a `lanes`-wide
    /// vector body. Under [`Shape::Simd`] each colored block runs the
    /// three-sweep decomposition ([`ump_core::simd_block_sweep`]):
    /// `scalar(e)` for the pre-/post-sweep elements and `vector(cs)` for
    /// every lane-aligned chunk `cs..cs + lanes`. Every other shape runs
    /// `scalar` element-wise, exactly like [`record`](Chain::record).
    ///
    /// `lanes` must equal the const width the vector body was compiled
    /// for; executing under `Shape::Simd` with a different lane count
    /// panics (the registry only dispatches matching widths).
    pub fn record_simd(
        &mut self,
        desc: LoopDesc,
        written: Vec<&'a MapTable>,
        lanes: usize,
        scalar: impl Fn(usize) + Sync + 'a,
        vector: impl Fn(usize) + Sync + 'a,
    ) -> &mut Self {
        // per-kernel lane selection: memory-bound kernels keep the
        // scalar element loop even under Shape::Simd (bit-identical —
        // the hint only skips vector-body overhead, never changes math)
        let use_vector = desc.vectorize();
        self.push_blocks(
            desc,
            written,
            Box::new(move |_plan, shape, _b, range| match shape {
                Shape::Simd { lanes: l } => {
                    assert_eq!(
                        l, lanes,
                        "chain recorded {lanes}-lane bodies but executes at {l} lanes"
                    );
                    if use_vector {
                        simd_block_sweep(range, lanes, &scalar, &vector);
                    } else {
                        for e in range {
                            scalar(e as usize);
                        }
                    }
                }
                _ => {
                    sched_spin(shape);
                    for e in range {
                        scalar(e as usize);
                    }
                }
            }),
        );
        self
    }

    /// Record a two-phase (compute → increment) loop with an additional
    /// `lanes`-wide vector body for [`Shape::Simd`]. The vector body
    /// `vector(cs)` handles one whole aligned chunk: gather, compute,
    /// and *serialized* lane scatter (safe — a block executes on one
    /// thread, and the group plan's coloring keeps concurrent blocks off
    /// each other's write targets). Pre-/post-sweep elements run
    /// `compute` + `apply` immediately. The threaded and SIMT shapes
    /// behave exactly like [`record_two_phase`](Chain::record_two_phase).
    pub fn record_simd_two_phase<I: Send>(
        &mut self,
        desc: LoopDesc,
        written: Vec<&'a MapTable>,
        lanes: usize,
        compute: impl Fn(usize) -> I + Sync + 'a,
        apply: impl Fn(usize, &I) + Sync + 'a,
        vector: impl Fn(usize) + Sync + 'a,
    ) -> &mut Self {
        let use_vector = desc.vectorize();
        self.push_blocks(
            desc,
            written,
            Box::new(move |plan, shape, b, range| match shape {
                Shape::Threaded => {
                    for e in range {
                        let e = e as usize;
                        let inc = compute(e);
                        apply(e, &inc);
                    }
                }
                Shape::Simt {
                    width,
                    sched_overhead_ns,
                } => simt_block_sweep(plan, b, range, width, sched_overhead_ns, &compute, &apply),
                Shape::Simd { lanes: l } => {
                    assert_eq!(
                        l, lanes,
                        "chain recorded {lanes}-lane bodies but executes at {l} lanes"
                    );
                    let scalar = |e| {
                        let inc = compute(e);
                        apply(e, &inc);
                    };
                    if use_vector {
                        simd_block_sweep(range, lanes, &scalar, &vector);
                    } else {
                        for e in range {
                            scalar(e as usize);
                        }
                    }
                }
            }),
        );
        self
    }

    /// Record a loop executed serially on the dispatching thread between
    /// groups — the tiny boundary sets the paper drops from analysis. A
    /// serial loop never fuses and issues no pool rounds.
    pub fn record_seq(&mut self, desc: LoopDesc, body: impl Fn() + Sync + 'a) -> &mut Self {
        self.loops.push(RecordedLoop {
            desc,
            written: Vec::new(),
            body: Body::Seq(Box::new(body)),
            halo: HaloClass::Unknown,
            epilogue: None,
        });
        self
    }

    /// Record a halo exchange at this point of the chain: `start` posts
    /// the non-blocking sends (e.g.
    /// `ump_minimpi::ExchangePlan::start`),
    /// `finish` completes the receive side. An exchange never fuses; it
    /// splits the chain exactly like a serial loop.
    ///
    /// Under the default **overlap** policy ([`Chain::execute`]) the
    /// executor calls `start` in recorded order but defers `finish`
    /// until the first later loop that *needs* halo data: loops marked
    /// [`mark_interior`](Chain::mark_interior) run entirely while the
    /// messages are in flight, and a group marked
    /// [`mark_boundary`](Chain::mark_boundary) runs its interior blocks,
    /// then the pending `finish`es, then its boundary blocks. Under the
    /// **blocking** policy ([`Chain::execute_policy`] with
    /// `ExchangePolicy::Blocking`) `finish` runs immediately after
    /// `start` — same compute schedule, no latency hiding — which is the
    /// baseline the halo bench compares against. When a [`Recorder`] is
    /// supplied, the seconds spent waiting in each `finish` accumulate
    /// under `name`.
    pub fn record_exchange(
        &mut self,
        name: impl Into<String>,
        start: impl Fn() + Sync + 'a,
        finish: impl Fn() + Sync + 'a,
    ) -> &mut Self {
        let name = name.into();
        let profile = ump_core::LoopProfile {
            name: name.clone(),
            set: "__halo".into(),
            args: Vec::new(),
            flops_per_elem: 0.0,
            transcendentals_per_elem: 0.0,
            description: "halo exchange".into(),
        };
        self.loops.push(RecordedLoop {
            desc: LoopDesc::new(profile, 0),
            written: Vec::new(),
            body: Body::Exchange {
                start: Box::new(start),
                finish: Box::new(finish),
            },
            halo: HaloClass::Unknown,
            epilogue: None,
        });
        self
    }

    /// Declare that the most recently recorded loop reads **no halo
    /// data**: every element's inputs are complete before any exchange
    /// finishes, so the loop may run in full while halo messages are in
    /// flight. Typical for owned-cell direct loops of a rank-local
    /// timestep. Loops without a marking are conservatively assumed to
    /// need the halo (pending exchanges complete before they run).
    pub fn mark_interior(&mut self) -> &mut Self {
        let last = self
            .loops
            .last_mut()
            .expect("mark_interior requires a recorded loop");
        assert!(
            !matches!(last.body, Body::Exchange { .. }),
            "halo markings apply to loops, not exchanges"
        );
        last.halo = HaloClass::Interior;
        self
    }

    /// Declare the halo-reading elements of the most recently recorded
    /// loop: `flags[e]` is `true` for elements whose inputs include halo
    /// (ghost) data — e.g. edges touching a ghost cell, from
    /// [`LocalMesh::boundary_edges`](ump_core::LocalMesh::boundary_edges).
    /// The loop's fused group then always executes as an **interior pass
    /// → exchange completion → boundary pass** split (a block is
    /// boundary when any member loop flags any of its elements), so the
    /// compute order is identical under the overlap and blocking
    /// policies — bit-reproducible across both.
    pub fn mark_boundary(&mut self, flags: &'a [bool]) -> &mut Self {
        let last = self
            .loops
            .last_mut()
            .expect("mark_boundary requires a recorded loop");
        assert!(
            matches!(last.body, Body::Blocks(_)),
            "boundary markings apply to pooled loops"
        );
        assert_eq!(
            flags.len(),
            last.desc.n_elems,
            "{}: boundary flags must cover the iteration set",
            last.desc.profile.name
        );
        last.halo = HaloClass::Boundary(flags);
        self
    }

    /// Attach an epilogue to the most recently recorded loop: run once
    /// on the dispatching thread after the loop's *group* completes
    /// (reduction merges — e.g. folding per-block Δt partials before a
    /// later loop in the chain consumes the value).
    pub fn epilogue(&mut self, f: impl Fn() + Sync + 'a) -> &mut Self {
        let last = self
            .loops
            .last_mut()
            .expect("epilogue requires a recorded loop");
        last.epilogue = Some(Box::new(f));
        self
    }

    /// The fused-group partition of the recorded chain (exposed for
    /// tests and diagnostics; `execute` computes the same). Serial loops
    /// and exchanges are singleton groups.
    pub fn groups(&self) -> Vec<GroupSpec> {
        let entries: Vec<(&LoopDesc, bool)> = self
            .loops
            .iter()
            .map(|l| {
                (
                    &l.desc,
                    matches!(l.body, Body::Seq(_) | Body::Exchange { .. }),
                )
            })
            .collect();
        fuse_groups(&entries)
    }

    /// Execute the chain: one colored dispatch per fused group on
    /// `pool`, serial loops inline, epilogues after their group. Plans
    /// come from `cache` (union write sets, [`PlanInputs::merged`]);
    /// `word_bytes` scales the byte accounting (4 = SP, 8 = DP). When a
    /// [`Recorder`] is given, each group is timed under
    /// `fused[name+name+…]` (plain loop name for serial groups) and the
    /// chain's [`FusionStats`] accumulate under the chain name.
    ///
    /// The returned [`ChainReport`] (including the unfused-rounds
    /// baseline and the bytes-saved estimate) is always computed —
    /// callers without a recorder still get it; the cost is one
    /// plan-cache *hit* per loop (the per-loop plans are the ones the
    /// unfused drivers build and share through the same cache) plus a
    /// small per-group set walk.
    pub fn execute(
        &self,
        pool: &ExecPool,
        cache: &PlanCache,
        shape: Shape,
        n_threads: usize,
        block_size: usize,
        word_bytes: usize,
        rec: Option<&Recorder>,
    ) -> ChainReport {
        self.execute_policy(
            pool,
            cache,
            shape,
            n_threads,
            block_size,
            word_bytes,
            rec,
            ExchangePolicy::Overlap,
        )
    }

    /// As [`execute`](Chain::execute) with an explicit halo-exchange
    /// policy. Chains without recorded exchanges behave identically
    /// under both policies; chains with exchanges compute in the **same
    /// order** under both (groups with boundary markings always run the
    /// interior → boundary split), so overlap and blocking runs are
    /// bit-identical — only the placement of the exchange `finish`
    /// differs, which is what the halo bench isolates.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_policy(
        &self,
        pool: &ExecPool,
        cache: &PlanCache,
        shape: Shape,
        n_threads: usize,
        block_size: usize,
        word_bytes: usize,
        rec: Option<&Recorder>,
        policy: ExchangePolicy,
    ) -> ChainReport {
        let groups = self.groups();
        let mut report = ChainReport {
            loops: self.loops.len(),
            groups: groups.len(),
            ..ChainReport::default()
        };
        // finishes of started-but-incomplete exchanges, FIFO; flush
        // returns the seconds it waited so group timers can exclude them
        // (the wait is recorded under the exchange's own name)
        let mut pending: Vec<(&str, &(dyn Fn() + Sync))> = Vec::new();
        let flush =
            |pending: &mut Vec<(&str, &(dyn Fn() + Sync))>, report: &mut ChainReport| -> f64 {
                let mut waited = 0.0;
                for (name, finish) in pending.drain(..) {
                    let t0 = Instant::now();
                    finish();
                    let dt = t0.elapsed().as_secs_f64();
                    waited += dt;
                    report.halo_wait_s += dt;
                    if let Some(r) = rec {
                        r.record(name, dt, 0.0, 0.0);
                    }
                }
                waited
            };
        for group in &groups {
            let members = &self.loops[group.loops.clone()];
            let t0 = Instant::now();
            // exchange waits that happened inside this group's span —
            // subtracted from its recorded time, so per-group Recorder
            // seconds stay comparable across the two policies
            let mut waited_in_group = 0.0;
            if group.seq {
                match &members[0].body {
                    Body::Seq(f) => {
                        // serial loops without an interior marking may
                        // read halo data: complete pending exchanges
                        if !matches!(members[0].halo, HaloClass::Interior) {
                            waited_in_group += flush(&mut pending, &mut report);
                        }
                        f();
                    }
                    Body::Exchange { start, finish } => {
                        report.exchanges += 1;
                        start();
                        match policy {
                            ExchangePolicy::Overlap => {
                                pending.push((&members[0].desc.profile.name, finish.as_ref()));
                            }
                            ExchangePolicy::Blocking => {
                                let tf = Instant::now();
                                finish();
                                let dt = tf.elapsed().as_secs_f64();
                                report.halo_wait_s += dt;
                                if let Some(r) = rec {
                                    r.record(&members[0].desc.profile.name, dt, 0.0, 0.0);
                                }
                            }
                        }
                    }
                    Body::Blocks(_) => unreachable!("seq group with pooled body"),
                }
            } else {
                let n_elems = members[0].desc.n_elems;
                let inputs = PlanInputs::merged(
                    n_elems,
                    members.iter().flat_map(|l| l.written.iter().copied()),
                    block_size,
                );
                let names: Vec<&str> = inputs
                    .written_maps
                    .iter()
                    .map(|m| m.name.as_str())
                    .collect();
                let plan = cache.get(Scheme::TwoLevel, &names, &inputs);
                let plan = plan.two_level();
                let body = |b: usize, range: Range<u32>| {
                    for l in members {
                        if let Body::Blocks(f) = &l.body {
                            f(plan, shape, b, range.clone());
                        }
                    }
                };
                // a member without a halo marking may read halo data
                // anywhere: the group cannot run under pending exchanges
                if members.iter().any(|l| matches!(l.halo, HaloClass::Unknown)) {
                    waited_in_group += flush(&mut pending, &mut report);
                }
                match group_boundary_blocks(members, plan) {
                    Some(flags) => {
                        // the overlap schedule: interior blocks while
                        // messages fly, then the finishes, then the
                        // boundary blocks — same order under Blocking,
                        // where `pending` is already empty
                        report.split_groups += 1;
                        let (interior, boundary) = split_blocks_by_color(plan, &flags);
                        report.fused_rounds += active_lists(&interior) + active_lists(&boundary);
                        pool.colored_block_lists(plan, &interior, n_threads, body);
                        waited_in_group += flush(&mut pending, &mut report);
                        pool.colored_block_lists(plan, &boundary, n_threads, body);
                    }
                    None => {
                        report.fused_rounds += active_rounds(plan);
                        pool.colored_blocks(plan, n_threads, body);
                    }
                }
            }
            for l in members {
                if let Some(e) = &l.epilogue {
                    e();
                }
            }
            if let Some(r) = rec {
                if !matches!(members[0].body, Body::Exchange { .. }) {
                    let dt = (t0.elapsed().as_secs_f64() - waited_in_group).max(0.0);
                    let bytes: f64 = members
                        .iter()
                        .map(|l| l.desc.profile.bytes_per_elem(word_bytes) * l.desc.n_elems as f64)
                        .sum();
                    let flops: f64 = members
                        .iter()
                        .map(|l| l.desc.profile.flops_per_elem * l.desc.n_elems as f64)
                        .sum();
                    r.record(&group_label(members), dt, bytes, flops);
                    // Per-member attribution for multi-loop groups: each
                    // fused member is also recorded under its plain loop
                    // name, with the group's time apportioned by byte
                    // share, so per-kernel LoopStats agree between the
                    // fused and unfused paths (singleton groups already
                    // record under the plain name above).
                    if members.len() > 1 {
                        for l in members {
                            let mb =
                                l.desc.profile.bytes_per_elem(word_bytes) * l.desc.n_elems as f64;
                            let mf = l.desc.profile.flops_per_elem * l.desc.n_elems as f64;
                            let share = if bytes > 0.0 {
                                mb / bytes
                            } else {
                                1.0 / members.len() as f64
                            };
                            r.record(&l.desc.profile.name, dt * share, mb, mf);
                        }
                    }
                }
            }
            report.unfused_rounds += members
                .iter()
                .map(|l| self.unfused_rounds_of(l, cache, block_size))
                .sum::<usize>();
            report.bytes_saved += group_bytes_saved(members, word_bytes);
        }
        // a trailing exchange with no consumer still completes
        flush(&mut pending, &mut report);
        if let Some(r) = rec {
            r.record_fusion(
                &self.name,
                FusionStats {
                    executions: 1,
                    loops: report.loops,
                    groups: report.groups,
                    fused_rounds: report.fused_rounds,
                    unfused_rounds: report.unfused_rounds,
                    bytes_saved: report.bytes_saved,
                    steps: 1,
                    cross_step_bytes_saved: 0.0,
                },
            );
        }
        report
    }

    /// Rounds this loop issues when dispatched alone — its own plan from
    /// its own written maps, the unfused drivers' cost.
    fn unfused_rounds_of(
        &self,
        l: &RecordedLoop<'_>,
        cache: &PlanCache,
        block_size: usize,
    ) -> usize {
        match l.body {
            Body::Seq(_) | Body::Exchange { .. } => 0,
            Body::Blocks(_) => {
                let inputs =
                    PlanInputs::merged(l.desc.n_elems, l.written.iter().copied(), block_size);
                let names: Vec<&str> = inputs
                    .written_maps
                    .iter()
                    .map(|m| m.name.as_str())
                    .collect();
                let plan = cache.get(Scheme::TwoLevel, &names, &inputs);
                active_rounds(plan.two_level())
            }
        }
    }
}

/// How [`Chain::execute_policy`] places the receive half of recorded
/// exchanges relative to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangePolicy {
    /// Latency hiding (the default of [`Chain::execute`]): exchanges
    /// finish only when a later loop needs halo data; interior work runs
    /// while messages are in flight.
    Overlap,
    /// Finish every exchange immediately after starting it — the
    /// classical `op_mpi_halo_exchanges`-then-compute schedule, kept as
    /// the measured baseline. Computes in the same order as `Overlap`.
    Blocking,
}

/// Non-empty color rounds of a plan — the pool dispatches one round per
/// non-empty color.
fn active_rounds(plan: &ump_color::TwoLevelPlan) -> usize {
    plan.blocks_by_color
        .iter()
        .filter(|blocks| !blocks.is_empty())
        .count()
}

/// Non-empty color rounds of an explicit per-color block list.
fn active_lists(lists: &[Vec<u32>]) -> usize {
    lists.iter().filter(|blocks| !blocks.is_empty()).count()
}

/// Per-block boundary flags of a fused group: block `b` is boundary when
/// any member loop flags any element of `b`'s range as halo-reading.
/// `None` when no member carries boundary markings (no split).
///
/// Recomputed per execution on purpose: the O(n_elems) flag scan is a
/// few percent of one pass over the same elements' data, and caching it
/// would need a key tying the plan to the flags' identity across
/// borrows — not worth the coupling at current sizes.
fn group_boundary_blocks(
    members: &[RecordedLoop<'_>],
    plan: &ump_color::TwoLevelPlan,
) -> Option<Vec<bool>> {
    let mut any = false;
    let mut out = vec![false; plan.blocks.len()];
    for l in members {
        if let HaloClass::Boundary(flags) = l.halo {
            any = true;
            for (b, r) in plan.blocks.iter().enumerate() {
                if !out[b] && r.clone().any(|e| flags[e as usize]) {
                    out[b] = true;
                }
            }
        }
    }
    any.then_some(out)
}

/// Split a plan's `blocks_by_color` into complementary (interior,
/// boundary) per-color lists following per-block flags. Both halves keep
/// the plan's color structure, so dispatching one after the other never
/// co-schedules conflicting blocks.
fn split_blocks_by_color(
    plan: &ump_color::TwoLevelPlan,
    boundary: &[bool],
) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
    let mut interior: Vec<Vec<u32>> = vec![Vec::new(); plan.blocks_by_color.len()];
    let mut fringe: Vec<Vec<u32>> = vec![Vec::new(); plan.blocks_by_color.len()];
    for (c, blocks) in plan.blocks_by_color.iter().enumerate() {
        for &b in blocks {
            let dst = if boundary[b as usize] {
                &mut fringe
            } else {
                &mut interior
            };
            dst[c].push(b);
        }
    }
    (interior, fringe)
}

fn group_label(members: &[RecordedLoop<'_>]) -> String {
    if members.len() == 1 {
        return members[0].desc.profile.name.clone();
    }
    let names: Vec<&str> = members
        .iter()
        .map(|l| l.desc.profile.name.as_str())
        .collect();
    format!("fused[{}]", names.join("+"))
}

/// Read bytes a fused group does not re-stream: every argument of a
/// later member that *reads* a dat an earlier member already touched
/// would, unfused, stream that dat from memory again — fused, the
/// block's rows are still cache-resident. Paper counting (useful words ×
/// word size), an estimate that ignores cache capacity.
fn group_bytes_saved(members: &[RecordedLoop<'_>], word_bytes: usize) -> f64 {
    let mut saved = 0.0;
    let mut touched: HashSet<&str> = HashSet::new();
    for l in members {
        for a in &l.desc.profile.args {
            if a.ind == Indirection::Global {
                continue;
            }
            if a.access.reads() && touched.contains(a.dat.as_str()) {
                saved += (a.dim * l.desc.n_elems * word_bytes) as f64;
            }
        }
        for a in &l.desc.profile.args {
            if a.ind != Indirection::Global {
                touched.insert(a.dat.as_str());
            }
        }
    }
    saved
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_core::{Access, ArgInfo, LoopProfile, SharedDat};
    use ump_mesh::generators::quad_channel;

    fn desc(name: &str, set: &str, n: usize, args: Vec<ArgInfo>) -> LoopDesc {
        LoopDesc::new(
            LoopProfile {
                name: name.into(),
                set: set.into(),
                args,
                flops_per_elem: 1.0,
                transcendentals_per_elem: 0.0,
                description: String::new(),
            },
            n,
        )
    }

    /// A direct chain (fill → scale → combine) must fuse into one group
    /// and produce bit-identical results to sequential loop-by-loop
    /// execution.
    #[test]
    fn fused_direct_chain_matches_sequential_exactly() {
        let n = 1000;
        let mut reference = (vec![0.0f64; n], vec![0.0f64; n]);
        for e in 0..n {
            reference.0[e] = (e % 13) as f64;
        }
        for e in 0..n {
            reference.1[e] = reference.0[e] * 2.0;
        }
        for e in 0..n {
            reference.1[e] += reference.0[e];
        }

        for shape in [
            Shape::Threaded,
            Shape::Simt {
                width: 8,
                sched_overhead_ns: 0,
            },
            // scalar-recorded loops must degrade gracefully under the
            // SIMD shape (element-wise fallback)
            Shape::Simd { lanes: 4 },
        ] {
            let pool = ExecPool::new(4);
            let cache = PlanCache::new();
            let mut a = vec![0.0f64; n];
            let mut b = vec![0.0f64; n];
            let report;
            {
                let av = SharedDat::new(&mut a);
                let bv = SharedDat::new(&mut b);
                let mut chain = Chain::new("direct");
                {
                    let av = &av;
                    chain.record(
                        desc(
                            "fill",
                            "items",
                            n,
                            vec![ArgInfo::direct("a", 1, Access::Write)],
                        ),
                        vec![],
                        move |e| unsafe { av.slice_mut(e, 1)[0] = (e % 13) as f64 },
                    );
                }
                {
                    let (av, bv) = (&av, &bv);
                    chain.record(
                        desc(
                            "scale",
                            "items",
                            n,
                            vec![
                                ArgInfo::direct("a", 1, Access::Read),
                                ArgInfo::direct("b", 1, Access::Write),
                            ],
                        ),
                        vec![],
                        move |e| unsafe { bv.slice_mut(e, 1)[0] = av.slice(e, 1)[0] * 2.0 },
                    );
                }
                {
                    let (av, bv) = (&av, &bv);
                    chain.record(
                        desc(
                            "combine",
                            "items",
                            n,
                            vec![
                                ArgInfo::direct("a", 1, Access::Read),
                                ArgInfo::direct("b", 1, Access::Inc),
                            ],
                        ),
                        vec![],
                        move |e| unsafe { bv.slice_mut(e, 1)[0] += av.slice(e, 1)[0] },
                    );
                }
                assert_eq!(chain.groups().len(), 1, "direct-only chain must fuse");
                report = chain.execute(&pool, &cache, shape, 0, 64, 8, None);
            }
            assert_eq!(a, reference.0, "{shape:?}");
            assert_eq!(b, reference.1, "{shape:?}");
            // one fused round replaces three unfused ones
            assert_eq!(report.fused_rounds, 1);
            assert_eq!(report.unfused_rounds, 3);
            assert!(report.bytes_saved > 0.0);
        }
    }

    /// An indirect increment fused with a preceding direct producer must
    /// match the sequential reference exactly (integer-valued data), and
    /// a following indirect consumer must be split into its own group.
    #[test]
    fn fused_indirect_group_matches_and_raw_splits() {
        let m = quad_channel(12, 9).mesh;
        let (ne, nc) = (m.n_edges(), m.n_cells());

        // reference: produce a[e], scatter into cells, gather back
        let mut ra = vec![0.0f64; ne];
        let mut racc = vec![0.0f64; nc];
        let mut rout = vec![0.0f64; ne];
        for e in 0..ne {
            ra[e] = (e % 7 + 1) as f64;
        }
        for e in 0..ne {
            let c = m.edge2cell.row(e);
            racc[c[0] as usize] += ra[e];
            racc[c[1] as usize] -= 2.0;
        }
        for e in 0..ne {
            let c = m.edge2cell.row(e);
            rout[e] = racc[c[0] as usize] - racc[c[1] as usize];
        }

        for shape in [
            Shape::Threaded,
            Shape::Simt {
                width: 4,
                sched_overhead_ns: 0,
            },
        ] {
            let pool = ExecPool::new(3);
            let cache = PlanCache::new();
            let mut a = vec![0.0f64; ne];
            let mut acc = vec![0.0f64; nc];
            let mut out = vec![0.0f64; ne];
            let report;
            {
                let av = SharedDat::new(&mut a);
                let accv = SharedDat::new(&mut acc);
                let outv = SharedDat::new(&mut out);
                let mut chain = Chain::new("indirect");
                {
                    let av = &av;
                    chain.record(
                        desc(
                            "fill",
                            "edges",
                            ne,
                            vec![ArgInfo::direct("a", 1, Access::Write)],
                        ),
                        vec![],
                        move |e| unsafe { av.slice_mut(e, 1)[0] = (e % 7 + 1) as f64 },
                    );
                }
                {
                    let (av, accv, m) = (&av, &accv, &m);
                    chain.record_two_phase(
                        desc(
                            "scatter",
                            "edges",
                            ne,
                            vec![
                                ArgInfo::direct("a", 1, Access::Read),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 1),
                            ],
                        ),
                        vec![&m.edge2cell],
                        move |e| {
                            let c = m.edge2cell.row(e);
                            let v = unsafe { av.slice(e, 1)[0] };
                            (c[0] as usize, [v], c[1] as usize, [-2.0])
                        },
                        move |_e, inc| unsafe { ump_core::apply_edge_inc(accv, inc) },
                    );
                }
                {
                    let (accv, outv, m) = (&accv, &outv, &m);
                    chain.record(
                        desc(
                            "gather",
                            "edges",
                            ne,
                            vec![
                                ArgInfo::indirect("acc", 1, Access::Read, "edge2cell", 0),
                                ArgInfo::indirect("acc", 1, Access::Read, "edge2cell", 1),
                                ArgInfo::direct("out", 1, Access::Write),
                            ],
                        ),
                        vec![],
                        move |e| {
                            let c = m.edge2cell.row(e);
                            unsafe {
                                outv.slice_mut(e, 1)[0] = accv.slice(c[0] as usize, 1)[0]
                                    - accv.slice(c[1] as usize, 1)[0];
                            }
                        },
                    );
                }
                let groups = chain.groups();
                // [fill+scatter] fuse; gather (indirect RAW on acc) splits
                assert_eq!(groups.len(), 2, "{groups:?}");
                assert_eq!(groups[0].loops, 0..2);
                report = chain.execute(&pool, &cache, shape, 0, 16, 8, None);
            }
            assert_eq!(a, ra, "{shape:?}");
            assert_eq!(acc, racc, "{shape:?}");
            assert_eq!(out, rout, "{shape:?}");
            assert!(report.fused_rounds < report.unfused_rounds);
        }
    }

    /// Epilogues run after their group and before later groups consume
    /// the merged value; sequential loops dispatch zero pool rounds.
    #[test]
    fn epilogue_order_and_seq_loops() {
        let n = 64usize;
        let pool = ExecPool::new(2);
        let cache = PlanCache::new();
        let mut partial = vec![0.0f64; n.div_ceil(16)];
        let mut total = vec![0.0f64; 1];
        let mut consumed = vec![0.0f64; 1];
        let report;
        {
            let pv = SharedDat::new(&mut partial);
            let tv = SharedDat::new(&mut total);
            let cv = SharedDat::new(&mut consumed);
            let mut chain = Chain::new("reduce");
            {
                let pv = &pv;
                chain.record_blocks(
                    desc(
                        "sum",
                        "items",
                        n,
                        vec![ArgInfo::global("acc", 1, Access::Inc)],
                    ),
                    vec![],
                    move |b, range| {
                        let mut local = 0.0;
                        for e in range {
                            local += e as f64;
                        }
                        unsafe { pv.slice_mut(b, 1)[0] = local };
                    },
                );
            }
            {
                let (pv, tv) = (&pv, &tv);
                chain.epilogue(move || unsafe {
                    let s: f64 = pv.slice(0, pv.len()).iter().sum();
                    tv.slice_mut(0, 1)[0] = s;
                });
            }
            {
                let (tv, cv) = (&tv, &cv);
                chain.record_seq(desc("consume", "bedges", 1, vec![]), move || unsafe {
                    cv.slice_mut(0, 1)[0] = tv.slice(0, 1)[0] * 2.0;
                });
            }
            let r0 = pool.dispatch_rounds();
            report = chain.execute(&pool, &cache, Shape::Threaded, 0, 16, 8, None);
            assert_eq!(
                pool.dispatch_rounds() - r0,
                report.fused_rounds as u64,
                "reported rounds must match the pool counter"
            );
        }
        let expect: f64 = (0..n).map(|e| e as f64).sum();
        assert_eq!(total[0], expect);
        assert_eq!(consumed[0], expect * 2.0);
        assert_eq!(report.fused_rounds, 1);
    }

    /// Loops recorded with explicit vector bodies execute them under
    /// the SIMD shape — and only then — covering every element exactly
    /// once and bit-matching the scalar result for integer data. A
    /// two-phase SIMD loop's serialized chunk scatter must accumulate
    /// exactly like the scalar apply order.
    #[test]
    fn simd_shape_runs_vector_bodies_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let m = quad_channel(11, 7).mesh;
        let (ne, nc) = (m.n_edges(), m.n_cells());
        const LANES: usize = 4;

        // reference: fill a, scatter into cells through edge2cell
        let mut ra = vec![0.0f64; ne];
        let mut racc = vec![0.0f64; nc];
        for e in 0..ne {
            ra[e] = (e % 9 + 1) as f64;
        }
        for e in 0..ne {
            let c = m.edge2cell.row(e);
            racc[c[0] as usize] += ra[e];
            racc[c[1] as usize] -= 3.0;
        }

        for (shape, expect_vector) in [
            (Shape::Simd { lanes: LANES }, true),
            (Shape::Threaded, false),
        ] {
            let pool = ExecPool::new(3);
            let cache = PlanCache::new();
            let vector_chunks = AtomicUsize::new(0);
            let mut a = vec![0.0f64; ne];
            let mut acc = vec![0.0f64; nc];
            {
                let av = SharedDat::new(&mut a);
                let accv = SharedDat::new(&mut acc);
                let mut chain = Chain::new("simd");
                {
                    let (av, vc) = (&av, &vector_chunks);
                    chain.record_simd(
                        desc(
                            "fill",
                            "edges",
                            ne,
                            vec![ArgInfo::direct("a", 1, Access::Write)],
                        ),
                        vec![],
                        LANES,
                        move |e| unsafe { av.slice_mut(e, 1)[0] = (e % 9 + 1) as f64 },
                        move |cs| {
                            vc.fetch_add(1, Ordering::Relaxed);
                            for e in cs..cs + LANES {
                                unsafe { av.slice_mut(e, 1)[0] = (e % 9 + 1) as f64 };
                            }
                        },
                    );
                }
                {
                    let (av, accv, vc, m) = (&av, &accv, &vector_chunks, &m);
                    chain.record_simd_two_phase(
                        desc(
                            "scatter",
                            "edges",
                            ne,
                            vec![
                                ArgInfo::direct("a", 1, Access::Read),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 1),
                            ],
                        ),
                        vec![&m.edge2cell],
                        LANES,
                        move |e| {
                            let c = m.edge2cell.row(e);
                            let v = unsafe { av.slice(e, 1)[0] };
                            (c[0] as usize, [v], c[1] as usize, [-3.0])
                        },
                        move |_e, inc| unsafe { ump_core::apply_edge_inc(accv, inc) },
                        move |cs| {
                            vc.fetch_add(1, Ordering::Relaxed);
                            // serialized lane scatter in ascending order —
                            // the same accumulation order as the scalar path
                            for e in cs..cs + LANES {
                                let c = m.edge2cell.row(e);
                                unsafe {
                                    let v = av.slice(e, 1)[0];
                                    accv.slice_mut(c[0] as usize, 1)[0] += v;
                                    accv.slice_mut(c[1] as usize, 1)[0] -= 3.0;
                                }
                            }
                        },
                    );
                }
                chain.execute(&pool, &cache, shape, 0, 16, 8, None);
            }
            assert_eq!(a, ra, "{shape:?}");
            assert_eq!(acc, racc, "{shape:?}");
            let chunks = vector_chunks.load(Ordering::Relaxed);
            assert_eq!(
                chunks > 0,
                expect_vector,
                "{shape:?}: {chunks} vector chunks"
            );
        }
    }

    /// Executing a chain whose vector bodies were compiled at one width
    /// under a different `Shape::Simd` lane count must panic loudly.
    #[test]
    #[should_panic(expected = "4-lane bodies")]
    fn simd_lane_mismatch_panics() {
        let n = 64;
        let pool = ExecPool::new(1);
        let cache = PlanCache::new();
        let mut a = vec![0.0f64; n];
        let av = SharedDat::new(&mut a);
        let mut chain = Chain::new("mismatch");
        {
            let av = &av;
            chain.record_simd(
                desc(
                    "w",
                    "items",
                    n,
                    vec![ArgInfo::direct("a", 1, Access::Write)],
                ),
                vec![],
                4,
                move |e| unsafe { av.slice_mut(e, 1)[0] = 1.0 },
                move |cs| {
                    for e in cs..cs + 4 {
                        unsafe { av.slice_mut(e, 1)[0] = 1.0 };
                    }
                },
            );
        }
        chain.execute(&pool, &cache, Shape::Simd { lanes: 8 }, 0, 16, 8, None);
    }

    /// The overlap schedule in event order: exchange start → interior
    /// loops and interior blocks of a boundary-marked group → exchange
    /// finish → boundary blocks. Under the blocking policy the finish
    /// follows the start immediately, but the compute order (interior
    /// pass before boundary pass) is identical.
    #[test]
    fn exchange_overlap_defers_finish_until_boundary_blocks() {
        use std::sync::Mutex;

        let n = 64usize;
        let block = 16usize;
        // elements of the last block read "halo" data
        let flags: Vec<bool> = (0..n).map(|e| e >= 48).collect();

        for policy in [ExchangePolicy::Overlap, ExchangePolicy::Blocking] {
            let pool = ExecPool::new(1); // inline: deterministic event order
            let cache = PlanCache::new();
            let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
            let log = |s: String| events.lock().unwrap().push(s);

            let report;
            {
                let mut chain = Chain::new("overlap");
                chain.record_exchange("halo[q]", || log("start".into()), || log("finish".into()));
                // a different set: must not fuse with the split group
                chain.record(
                    desc(
                        "interior_only",
                        "cells",
                        32,
                        vec![ArgInfo::direct("b", 1, Access::Write)],
                    ),
                    vec![],
                    |e| {
                        if e == 0 {
                            log("interior_loop".into());
                        }
                    },
                );
                chain.mark_interior();
                chain.record_blocks(
                    desc(
                        "split_me",
                        "items",
                        n,
                        vec![ArgInfo::direct("a", 1, Access::Rw)],
                    ),
                    vec![],
                    |b, _range| log(format!("block{b}")),
                );
                chain.mark_boundary(&flags);
                report =
                    chain.execute_policy(&pool, &cache, Shape::Threaded, 0, block, 8, None, policy);
            }
            assert_eq!(report.exchanges, 1);
            assert_eq!(report.split_groups, 1);
            // interior loop (1 round) + split group (interior pass 1
            // round + boundary pass 1 round) = 3 rounds
            assert_eq!(report.fused_rounds, 3);

            let ev = events.into_inner().unwrap();
            let pos = |s: &str| ev.iter().position(|e| e == s).unwrap();
            match policy {
                ExchangePolicy::Overlap => {
                    // the interior-marked loop and the split group's
                    // interior blocks both run under the pending
                    // exchange; finish lands before the boundary pass
                    assert!(pos("finish") > pos("interior_loop"), "{ev:?}");
                    assert!(pos("finish") > pos("block2"), "{ev:?}");
                    assert!(pos("finish") < pos("block3"), "{ev:?}");
                }
                ExchangePolicy::Blocking => {
                    assert_eq!(&ev[..2], ["start", "finish"], "{ev:?}");
                }
            }
            // both policies run interior blocks 0..3 before boundary block 3
            assert!(pos("block3") > pos("block0").max(pos("block1")).max(pos("block2")));
        }
    }

    /// A group whose members carry no halo marking must complete pending
    /// exchanges before it runs (it may read halo data anywhere); a
    /// chain ending in an exchange still finishes it.
    #[test]
    fn unknown_groups_flush_and_trailing_exchanges_complete() {
        use std::sync::Mutex;

        let pool = ExecPool::new(1);
        let cache = PlanCache::new();
        let events: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
        let log = |s: &'static str| events.lock().unwrap().push(s);

        let n = 8usize;
        let report;
        {
            let mut chain = Chain::new("flush");
            chain.record_exchange("halo[a]", || log("start_a"), || log("finish_a"));
            chain.record(desc("unknown", "items", n, vec![]), vec![], move |e| {
                if e == 0 {
                    log("unknown_loop");
                }
            });
            chain.record_exchange("halo[b]", || log("start_b"), || log("finish_b"));
            report = chain.execute(&pool, &cache, Shape::Threaded, 0, 4, 8, None);
        }
        assert_eq!(report.exchanges, 2);
        let ev = events.into_inner().unwrap();
        assert_eq!(
            ev,
            ["start_a", "finish_a", "unknown_loop", "start_b", "finish_b"]
        );
    }

    /// Overlap and blocking policies must produce bit-identical numeric
    /// results on an indirect-increment chain — the split schedule is
    /// the same; only the exchange placement moves.
    #[test]
    fn overlap_and_blocking_are_bit_identical() {
        let m = quad_channel(13, 9).mesh;
        let (ne, nc) = (m.n_edges(), m.n_cells());
        let flags: Vec<bool> = (0..ne).map(|e| e % 5 == 0).collect();

        let run = |policy: ExchangePolicy| -> Vec<f64> {
            let pool = ExecPool::new(3);
            let cache = PlanCache::new();
            let mut acc = vec![0.0f64; nc];
            {
                let accv = SharedDat::new(&mut acc);
                let mut chain = Chain::new("bits");
                chain.record_exchange("halo[acc]", || {}, || {});
                {
                    let (accv, m) = (&accv, &m);
                    chain.record_two_phase(
                        desc(
                            "scatter",
                            "edges",
                            ne,
                            vec![
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 0),
                                ArgInfo::indirect("acc", 1, Access::Inc, "edge2cell", 1),
                            ],
                        ),
                        vec![&m.edge2cell],
                        move |e| {
                            let c = m.edge2cell.row(e);
                            let v = 1.0 / (e as f64 + 1.0);
                            (c[0] as usize, [v], c[1] as usize, [-v * 0.5])
                        },
                        move |_e, inc| unsafe { ump_core::apply_edge_inc(accv, inc) },
                    );
                    chain.mark_boundary(&flags);
                }
                let report =
                    chain.execute_policy(&pool, &cache, Shape::Threaded, 0, 16, 8, None, policy);
                assert_eq!(report.split_groups, 1);
            }
            acc
        };

        let overlap = run(ExchangePolicy::Overlap);
        let blocking = run(ExchangePolicy::Blocking);
        assert!(
            overlap
                .iter()
                .zip(&blocking)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "overlap and blocking diverged"
        );
    }

    /// Group timing and fusion stats land in the recorder.
    #[test]
    fn recorder_receives_group_times_and_fusion_stats() {
        let n = 128;
        let pool = ExecPool::new(2);
        let cache = PlanCache::new();
        let rec = Recorder::new();
        let mut a = vec![0.0f64; n];
        {
            let av = SharedDat::new(&mut a);
            let mut chain = Chain::new("stats");
            {
                let av = &av;
                chain.record(
                    desc(
                        "w",
                        "items",
                        n,
                        vec![ArgInfo::direct("a", 1, Access::Write)],
                    ),
                    vec![],
                    move |e| unsafe { av.slice_mut(e, 1)[0] = 1.0 },
                );
            }
            {
                let av = &av;
                chain.record(
                    desc("r", "items", n, vec![ArgInfo::direct("a", 1, Access::Rw)]),
                    vec![],
                    move |e| unsafe { av.slice_mut(e, 1)[0] += 1.0 },
                );
            }
            chain.execute(&pool, &cache, Shape::Threaded, 0, 32, 8, Some(&rec));
        }
        assert!(rec.get("fused[w+r]").is_some());
        let f = rec.fusion("stats").unwrap();
        assert_eq!(f.executions, 1);
        assert_eq!(f.loops, 2);
        assert_eq!(f.groups, 1);
        assert_eq!(f.rounds_saved(), 1);
        // the Rw read of `a` in loop `r` re-reads what `w` wrote
        assert_eq!(f.bytes_saved, (n * 8) as f64);
    }
}
