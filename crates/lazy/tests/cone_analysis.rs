//! Cone-analysis unit tests on hand-built meshes where every k-step
//! dependency cone is computable by hand: a 1D path mesh (edge `e`
//! connects cells `e` and `e+1`) makes footprints exact interval
//! arithmetic, so off-by-one halo-growth bugs show up as exact-range
//! mismatches instead of hiding inside an end-to-end tolerance.

// Footprints are `Vec<Range<usize>>`; single-interval literals like
// `vec![0..9]` are exactly what we assert against.
#![allow(clippy::single_range_in_vec_init)]

use ump_core::{Access, ArgInfo, ExecPool, LoopProfile};
use ump_lazy::{LoopDesc, TiledChain};
use ump_mesh::MapTable;

fn desc(name: &str, set: &str, n: usize, args: Vec<ArgInfo>) -> LoopDesc {
    LoopDesc::new(
        LoopProfile {
            name: name.into(),
            set: set.into(),
            args,
            flops_per_elem: 1.0,
            transcendentals_per_elem: 0.0,
            description: String::new(),
        },
        n,
    )
}

/// edge `e` → cells `e`, `e+1`: the 1D path mesh.
fn path_edge2cell(n_cells: usize) -> MapTable {
    let n_edges = n_cells - 1;
    let data: Vec<i32> = (0..n_edges as i32).flat_map(|e| [e, e + 1]).collect();
    MapTable::new("edge2cell", n_edges, n_cells, 2, data)
}

fn gather_desc(n_edges: usize) -> LoopDesc {
    // f[e] = u[c0] + u[c1]
    desc(
        "gather",
        "edges",
        n_edges,
        vec![
            ArgInfo::indirect("u", 1, Access::Read, "edge2cell", 0),
            ArgInfo::indirect("u", 1, Access::Read, "edge2cell", 1),
            ArgInfo::direct("f", 1, Access::Write),
        ],
    )
}

fn scatter_desc(n_edges: usize) -> LoopDesc {
    // u[c0] += f[e]; u[c1] += f[e]
    desc(
        "scatter",
        "edges",
        n_edges,
        vec![
            ArgInfo::direct("f", 1, Access::Read),
            ArgInfo::indirect("u", 1, Access::Inc, "edge2cell", 0),
            ArgInfo::indirect("u", 1, Access::Inc, "edge2cell", 1),
        ],
    )
}

/// Record `steps` gather/scatter steps of the path mesh into a chain
/// over the given backing storage.
fn record_path<'a>(
    map: &'a MapTable,
    u: &'a mut [i64],
    f: &'a mut [i64],
    steps: usize,
) -> TiledChain<'a, i64> {
    let n_cells = map.to_size;
    let n_edges = map.from_size;
    let mut chain = TiledChain::new("path");
    chain.register_set("cells", n_cells);
    chain.register_set("edges", n_edges);
    chain.register_map(map);
    let u_id = chain.register_dat("u", "cells", 1, u);
    let f_id = chain.register_dat("f", "edges", 1, f);
    for _ in 0..steps {
        chain.begin_step();
        chain.record(gather_desc(n_edges), move |ctx, e| {
            let u = ctx.dat(u_id);
            let v = u[e] + u[e + 1];
            unsafe { ctx.dat_mut(f_id)[e] = v };
        });
        chain.record(scatter_desc(n_edges), move |ctx, e| {
            let v = ctx.dat(f_id)[e];
            let u = unsafe { ctx.dat_mut(u_id) };
            u[e] += v;
            u[e + 1] += v;
        });
    }
    chain
}

/// The same computation, straight-line sequential.
fn reference(n_cells: usize, u: &mut [i64], steps: usize) {
    let n_edges = n_cells - 1;
    let mut f = vec![0i64; n_edges];
    for _ in 0..steps {
        for e in 0..n_edges {
            f[e] = u[e] + u[e + 1];
        }
        for e in 0..n_edges {
            u[e] += f[e];
            u[e + 1] += f[e];
        }
    }
}

// dat registration order in record_path: u = 0, f = 1
const U: usize = 0;
const F: usize = 1;

#[test]
fn one_step_cone_footprints_are_exact() {
    // 16 cells, 15 edges, block 4, 2 blocks/tile → 2 tiles:
    // tile 0 owns edges [0,8) and cells [0,8); tile 1 the rest
    let map = path_edge2cell(16);
    let (mut u, mut f) = (vec![0i64; 16], vec![0i64; 15]);
    let chain = record_path(&map, &mut u, &mut f, 1);
    let sched = chain.schedule(8, 4);
    assert_eq!(sched.n_tiles, 2);
    assert_eq!(sched.epochs.len(), 1, "no globals: one epoch");
    assert_eq!(sched.owned[1], vec![0..8, 8..15], "edge ownership");
    assert_eq!(sched.owned[0], vec![0..8, 8..16], "cell ownership");

    let t0 = &sched.epochs[0].tiles[0];
    let t1 = &sched.epochs[0].tiles[1];
    // tile 0 (left boundary): scatter needs edges into owned cells
    // [0,8) = edges [0,8); gather produces exactly those f rows (the
    // direct Write kills the f need), reading cells [0,9)
    assert_eq!(t0.iters, vec![vec![0..8], vec![0..8]]);
    assert_eq!(t0.copy_in, vec![(U, vec![0..9])]);
    // tile 1: cells [8,16) pull in edge 7 — the shared fringe — and
    // cells [7,16)
    assert_eq!(t1.iters, vec![vec![7..15], vec![7..15]]);
    assert_eq!(t1.copy_in, vec![(U, vec![7..16])]);
    // f is written before every read inside the epoch: never copied in
    for t in [t0, t1] {
        assert!(
            t.copy_in.iter().all(|(d, _)| *d != F),
            "direct Write must kill the f need"
        );
    }
    // write-back is exactly the owned rows of the written dats
    assert_eq!(t0.copy_out, vec![(U, 0..8), (F, 0..8)]);
    assert_eq!(t1.copy_out, vec![(U, 8..16), (F, 8..15)]);

    // redundant fringe: edge 7 runs in both tiles, in both loops
    assert_eq!(sched.essential_iters, 30);
    assert_eq!(sched.executed_iters, 32);
    let expect = 2.0 / 30.0;
    assert!((sched.redundant_fraction() - expect).abs() < 1e-15);
}

#[test]
fn cone_grows_one_halo_layer_per_step() {
    let map = path_edge2cell(16);
    let (mut u, mut f) = (vec![0i64; 16], vec![0i64; 15]);
    let chain = record_path(&map, &mut u, &mut f, 2);
    let sched = chain.schedule(8, 4);
    assert_eq!(sched.epochs.len(), 1, "two steps, no globals: one epoch");
    let t1 = &sched.epochs[0].tiles[1];
    // step-2 loops need edges [7,15); one step further back the cone
    // widens exactly one edge: step-1 loops run [6,15)
    assert_eq!(
        t1.iters,
        vec![vec![6..15], vec![6..15], vec![7..15], vec![7..15]]
    );
    // and the copy-in footprint widens one cell vs the 1-step cone
    assert_eq!(t1.copy_in, vec![(U, vec![6..16])]);
    let t0 = &sched.epochs[0].tiles[0];
    // the left tile is bounded by the mesh edge: no growth on that side
    assert_eq!(
        t0.iters,
        vec![vec![0..9], vec![0..9], vec![0..8], vec![0..8]]
    );
    assert_eq!(t0.copy_in, vec![(U, vec![0..10])]);
}

#[test]
fn single_tile_has_no_fringe() {
    let map = path_edge2cell(16);
    let (mut u, mut f) = (vec![0i64; 16], vec![0i64; 15]);
    let chain = record_path(&map, &mut u, &mut f, 3);
    // tile ≥ mesh → one tile, zero redundancy
    let sched = chain.schedule(1000, 4);
    assert_eq!(sched.n_tiles, 1);
    assert_eq!(sched.executed_iters, sched.essential_iters);
    assert_eq!(sched.redundant_fraction(), 0.0);
}

#[test]
fn tiled_execution_is_bit_identical_to_sequential() {
    let n_cells = 37; // deliberately not a multiple of the block size
    let map = path_edge2cell(n_cells);
    let mut expect: Vec<i64> = (0..n_cells as i64).map(|i| i * 7 % 13).collect();
    let pool = ExecPool::new(2);
    for steps in [1usize, 2, 4] {
        for tile_elems in [4usize, 8, 1000] {
            let mut u = expect.clone();
            let mut f = vec![0i64; n_cells - 1];
            let chain = record_path(&map, &mut u, &mut f, steps);
            let sched = chain.schedule(tile_elems, 4);
            let report = chain.execute(&pool, &sched, 2, 1, 8, None);
            assert_eq!(report.rounds, 2, "one epoch → two pool rounds");
            assert_eq!(report.steps, steps);
            drop(chain);
            let mut seq = expect.clone();
            reference(n_cells, &mut seq, steps);
            assert_eq!(u, seq, "steps={steps} tile_elems={tile_elems}");
        }
    }
    reference(n_cells, &mut expect, 1); // silence unused-mut pedantry
}

#[test]
fn global_reuse_cuts_epochs() {
    // Volna's shape: reduce a global, then consume it — every
    // consumption is an epoch barrier, so 2 epochs per recorded step
    let map = path_edge2cell(8);
    let n_edges = 7;
    let mut u = vec![0i64; 8];
    let mut f = vec![0i64; 7];
    let mut chain = TiledChain::new("epochs");
    chain.register_set("cells", 8);
    chain.register_set("edges", n_edges);
    chain.register_map(&map);
    let _u = chain.register_dat("u", "cells", 1, &mut u);
    let f_id = chain.register_dat("f", "edges", 1, &mut f);
    let reduce = desc(
        "reduce",
        "edges",
        n_edges,
        vec![
            ArgInfo::direct("f", 1, Access::Write),
            ArgInfo::global("dt", 1, Access::Inc),
        ],
    );
    let consume = desc(
        "consume",
        "edges",
        n_edges,
        vec![
            ArgInfo::direct("f", 1, Access::Rw),
            ArgInfo::global("dt", 1, Access::Read),
        ],
    );
    for _ in 0..3 {
        chain.begin_step();
        chain.record(reduce.clone(), move |ctx, e| unsafe {
            ctx.dat_mut(f_id)[e] = e as i64;
        });
        chain.record(consume.clone(), move |ctx, e| unsafe {
            ctx.dat_mut(f_id)[e] += 1;
        });
    }
    // cut before every consume (read-after-Inc) and before the next
    // step's reduce (Inc-after-read): 2 epochs per step
    let ranges = chain.epoch_ranges();
    assert_eq!(ranges, vec![0..1, 1..2, 2..3, 3..4, 4..5, 5..6]);

    // airfoil's shape — the global is reduced (Inc) but never consumed
    // in-chain — needs no cuts at all
    let mut f2 = vec![0i64; 7];
    let mut rms_only = TiledChain::<i64>::new("rms");
    rms_only.register_set("edges", n_edges);
    let g = rms_only.register_dat("f", "edges", 1, &mut f2);
    for _ in 0..3 {
        rms_only.begin_step();
        rms_only.record(reduce.clone(), move |ctx, e| unsafe {
            ctx.dat_mut(g)[e] = e as i64;
        });
    }
    assert_eq!(rms_only.epoch_ranges(), vec![0..3]);
}
