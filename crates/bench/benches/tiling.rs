//! Cross-timestep sparse tiling vs the fused-threaded baseline: N
//! recorded timesteps swept tile-by-tile (each tile's working set stays
//! cache-resident across all N steps, at the price of redundant fringe
//! compute) against the same N steps through `step_fused_on`.
//!
//! Both variants run on SoA storage — the layout the fused chains
//! execute natively, which the tiled executor shims through AoS like
//! the other non-fused backends — and are sampled *interleaved* (one
//! N-step fused chunk, one N-step tiled sweep, repeated) so slow host
//! drift cancels out of the ratio, the same paired scheme as
//! `benches/fusion.rs`. Results land in `BENCH_tiling.json` at the repo
//! root, recording the tile size, steps per tile, pool rounds, and the
//! measured redundant-compute fraction and copy traffic from the
//! executor's `TileReport`.
//!
//! Each tiled sample includes the *inspector* — re-recording the
//! super-chain and re-running the cone analysis — as well as the
//! executor sweep, since the current API derives the schedule per
//! invocation. The dispatch-round reduction is the robust win at this
//! mesh scale; wall-clock parity needs the inspector amortized over
//! many sweeps of a frozen schedule, as in the OP2 tiling lineage.

use std::cell::RefCell;
use ump_apps::{airfoil, volna};
use ump_core::{ExecPool, Layout, PlanCache};
use ump_lazy::{Shape, TileReport};
use ump_simd::isa_name;
use ump_tune::HostProbe;

/// Requested team size, clamped to the probed core count (see
/// `benches/fusion.rs` for why).
const TEAM_REQUESTED: usize = 4;
const BLOCK: usize = 1024;
/// Timesteps recorded into one tiled super-chain (and the fused chunk
/// it is paired against).
const STEPS: usize = 4;
/// Anchor blocks per tile: `tile_cells = TILE_BLOCKS × BLOCK`.
const TILE_BLOCKS: usize = 16;
/// Interleaved (fused chunk, tiled sweep) pairs per app.
const PAIRS: usize = 15;

struct AppResult {
    name: &'static str,
    cells: usize,
    edges: usize,
    fused_ns: f64,
    tiled_ns: f64,
    rounds_fused: u64,
    rounds_tiled: u64,
    report: TileReport,
}

fn main() {
    let team = TEAM_REQUESTED.min(HostProbe::measure().cores.max(1));
    let pool = ExecPool::new(team);
    let tile_cells = TILE_BLOCKS * BLOCK;
    let mut results = Vec::new();

    // Airfoil, DP, 300x150 (the fusion bench's mesh)
    {
        let cache = PlanCache::new();
        let sim = RefCell::new(airfoil::Airfoil::<f64>::new(300, 150));
        sim.borrow_mut().set_layout(Layout::Soa);
        let (nc, ne) = {
            let s = sim.borrow();
            (s.case.mesh.n_cells(), s.case.mesh.n_edges())
        };
        let (fused_ns, tiled_ns) = paired_medians(
            PAIRS,
            || {
                for _ in 0..STEPS {
                    airfoil::drivers::step_fused_on(
                        &pool,
                        &mut sim.borrow_mut(),
                        &cache,
                        Shape::Threaded,
                        0,
                        BLOCK,
                        None,
                    );
                }
            },
            || {
                airfoil::drivers::run_tiled_on::<f64, 1>(
                    &mut sim.borrow_mut(),
                    &pool,
                    0,
                    STEPS,
                    tile_cells,
                    BLOCK,
                    None,
                );
            },
        );
        println!("bench: airfoil_tiling/fused_{STEPS}steps median_ns={fused_ns:.1} paired={PAIRS}");
        println!("bench: airfoil_tiling/tiled_{STEPS}steps median_ns={tiled_ns:.1} paired={PAIRS}");

        let r0 = pool.dispatch_rounds();
        for _ in 0..STEPS {
            airfoil::drivers::step_fused_on(
                &pool,
                &mut sim.borrow_mut(),
                &cache,
                Shape::Threaded,
                0,
                BLOCK,
                None,
            );
        }
        let rounds_fused = pool.dispatch_rounds() - r0;
        let r1 = pool.dispatch_rounds();
        let (_, report) = airfoil::drivers::run_tiled_report_on::<f64, 1>(
            &mut sim.borrow_mut(),
            &pool,
            0,
            STEPS,
            tile_cells,
            BLOCK,
            None,
        );
        let rounds_tiled = pool.dispatch_rounds() - r1;
        assert!(
            rounds_tiled < rounds_fused,
            "tiling must cut dispatch rounds ({rounds_tiled} vs {rounds_fused})"
        );
        results.push(AppResult {
            name: "airfoil_300x150_dp",
            cells: nc,
            edges: ne,
            fused_ns,
            tiled_ns,
            rounds_fused,
            rounds_tiled,
            report,
        });
    }

    // Volna, SP (the paper's Volna precision)
    {
        let cache = PlanCache::new();
        let sim = RefCell::new(volna::Volna::<f32>::new(150, 150));
        sim.borrow_mut().set_layout(Layout::Soa);
        let (nc, ne) = {
            let s = sim.borrow();
            (s.case.mesh.n_cells(), s.case.mesh.n_edges())
        };
        let (fused_ns, tiled_ns) = paired_medians(
            PAIRS,
            || {
                for _ in 0..STEPS {
                    volna::drivers::step_fused_on(
                        &pool,
                        &mut sim.borrow_mut(),
                        &cache,
                        Shape::Threaded,
                        0,
                        BLOCK,
                        None,
                    );
                }
            },
            || {
                volna::drivers::run_tiled_on::<f32, 1>(
                    &mut sim.borrow_mut(),
                    &pool,
                    0,
                    STEPS,
                    tile_cells,
                    BLOCK,
                    None,
                );
            },
        );
        println!("bench: volna_tiling/fused_{STEPS}steps median_ns={fused_ns:.1} paired={PAIRS}");
        println!("bench: volna_tiling/tiled_{STEPS}steps median_ns={tiled_ns:.1} paired={PAIRS}");

        let r0 = pool.dispatch_rounds();
        for _ in 0..STEPS {
            volna::drivers::step_fused_on(
                &pool,
                &mut sim.borrow_mut(),
                &cache,
                Shape::Threaded,
                0,
                BLOCK,
                None,
            );
        }
        let rounds_fused = pool.dispatch_rounds() - r0;
        let r1 = pool.dispatch_rounds();
        let (_, report) = volna::drivers::run_tiled_report_on::<f32, 1>(
            &mut sim.borrow_mut(),
            &pool,
            0,
            STEPS,
            tile_cells,
            BLOCK,
            None,
        );
        let rounds_tiled = pool.dispatch_rounds() - r1;
        assert!(
            rounds_tiled < rounds_fused,
            "tiling must cut dispatch rounds ({rounds_tiled} vs {rounds_fused})"
        );
        results.push(AppResult {
            name: "volna_150x150_sp",
            cells: nc,
            edges: ne,
            fused_ns,
            tiled_ns,
            rounds_fused,
            rounds_tiled,
            report,
        });
    }

    write_json(&results, team, tile_cells);
}

/// Alternate `a(); b();` `n` times (after one warm-up round each) and
/// return the median per-call nanoseconds of each.
fn paired_medians(n: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b();
    let mut ta = Vec::with_capacity(n);
    let mut tb = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = std::time::Instant::now();
        a();
        ta.push(t0.elapsed().as_nanos() as f64);
        let t0 = std::time::Instant::now();
        b();
        tb.push(t0.elapsed().as_nanos() as f64);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        v[v.len() / 2]
    };
    (med(&mut ta), med(&mut tb))
}

/// Serialize to `BENCH_tiling.json` at the repo root.
fn write_json(results: &[AppResult], team: usize, tile_cells: usize) {
    let rows: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"app\": \"{}\", \"cells\": {}, \"edges\": {}, \
                 \"fused_{STEPS}step_ns\": {:.1}, \"tiled_{STEPS}step_ns\": {:.1}, \
                 \"tiled_speedup\": {:.3}, \
                 \"dispatch_rounds_fused\": {}, \"dispatch_rounds_tiled\": {}, \
                 \"epochs\": {}, \"tiles\": {}, \
                 \"redundant_compute_fraction\": {:.5}, \
                 \"copy_in_bytes\": {:.0}, \"copy_out_bytes\": {:.0}, \
                 \"cross_step_bytes_not_restreamed\": {:.0}}}",
                r.name,
                r.cells,
                r.edges,
                r.fused_ns,
                r.tiled_ns,
                r.fused_ns / r.tiled_ns,
                r.rounds_fused,
                r.rounds_tiled,
                r.report.epochs,
                r.report.tiles,
                r.report.redundant_fraction(),
                r.report.copy_in_bytes,
                r.report.copy_out_bytes,
                r.report.cross_step_bytes_saved,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tiling_tiled_vs_fused_timesteps\",\n  \"team\": {team},\n  \
         \"team_requested\": {TEAM_REQUESTED},\n  \"block_size\": {BLOCK},\n  \
         \"steps_per_tile\": {STEPS},\n  \"tile_cells\": {tile_cells},\n  \
         \"host_cpus\": {},\n  \"isa\": \"{}\",\n  \"layout\": \"soa\",\n  \
         \"sampling\": \"interleaved_pairs\",\n  \"pairs\": {PAIRS},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        isa_name(),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tiling.json");
    std::fs::write(path, &json).expect("writing BENCH_tiling.json");
    println!("# wrote {path}");
    for r in results {
        println!(
            "# {}: tiled {:.2}x over {STEPS}-step fused, rounds {} -> {}, redundancy {:.3}",
            r.name,
            r.fused_ns / r.tiled_ns,
            r.rounds_fused,
            r.rounds_tiled,
            r.report.redundant_fraction()
        );
    }
}
