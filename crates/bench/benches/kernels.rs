//! Criterion: per-kernel scalar vs explicitly vectorized execution —
//! the host-measurable core of the paper's claim (Fig. 6 / Table VII).

use criterion::{criterion_group, criterion_main, Criterion};
use ump_apps::airfoil::{drivers, Airfoil};
use ump_apps::volna::{self, Volna};
use ump_core::{ExecPool, PlanCache};

fn airfoil_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("airfoil_step");
    group.sample_size(10);
    let (nx, ny) = (300, 150);
    // one persistent team shared by every threaded benchmark below
    let pool = ExecPool::new(0);

    group.bench_function("scalar_dp", |b| {
        let mut sim = Airfoil::<f64>::new(nx, ny);
        b.iter(|| drivers::step_seq(&mut sim, None));
    });
    group.bench_function("simd_dp_l4", |b| {
        let mut sim = Airfoil::<f64>::new(nx, ny);
        b.iter(|| drivers::step_simd::<f64, 4>(&mut sim, None));
    });
    group.bench_function("simd_dp_l8", |b| {
        let mut sim = Airfoil::<f64>::new(nx, ny);
        b.iter(|| drivers::step_simd::<f64, 8>(&mut sim, None));
    });
    group.bench_function("scalar_sp", |b| {
        let mut sim = Airfoil::<f32>::new(nx, ny);
        b.iter(|| drivers::step_seq(&mut sim, None));
    });
    group.bench_function("simd_sp_l8", |b| {
        let mut sim = Airfoil::<f32>::new(nx, ny);
        b.iter(|| drivers::step_simd::<f32, 8>(&mut sim, None));
    });
    group.bench_function("threaded_dp", |b| {
        let mut sim = Airfoil::<f64>::new(nx, ny);
        let cache = PlanCache::new();
        b.iter(|| drivers::step_threaded_on(&pool, &mut sim, &cache, 0, 1024, None));
    });
    group.bench_function("simd_threaded_dp_l4", |b| {
        let mut sim = Airfoil::<f64>::new(nx, ny);
        let cache = PlanCache::new();
        b.iter(|| drivers::step_simd_threaded_on::<f64, 4>(&pool, &mut sim, &cache, 0, 1024, None));
    });
    group.bench_function("simt_dp", |b| {
        let mut sim = Airfoil::<f64>::new(nx, ny);
        let cache = PlanCache::new();
        b.iter(|| drivers::step_simt_on(&pool, &mut sim, &cache, 0, 8, 0, 256, None));
    });
    group.finish();
}

fn coloring_schemes(c: &mut Criterion) {
    // Fig. 8a ablation on the host: original vs full/block permute
    let mut group = c.benchmark_group("res_calc_scheme");
    group.sample_size(10);
    let (nx, ny) = (300, 150);
    for (name, scheme) in [
        ("original", ump_core::Scheme::TwoLevel),
        ("full_permute", ump_core::Scheme::FullPermute),
        ("block_permute", ump_core::Scheme::BlockPermute),
    ] {
        group.bench_function(name, |b| {
            let mut sim = Airfoil::<f64>::new(nx, ny);
            let cache = PlanCache::new();
            b.iter(|| drivers::step_simd_scheme::<f64, 4>(&mut sim, &cache, scheme, 1024, None));
        });
    }
    group.finish();
}

fn volna_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("volna_step");
    group.sample_size(10);
    let (nx, ny) = (150, 150);
    group.bench_function("scalar_sp", |b| {
        let mut sim = Volna::<f32>::new(nx, ny);
        b.iter(|| volna::drivers::step_seq(&mut sim, None));
    });
    group.bench_function("simd_sp_l8", |b| {
        let mut sim = Volna::<f32>::new(nx, ny);
        b.iter(|| volna::drivers::step_simd::<f32, 8>(&mut sim, None));
    });
    group.bench_function("simd_sp_l16", |b| {
        let mut sim = Volna::<f32>::new(nx, ny);
        b.iter(|| volna::drivers::step_simd::<f32, 16>(&mut sim, None));
    });
    group.finish();
}

criterion_group!(benches, airfoil_steps, coloring_schemes, volna_steps);
criterion_main!(benches);
