//! Criterion: plan-construction and partitioning costs — OP2 amortizes
//! these over the time loop via the plan cache; this bench quantifies
//! what is being amortized.

use criterion::{criterion_group, criterion_main, Criterion};
use ump_color::{BlockPermutePlan, FullPermutePlan, PlanInputs, TwoLevelPlan};
use ump_mesh::dual::cell_dual;
use ump_mesh::generators::quad_channel;
use ump_part::{greedy_bfs, rcb};

fn plan_building(c: &mut Criterion) {
    let mesh = quad_channel(200, 100).mesh;
    let mut group = c.benchmark_group("plan_build");
    group.sample_size(10);
    group.bench_function("two_level", |b| {
        b.iter(|| {
            let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 256);
            TwoLevelPlan::build(&inputs)
        })
    });
    group.bench_function("full_permute", |b| {
        b.iter(|| {
            let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 256);
            FullPermutePlan::build(&inputs)
        })
    });
    group.bench_function("block_permute", |b| {
        b.iter(|| {
            let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], 256);
            BlockPermutePlan::build(&inputs)
        })
    });
    group.finish();
}

fn partitioning(c: &mut Criterion) {
    let mesh = quad_channel(200, 100).mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|i| mesh.cell_centroid(i)).collect();
    let dual = cell_dual(&mesh);
    let mut group = c.benchmark_group("partition");
    group.sample_size(10);
    group.bench_function("rcb_8", |b| b.iter(|| rcb(&pts, 8)));
    group.bench_function("greedy_bfs_8", |b| b.iter(|| greedy_bfs(&dual, 8)));
    group.finish();
}

fn mesh_derivation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh");
    group.sample_size(10);
    group.bench_function("quad_channel_200x100", |b| {
        b.iter(|| quad_channel(200, 100))
    });
    group.finish();
}

criterion_group!(benches, plan_building, partitioning, mesh_derivation);
criterion_main!(benches);
