//! Criterion: SIMD primitive ablations — scatter modes (the paper
//! measured masked scatters slower than serialized ones, §4.2) and
//! AoS-vs-SoA gather layout (DESIGN.md ablation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ump_mesh::SplitMix64;
use ump_simd::{F64x4, IdxVec, Mask, VecR};

fn setup(n: usize) -> (Vec<f64>, Vec<i32>) {
    let mut rng = SplitMix64::new(99);
    let data: Vec<f64> = (0..n * 4).map(|i| i as f64 * 0.25).collect();
    let idx: Vec<i32> = (0..n).map(|_| rng.next_below(n) as i32).collect();
    (data, idx)
}

fn scatter_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("scatter_modes");
    let (_, idx) = setup(1 << 16);
    let mut out = vec![0.0f64; (1 << 16) * 4];
    group.bench_function("serialized", |b| {
        b.iter(|| {
            for chunk in idx.chunks_exact(4) {
                let iv = IdxVec::<4>::from_array([chunk[0], chunk[1], chunk[2], chunk[3]]);
                F64x4::splat(1.0).scatter_add_serial(black_box(&mut out), iv, 4, 0);
            }
        })
    });
    group.bench_function("masked", |b| {
        let mask = Mask::<4>::splat(true);
        b.iter(|| {
            for chunk in idx.chunks_exact(4) {
                let iv = IdxVec::<4>::from_array([chunk[0], chunk[1], chunk[2], chunk[3]]);
                F64x4::splat(1.0).scatter_add_masked(black_box(&mut out), iv, 4, 0, mask);
            }
        })
    });
    group.finish();
}

fn gather_layout(c: &mut Criterion) {
    // AoS gather (data[idx*4+d] per component) vs SoA-contiguous loads
    let mut group = c.benchmark_group("gather_layout");
    let (data, idx) = setup(1 << 16);
    group.bench_function("aos_gather", |b| {
        b.iter(|| {
            let mut acc = F64x4::zero();
            for chunk in idx.chunks_exact(4) {
                let iv = IdxVec::<4>::from_array([chunk[0], chunk[1], chunk[2], chunk[3]]);
                for d in 0..4 {
                    acc += F64x4::gather(black_box(&data), iv, 4, d);
                }
            }
            acc.reduce_sum()
        })
    });
    group.bench_function("contiguous_load", |b| {
        b.iter(|| {
            let mut acc = F64x4::zero();
            for i in (0..data.len()).step_by(4) {
                acc += F64x4::load(black_box(&data), i);
            }
            acc.reduce_sum()
        })
    });
    group.finish();
}

fn vector_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("vector_math");
    let xs: Vec<f64> = (1..=4096).map(|i| i as f64).collect();
    group.bench_function("sqrt_vec4", |b| {
        b.iter(|| {
            let mut acc = F64x4::zero();
            for i in (0..xs.len()).step_by(4) {
                acc += F64x4::load(black_box(&xs), i).sqrt();
            }
            acc.reduce_sum()
        })
    });
    group.bench_function("sqrt_scalar", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &x in black_box(&xs) {
                acc += x.sqrt();
            }
            acc
        })
    });
    group.bench_function("fma_vec8", |b| {
        let v = VecR::<f64, 8>::splat(1.0001);
        b.iter(|| {
            let mut acc = VecR::<f64, 8>::splat(1.0);
            for _ in 0..512 {
                acc = acc.mul_add(v, v);
            }
            acc.reduce_sum()
        })
    });
    group.finish();
}

criterion_group!(benches, scatter_modes, gather_layout, vector_math);
criterion_main!(benches);
