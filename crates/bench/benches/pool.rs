//! Persistent-pool vs spawn-per-round dispatch cost (the motivation for
//! `ump_core::ExecPool`): the paper's OpenMP backend amortizes its thread
//! team across all color rounds, while a scoped spawn-per-round executor
//! pays thread create/join on every color of every loop.
//!
//! Two bodies are measured over the 300×150 Airfoil mesh's edge plan at
//! block sizes {256, 1024, 4096}:
//!
//! * `dispatch` — a near-empty body: isolates per-round dispatch latency
//!   (the quantity the spawn-per-round executor loses on),
//! * `increment` — the real two-sided edge→cell increment: shows how
//!   much of a light kernel's wall time dispatch used to eat.
//!
//! Results are also written to `BENCH_pool.json` at the repo root, with
//! per-color-round latencies and the pool-vs-spawn speedup at block 1024.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{black_box, Criterion};
use ump_color::{PlanInputs, TwoLevelPlan};
use ump_core::{exec::SharedDat, ExecPool};
use ump_mesh::generators::quad_channel;

/// Team size for both executors. Explicit (not `default_threads`) so the
/// comparison exercises real cross-thread dispatch even on single-core
/// CI containers.
const TEAM: usize = 4;

/// The pre-`ExecPool` executor, reproduced verbatim as the baseline:
/// `std::thread::scope` + `spawn` per color round, one block per
/// cursor fetch.
fn spawn_colored_blocks(
    plan: &TwoLevelPlan,
    n_threads: usize,
    body: impl Fn(usize, Range<u32>) + Sync,
) {
    for blocks in &plan.blocks_by_color {
        if blocks.is_empty() {
            continue;
        }
        if n_threads == 1 || blocks.len() == 1 {
            for &b in blocks {
                body(b as usize, plan.blocks[b as usize].clone());
            }
            continue;
        }
        let cursor = AtomicUsize::new(0);
        let workers = n_threads.min(blocks.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= blocks.len() {
                        break;
                    }
                    let b = blocks[i] as usize;
                    body(b, plan.blocks[b].clone());
                });
            }
        });
    }
}

struct Case {
    block_size: usize,
    plan: TwoLevelPlan,
    color_rounds: usize,
}

fn main() {
    let mut criterion = Criterion::default();
    let mesh = quad_channel(300, 150).mesh;
    let (ne, nc) = (mesh.n_edges(), mesh.n_cells());
    println!("# 300x150 Airfoil mesh: {ne} edges, {nc} cells, team = {TEAM}");

    let cases: Vec<Case> = [256usize, 1024, 4096]
        .into_iter()
        .map(|block_size| {
            let inputs = PlanInputs::new(ne, vec![&mesh.edge2cell], block_size);
            let plan = TwoLevelPlan::build(&inputs);
            let color_rounds = plan
                .blocks_by_color
                .iter()
                .filter(|blocks| !blocks.is_empty())
                .count();
            println!(
                "# block {block_size}: {} blocks in {color_rounds} color rounds",
                plan.blocks.len()
            );
            Case {
                block_size,
                plan,
                color_rounds,
            }
        })
        .collect();

    let pool = ExecPool::new(TEAM);

    {
        let mut group = criterion.benchmark_group("dispatch");
        group.sample_size(20);
        for case in &cases {
            let plan = &case.plan;
            group.bench_function(&format!("spawn/block{}", case.block_size), |b| {
                b.iter(|| {
                    spawn_colored_blocks(plan, TEAM, |b, range| {
                        black_box((b, range.start, range.end));
                    })
                });
            });
            group.bench_function(&format!("pool/block{}", case.block_size), |b| {
                b.iter(|| {
                    pool.colored_blocks(plan, 0, |b, range| {
                        black_box((b, range.start, range.end));
                    })
                });
            });
        }
        group.finish();
    }

    {
        let mut group = criterion.benchmark_group("increment");
        group.sample_size(20);
        for case in &cases {
            let plan = &case.plan;
            let mut out = vec![0.0f64; nc];
            group.bench_function(&format!("spawn/block{}", case.block_size), |b| {
                let shared = SharedDat::new(&mut out);
                b.iter(|| {
                    spawn_colored_blocks(plan, TEAM, |_b, range| {
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            unsafe {
                                shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                                shared.slice_mut(c[1] as usize, 1)[0] -= 1.0;
                            }
                        }
                    })
                });
            });
            let mut out2 = vec![0.0f64; nc];
            group.bench_function(&format!("pool/block{}", case.block_size), |b| {
                let shared = SharedDat::new(&mut out2);
                b.iter(|| {
                    pool.colored_blocks(plan, 0, |_b, range| {
                        for e in range.start as usize..range.end as usize {
                            let c = mesh.edge2cell.row(e);
                            unsafe {
                                shared.slice_mut(c[0] as usize, 1)[0] += 1.0;
                                shared.slice_mut(c[1] as usize, 1)[0] -= 1.0;
                            }
                        }
                    })
                });
            });
        }
        group.finish();
    }

    write_json(&criterion, &cases, ne, nc);
}

/// Serialize the collected stats to `BENCH_pool.json` at the repo root.
fn write_json(criterion: &Criterion, cases: &[Case], ne: usize, nc: usize) {
    let rounds_of = |id: &str| {
        cases
            .iter()
            .find(|c| id.ends_with(&format!("block{}", c.block_size)))
            .map(|c| c.color_rounds)
            .unwrap_or(1)
    };
    let median = |id: &str| {
        criterion
            .collected
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.median_ns)
    };

    let mut entries = Vec::new();
    for stats in &criterion.collected {
        let rounds = rounds_of(&stats.id);
        entries.push(format!(
            "    {{\"id\": \"{}\", \"median_ns_per_pass\": {:.1}, \"min_ns_per_pass\": {:.1}, \
             \"color_rounds\": {}, \"ns_per_round\": {:.1}}}",
            stats.id,
            stats.median_ns,
            stats.min_ns,
            rounds,
            stats.median_ns / rounds as f64
        ));
    }
    let speedup_1024 = match (
        median("dispatch/spawn/block1024"),
        median("dispatch/pool/block1024"),
    ) {
        (Some(spawn), Some(pool)) if pool > 0.0 => spawn / pool,
        _ => f64::NAN,
    };
    let json = format!(
        "{{\n  \"bench\": \"pool_dispatch_vs_spawn\",\n  \"mesh\": {{\"nx\": 300, \"ny\": 150, \
         \"edges\": {ne}, \"cells\": {nc}}},\n  \"team\": {TEAM},\n  \"lanes\": 1,\n  \
         \"host_cpus\": {},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"pool_vs_spawn_speedup_per_round_at_block1024\": {speedup_1024:.2}\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    std::fs::write(path, &json).expect("writing BENCH_pool.json");
    println!("# wrote {path}");
    println!("# pool vs spawn per-round speedup at block 1024: {speedup_1024:.2}x");
}
