//! Fused vs unfused timestep (the motivation for `ump-lazy`): the same
//! physics executed as independent `op_par_loop`s with a pool barrier
//! between each (`step_threaded`) versus recorded into a chain and
//! dispatched one colored round per fused group (`step_fused`).
//!
//! Measured on the 300×150 Airfoil mesh (the pool bench's baseline mesh)
//! and a comparable Volna coastal mesh, with the dispatch rounds per
//! step counted from the pool's own round counter and the chain's
//! saved-bytes estimate taken from the fusion instrumentation. Results
//! land in `BENCH_fusion.json` at the repo root, next to
//! `BENCH_pool.json`; the fused vs fused-SIMD comparison (same chains,
//! scalar vs 4-lane vector bodies) lands in `BENCH_fused_simd.json`.

use criterion::Criterion;
use ump_apps::{airfoil, volna};
use ump_core::{ExecPool, Layout, PlanCache, Recorder};
use ump_lazy::Shape;
use ump_simd::isa_name;
use ump_tune::HostProbe;

/// Requested team size. The harness clamps this to the probed core
/// count: a 4-worker team on a 1-core container measures scheduler
/// churn, not the runtime, and buried the fused-SIMD comparison in
/// oversubscription noise. The clamp is recorded in the bench JSON
/// (`team` vs `team_requested`).
const TEAM_REQUESTED: usize = 4;
const BLOCK: usize = 1024;

struct AppResult {
    name: &'static str,
    cells: usize,
    edges: usize,
    unfused_ns: f64,
    fused_ns: f64,
    rounds_unfused: u64,
    rounds_fused: u64,
    bytes_saved_per_step: f64,
}

fn main() {
    let mut criterion = Criterion::default();
    let team = TEAM_REQUESTED.min(HostProbe::measure().cores.max(1));
    let pool = ExecPool::new(team);
    let mut results = Vec::new();

    // Airfoil, DP, 300x150 (the acceptance mesh)
    {
        let cache = PlanCache::new();
        let mut sim = airfoil::Airfoil::<f64>::new(300, 150);
        let (nc, ne) = (sim.case.mesh.n_cells(), sim.case.mesh.n_edges());
        // warm plans so the measurement is pure execution
        airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, BLOCK, None);
        airfoil::drivers::step_fused_on(&pool, &mut sim, &cache, Shape::Threaded, 0, BLOCK, None);

        let mut group = criterion.benchmark_group("airfoil_step");
        group.sample_size(15);
        group.bench_function("unfused", |b| {
            b.iter(|| airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, BLOCK, None));
        });
        group.bench_function("fused", |b| {
            b.iter(|| {
                airfoil::drivers::step_fused_on(
                    &pool,
                    &mut sim,
                    &cache,
                    Shape::Threaded,
                    0,
                    BLOCK,
                    None,
                )
            });
        });
        group.finish();

        let r0 = pool.dispatch_rounds();
        airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, BLOCK, None);
        let rounds_unfused = pool.dispatch_rounds() - r0;
        let rec = Recorder::new();
        let r1 = pool.dispatch_rounds();
        airfoil::drivers::step_fused_on(
            &pool,
            &mut sim,
            &cache,
            Shape::Threaded,
            0,
            BLOCK,
            Some(&rec),
        );
        let rounds_fused = pool.dispatch_rounds() - r1;
        let stats = rec.fusion("airfoil_step").expect("fusion stats");
        results.push(AppResult {
            name: "airfoil_300x150_dp",
            cells: nc,
            edges: ne,
            unfused_ns: median(&criterion, "airfoil_step/unfused"),
            fused_ns: median(&criterion, "airfoil_step/fused"),
            rounds_unfused,
            rounds_fused,
            bytes_saved_per_step: stats.bytes_saved,
        });
    }

    // Volna, SP (the paper's Volna precision)
    {
        let cache = PlanCache::new();
        let mut sim = volna::Volna::<f32>::new(150, 150);
        let (nc, ne) = (sim.case.mesh.n_cells(), sim.case.mesh.n_edges());
        volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, BLOCK, None);
        volna::drivers::step_fused_on(&pool, &mut sim, &cache, Shape::Threaded, 0, BLOCK, None);

        let mut group = criterion.benchmark_group("volna_step");
        group.sample_size(15);
        group.bench_function("unfused", |b| {
            b.iter(|| volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, BLOCK, None));
        });
        group.bench_function("fused", |b| {
            b.iter(|| {
                volna::drivers::step_fused_on(
                    &pool,
                    &mut sim,
                    &cache,
                    Shape::Threaded,
                    0,
                    BLOCK,
                    None,
                )
            });
        });
        group.finish();

        let r0 = pool.dispatch_rounds();
        volna::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, BLOCK, None);
        let rounds_unfused = pool.dispatch_rounds() - r0;
        let rec = Recorder::new();
        let r1 = pool.dispatch_rounds();
        volna::drivers::step_fused_on(
            &pool,
            &mut sim,
            &cache,
            Shape::Threaded,
            0,
            BLOCK,
            Some(&rec),
        );
        let rounds_fused = pool.dispatch_rounds() - r1;
        let stats = rec.fusion("volna_step").expect("fusion stats");
        results.push(AppResult {
            name: "volna_150x150_sp",
            cells: nc,
            edges: ne,
            unfused_ns: median(&criterion, "volna_step/unfused"),
            fused_ns: median(&criterion, "volna_step/fused"),
            rounds_unfused,
            rounds_fused,
            bytes_saved_per_step: stats.bytes_saved,
        });
    }

    // Fused vs fused-SIMD (the composition PR): identical chains and
    // union-write-set plans, scalar vs vector lane bodies, both on SoA
    // storage (the paper's layout for its vectorized backends; scalar
    // fused times the same on AoS and SoA to within run-to-run noise).
    // The two variants are sampled *interleaved* — one fused step, one
    // fused-SIMD step, repeated — so slow drift of the shared host
    // (frequency, noisy neighbors) cancels out of the ratio instead of
    // biasing whichever variant ran second. The lane count follows the
    // register shape: 4 × f64 and 8 × f32 both fill one 256-bit AVX
    // register.
    let mut simd_entries = Vec::new();

    // Airfoil, DP, L = 4
    {
        let cache = PlanCache::new();
        let sim = std::cell::RefCell::new(airfoil::Airfoil::<f64>::new(300, 150));
        sim.borrow_mut().set_layout(Layout::Soa);
        let (fused_ns, fused_simd_ns) = paired_medians(
            SIMD_PAIRS,
            || {
                airfoil::drivers::step_fused_on(
                    &pool,
                    &mut sim.borrow_mut(),
                    &cache,
                    Shape::Threaded,
                    0,
                    BLOCK,
                    None,
                );
            },
            || {
                airfoil::drivers::step_fused_simd_on::<f64, 4>(
                    &pool,
                    &mut sim.borrow_mut(),
                    &cache,
                    0,
                    BLOCK,
                    None,
                );
            },
        );
        println!(
            "bench: airfoil_fused_simd/fused median_ns_per_iter={fused_ns:.1} paired={SIMD_PAIRS}"
        );
        println!("bench: airfoil_fused_simd/fused_simd4 median_ns_per_iter={fused_simd_ns:.1} paired={SIMD_PAIRS}");

        let r0 = pool.dispatch_rounds();
        airfoil::drivers::step_fused_on(
            &pool,
            &mut sim.borrow_mut(),
            &cache,
            Shape::Threaded,
            0,
            BLOCK,
            None,
        );
        let rounds_fused = pool.dispatch_rounds() - r0;
        let r1 = pool.dispatch_rounds();
        airfoil::drivers::step_fused_simd_on::<f64, 4>(
            &pool,
            &mut sim.borrow_mut(),
            &cache,
            0,
            BLOCK,
            None,
        );
        let rounds_fused_simd = pool.dispatch_rounds() - r1;
        assert!(
            rounds_fused_simd <= rounds_fused,
            "fused-SIMD must not add pool rounds"
        );
        simd_entries.push(SimdResult {
            name: "airfoil_300x150_dp",
            lanes: 4,
            fused_ns,
            fused_simd_ns,
            rounds_fused,
            rounds_fused_simd,
        });
    }

    // Volna, SP, L = 8
    {
        let cache = PlanCache::new();
        let sim = std::cell::RefCell::new(volna::Volna::<f32>::new(150, 150));
        sim.borrow_mut().set_layout(Layout::Soa);
        let (fused_ns, fused_simd_ns) = paired_medians(
            SIMD_PAIRS,
            || {
                volna::drivers::step_fused_on(
                    &pool,
                    &mut sim.borrow_mut(),
                    &cache,
                    Shape::Threaded,
                    0,
                    BLOCK,
                    None,
                );
            },
            || {
                volna::drivers::step_fused_simd_on::<f32, 8>(
                    &pool,
                    &mut sim.borrow_mut(),
                    &cache,
                    0,
                    BLOCK,
                    None,
                );
            },
        );
        println!(
            "bench: volna_fused_simd/fused median_ns_per_iter={fused_ns:.1} paired={SIMD_PAIRS}"
        );
        println!("bench: volna_fused_simd/fused_simd8 median_ns_per_iter={fused_simd_ns:.1} paired={SIMD_PAIRS}");

        let r0 = pool.dispatch_rounds();
        volna::drivers::step_fused_on(
            &pool,
            &mut sim.borrow_mut(),
            &cache,
            Shape::Threaded,
            0,
            BLOCK,
            None,
        );
        let rounds_fused = pool.dispatch_rounds() - r0;
        let r1 = pool.dispatch_rounds();
        volna::drivers::step_fused_simd_on::<f32, 8>(
            &pool,
            &mut sim.borrow_mut(),
            &cache,
            0,
            BLOCK,
            None,
        );
        let rounds_fused_simd = pool.dispatch_rounds() - r1;
        assert!(
            rounds_fused_simd <= rounds_fused,
            "fused-SIMD must not add pool rounds"
        );
        simd_entries.push(SimdResult {
            name: "volna_150x150_sp",
            lanes: 8,
            fused_ns,
            fused_simd_ns,
            rounds_fused,
            rounds_fused_simd,
        });
    }

    write_simd_json(&simd_entries, team);
    write_json(&results, team);
}

/// Interleaved pairs per fused vs fused-SIMD comparison.
const SIMD_PAIRS: usize = 25;

/// Alternate `a(); b();` `n` times (after one warm-up round each) and
/// return the median per-call nanoseconds of each.
fn paired_medians(n: usize, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a();
    b();
    let mut ta = Vec::with_capacity(n);
    let mut tb = Vec::with_capacity(n);
    for _ in 0..n {
        let t0 = std::time::Instant::now();
        a();
        ta.push(t0.elapsed().as_nanos() as f64);
        let t0 = std::time::Instant::now();
        b();
        tb.push(t0.elapsed().as_nanos() as f64);
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|x, y| x.partial_cmp(y).unwrap());
        v[v.len() / 2]
    };
    (med(&mut ta), med(&mut tb))
}

struct SimdResult {
    name: &'static str,
    lanes: usize,
    fused_ns: f64,
    fused_simd_ns: f64,
    rounds_fused: u64,
    rounds_fused_simd: u64,
}

/// Serialize the fused vs fused-SIMD comparison to
/// `BENCH_fused_simd.json` at the repo root.
fn write_simd_json(entries: &[SimdResult], team: usize) {
    let rows: Vec<String> = entries
        .iter()
        .map(|r| {
            format!(
                "    {{\"app\": \"{}\", \"lanes\": {}, \"fused_step_ns\": {:.1}, \
                 \"fused_simd_step_ns\": {:.1}, \"fused_simd_speedup\": {:.3}, \
                 \"dispatch_rounds_fused_per_step\": {}, \
                 \"dispatch_rounds_fused_simd_per_step\": {}}}",
                r.name,
                r.lanes,
                r.fused_ns,
                r.fused_simd_ns,
                r.fused_ns / r.fused_simd_ns,
                r.rounds_fused,
                r.rounds_fused_simd,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fusion_fused_vs_fused_simd_timestep\",\n  \"team\": {team},\n  \
         \"team_requested\": {TEAM_REQUESTED},\n  \"block_size\": {BLOCK},\n  \
         \"host_cpus\": {},\n  \"isa\": \"{}\",\n  \"layout\": \"soa\",\n  \
         \"sampling\": \"interleaved_pairs\",\n  \"pairs\": {SIMD_PAIRS},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        isa_name(),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fused_simd.json");
    std::fs::write(path, &json).expect("writing BENCH_fused_simd.json");
    println!("# wrote {path}");
    for r in entries {
        println!(
            "# {} fused-SIMD{}: {:.2}x over fused, rounds {} vs {}",
            r.name,
            r.lanes,
            r.fused_ns / r.fused_simd_ns,
            r.rounds_fused,
            r.rounds_fused_simd
        );
    }
}

fn median(criterion: &Criterion, id: &str) -> f64 {
    criterion
        .collected
        .iter()
        .find(|s| s.id == id)
        .map(|s| s.median_ns)
        .unwrap_or(f64::NAN)
}

/// Serialize to `BENCH_fusion.json` at the repo root.
fn write_json(results: &[AppResult], team: usize) {
    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"app\": \"{}\", \"cells\": {}, \"edges\": {}, \
                 \"unfused_step_ns\": {:.1}, \"fused_step_ns\": {:.1}, \
                 \"fused_speedup\": {:.3}, \"dispatch_rounds_unfused_per_step\": {}, \
                 \"dispatch_rounds_fused_per_step\": {}, \"rounds_saved_per_step\": {}, \
                 \"bytes_not_restreamed_per_step\": {:.0}}}",
                r.name,
                r.cells,
                r.edges,
                r.unfused_ns,
                r.fused_ns,
                r.unfused_ns / r.fused_ns,
                r.rounds_unfused,
                r.rounds_fused,
                r.rounds_unfused.saturating_sub(r.rounds_fused),
                r.bytes_saved_per_step,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fusion_fused_vs_unfused_timestep\",\n  \"team\": {team},\n  \
         \"team_requested\": {TEAM_REQUESTED},\n  \
         \"block_size\": {BLOCK},\n  \"lanes\": 1,\n  \"host_cpus\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fusion.json");
    std::fs::write(path, &json).expect("writing BENCH_fusion.json");
    println!("# wrote {path}");
    for r in results {
        println!(
            "# {}: fused {:.2}x, rounds {} -> {} per step",
            r.name,
            r.unfused_ns / r.fused_ns,
            r.rounds_unfused,
            r.rounds_fused
        );
    }
}
