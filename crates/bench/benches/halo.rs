//! Halo/compute overlap vs blocking exchange (the distributed fused
//! backend's latency-hiding claim, paper §6.5's MPI-overhead axis).
//!
//! Both configurations run the *same* rank-local fused chain in the same
//! compute order (interior blocks → boundary blocks, bit-identical
//! results); they differ only in where the halo receives complete:
//!
//! * **blocking** — every exchange finishes immediately after its sends
//!   are posted (the classical `op_mpi_halo_exchanges` schedule), so a
//!   rank waits whenever its peer has not reached the matching send yet;
//! * **overlap** — receives are deferred until the first boundary block
//!   needs the data, with the interior blocks of `res_calc` (and the
//!   whole save/adt/update groups) executed while the messages fly.
//!
//! Measured on the 300×150 Airfoil mesh (the pool/fusion benches'
//! baseline) at 2/4/8 ranks, one inline-execution pool per rank — the
//! rank level is the parallel axis under test. The universe models a
//! wire latency per message (`Universe::with_message_latency`, the
//! interconnect analogue of the SIMT backend's `sched_overhead_ns`):
//! without it, this process-local runtime delivers instantly and there
//! is nothing for either schedule to hide. The per-rank seconds spent
//! *waiting inside exchange finishes* come from the chain's halo
//! instrumentation and isolate the hidden latency directly. Results land
//! in `BENCH_halo.json` at the repo root.

use std::time::{Duration, Instant};

use ump_apps::airfoil::mpi::RankState;
use ump_core::{distribute, ExecPool, PlanCache, Recorder};
use ump_lazy::{ExchangePolicy, Shape};
use ump_mesh::generators::quad_channel;
use ump_minimpi::Universe;
use ump_part::rcb;

const BLOCK: usize = 1024;
const THREADS_PER_RANK: usize = 1;
const WARMUP_STEPS: usize = 2;
const STEPS: usize = 20;
const REPS: usize = 7;
/// Modeled wire latency per point-to-point message — the order of a
/// large halo packet on a commodity cluster interconnect.
const WIRE_LATENCY_US: u64 = 500;

struct RankResult {
    ranks: usize,
    halo_cells: usize,
    blocking_s: f64,
    overlap_s: f64,
    blocking_wait_s: f64,
    overlap_wait_s: f64,
}

fn main() {
    let case = quad_channel(300, 150);
    let mut results = Vec::new();

    for ranks in [2usize, 4, 8] {
        let pts: Vec<[f64; 2]> = (0..case.mesh.n_cells())
            .map(|c| case.mesh.cell_centroid(c))
            .collect();
        let partition = rcb(&pts, ranks as u32);
        let locals = distribute(&case.mesh, &partition);
        let halo_cells: usize = locals.iter().map(|lm| lm.cell_halo.recv_volume()).sum();
        let total_cells = case.mesh.n_cells();

        let run = |policy: ExchangePolicy| -> (f64, f64) {
            let mut samples: Vec<(f64, f64)> = Vec::with_capacity(REPS);
            for _ in 0..REPS {
                let rec = Recorder::new();
                let elapsed = {
                    let (case, locals, rec) = (&case, &locals, &rec);
                    let out = Universe::new(ranks)
                        .with_message_latency(Duration::from_micros(WIRE_LATENCY_US))
                        .run(move |comm| {
                            let cache = PlanCache::new();
                            let pool = ExecPool::new(THREADS_PER_RANK);
                            let mut state =
                                RankState::<f64>::new(case, locals[comm.rank()].clone());
                            for _ in 0..WARMUP_STEPS {
                                state.step_fused_chain::<4>(
                                    comm,
                                    &cache,
                                    &pool,
                                    Shape::Threaded,
                                    BLOCK,
                                    total_cells,
                                    policy,
                                    None,
                                    None,
                                );
                            }
                            comm.barrier();
                            let t0 = Instant::now();
                            for _ in 0..STEPS {
                                state.step_fused_chain::<4>(
                                    comm,
                                    &cache,
                                    &pool,
                                    Shape::Threaded,
                                    BLOCK,
                                    total_cells,
                                    policy,
                                    Some(rec),
                                    None,
                                );
                            }
                            comm.barrier();
                            t0.elapsed().as_secs_f64()
                        });
                    // the barriers make every rank's window the makespan
                    out[0]
                };
                let wait = ["halo[q]", "halo[adt]"]
                    .iter()
                    .filter_map(|name| rec.get(name))
                    .map(|s| s.seconds)
                    .sum::<f64>();
                samples.push((elapsed, wait));
            }
            // median sample (robust to scheduler noise on small hosts)
            samples.sort_by(|a, b| a.0.total_cmp(&b.0));
            samples[samples.len() / 2]
        };

        let (blocking_s, blocking_wait_s) = run(ExchangePolicy::Blocking);
        let (overlap_s, overlap_wait_s) = run(ExchangePolicy::Overlap);
        println!(
            "# {ranks} ranks: blocking {blocking_s:.3}s (wait {blocking_wait_s:.3}s) \
             overlap {overlap_s:.3}s (wait {overlap_wait_s:.3}s) speedup {:.3}x",
            blocking_s / overlap_s
        );
        results.push(RankResult {
            ranks,
            halo_cells,
            blocking_s,
            overlap_s,
            blocking_wait_s,
            overlap_wait_s,
        });
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"ranks\": {}, \"halo_cells\": {}, \"blocking_s\": {:.4}, \
                 \"overlap_s\": {:.4}, \"overlap_speedup\": {:.3}, \
                 \"blocking_halo_wait_s\": {:.4}, \"overlap_halo_wait_s\": {:.4}}}",
                r.ranks,
                r.halo_cells,
                r.blocking_s,
                r.overlap_s,
                r.blocking_s / r.overlap_s,
                r.blocking_wait_s,
                r.overlap_wait_s,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"halo_overlap_vs_blocking_exchange\",\n  \"app\": \
         \"airfoil_300x150_dp\",\n  \"backend\": \"mpi_fused\",\n  \"threads_per_rank\": \
         {THREADS_PER_RANK},\n  \"team\": {THREADS_PER_RANK},\n  \"lanes\": 1,\n  \
         \"block_size\": {BLOCK},\n  \"steps\": {STEPS},\n  \
         \"reps\": {REPS},\n  \"wire_latency_us\": {WIRE_LATENCY_US},\n  \
         \"host_cpus\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_halo.json");
    std::fs::write(path, &json).expect("writing BENCH_halo.json");
    println!("# wrote {path}");
}
