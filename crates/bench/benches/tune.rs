//! The autotuning bench: a fixed-backend sweep next to the tuner's own
//! pick, on the same meshes and the same measurement harness, so the
//! recorded `auto_vs_best_fixed` ratio is apples to apples. A warm
//! second pick per app is asserted to be a pure store hit (zero
//! trials). Results land in `BENCH_tune.json` at the repo root with the
//! real host environment (cores, team, lanes, probe) embedded.

use std::time::Instant;
use ump_apps::{airfoil, volna};
use ump_core::{Backend, ExecPool, PlanCache};
use ump_tune::{App, Tuner};

const TEAM: usize = 4;
const BLOCK: usize = 1024;
/// Timed steps per repetition (after one planning warm-up step).
const ITERS: usize = 5;
/// Repetitions; best-of is reported (STREAM convention).
const REPS: usize = 3;

/// The fixed shapes swept as the baseline: the single-threaded ladder
/// plus the pooled/fused shapes the tuner most often shortlists.
fn fixed_backends() -> Vec<Backend> {
    vec![
        Backend::Seq,
        Backend::Threaded,
        Backend::Simd { lanes: 4 },
        Backend::SimdThreaded { lanes: 4 },
        Backend::Fused,
        Backend::FusedSimd { lanes: 4 },
    ]
}

struct Measured {
    backend: String,
    steps_per_sec: f64,
}

struct AppRow {
    app: &'static str,
    cells: usize,
    fixed: Vec<Measured>,
    best_fixed: f64,
    auto_backend: String,
    auto_block: usize,
    auto_lanes: usize,
    auto_steps_per_sec: f64,
    trials: u32,
    warm_trials: u32,
}

/// Best-of-REPS steps/sec for one backend on one prepared sim factory.
fn steps_per_sec<S>(
    pool: &ExecPool,
    mut fresh: impl FnMut() -> S,
    mut step: impl FnMut(&mut S, Backend, usize, &ExecPool, &PlanCache),
    backend: Backend,
    block: usize,
) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut sim = fresh();
        let cache = PlanCache::new();
        step(&mut sim, backend, block, pool, &cache); // warm plans
        let t0 = Instant::now();
        for _ in 0..ITERS {
            step(&mut sim, backend, block, pool, &cache);
        }
        best = best.max(ITERS as f64 / t0.elapsed().as_secs_f64().max(1e-12));
    }
    best
}

fn main() {
    let pool = ExecPool::new(TEAM);
    let tuner = Tuner::new()
        .with_trial_steps(2)
        .with_top_k(6)
        .with_team(TEAM);
    let probe = tuner.probe();
    println!(
        "# host probe: {} cores, {:.1} GB/s triad",
        probe.cores, probe.stream_gbs
    );

    let mut rows = Vec::new();

    // Airfoil, DP
    {
        let (nx, ny) = (120usize, 60usize);
        let fresh = || airfoil::Airfoil::<f64>::seeded(nx, ny, 0);
        let cells = fresh().case.mesh.n_cells();
        let step = |sim: &mut airfoil::Airfoil<f64>,
                    b: Backend,
                    block: usize,
                    pool: &ExecPool,
                    cache: &PlanCache| {
            airfoil::drivers::step_on(b, sim, pool, cache, 0, block, None);
        };
        let fixed: Vec<Measured> = fixed_backends()
            .into_iter()
            .map(|b| Measured {
                backend: b.name(),
                steps_per_sec: steps_per_sec(&pool, fresh, step, b, BLOCK),
            })
            .collect();
        let best_fixed = fixed.iter().map(|m| m.steps_per_sec).fold(0.0, f64::max);

        let choice = tuner.pick(App::Airfoil, nx, ny);
        let auto_sps = steps_per_sec(&pool, fresh, step, choice.backend, choice.block_size);
        let warm = tuner.pick(App::Airfoil, nx, ny);
        assert!(warm.from_store, "second identical tune must hit the store");
        assert_eq!(warm.trials, 0, "warm start ran trials");
        rows.push(AppRow {
            app: "airfoil_120x60_dp",
            cells,
            fixed,
            best_fixed,
            auto_backend: choice.backend.name(),
            auto_block: choice.block_size,
            auto_lanes: choice.backend.lanes(),
            auto_steps_per_sec: auto_sps,
            trials: choice.trials,
            warm_trials: warm.trials,
        });
    }

    // Volna, DP (the service precision)
    {
        let (nx, ny) = (80usize, 60usize);
        let fresh = || volna::Volna::<f64>::seeded(nx, ny, 0);
        let cells = fresh().case.mesh.n_cells();
        let step = |sim: &mut volna::Volna<f64>,
                    b: Backend,
                    block: usize,
                    pool: &ExecPool,
                    cache: &PlanCache| {
            volna::drivers::step_on(b, sim, pool, cache, 0, block, None);
        };
        let fixed: Vec<Measured> = fixed_backends()
            .into_iter()
            .map(|b| Measured {
                backend: b.name(),
                steps_per_sec: steps_per_sec(&pool, fresh, step, b, BLOCK),
            })
            .collect();
        let best_fixed = fixed.iter().map(|m| m.steps_per_sec).fold(0.0, f64::max);

        let choice = tuner.pick(App::Volna, nx, ny);
        let auto_sps = steps_per_sec(&pool, fresh, step, choice.backend, choice.block_size);
        let warm = tuner.pick(App::Volna, nx, ny);
        assert!(warm.from_store && warm.trials == 0);
        rows.push(AppRow {
            app: "volna_80x60_dp",
            cells,
            fixed,
            best_fixed,
            auto_backend: choice.backend.name(),
            auto_block: choice.block_size,
            auto_lanes: choice.backend.lanes(),
            auto_steps_per_sec: auto_sps,
            trials: choice.trials,
            warm_trials: warm.trials,
        });
    }

    write_json(&rows, probe.cores, probe.stream_gbs);
    for r in &rows {
        let ratio = r.auto_steps_per_sec / r.best_fixed.max(1e-12);
        println!(
            "# {}: auto {} ({:.1} steps/s) vs best fixed {:.1} steps/s = {:.2}x, {} trials then {} (store hit)",
            r.app, r.auto_backend, r.auto_steps_per_sec, r.best_fixed, ratio, r.trials, r.warm_trials
        );
    }
}

/// Serialize to `BENCH_tune.json` at the repo root.
fn write_json(rows: &[AppRow], host_cpus: usize, stream_gbs: f64) {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            let fixed: Vec<String> = r
                .fixed
                .iter()
                .map(|m| {
                    format!(
                        "      {{\"backend\": \"{}\", \"steps_per_sec\": {:.2}}}",
                        m.backend, m.steps_per_sec
                    )
                })
                .collect();
            format!(
                "    {{\"app\": \"{}\", \"cells\": {}, \"auto_backend\": \"{}\", \
                 \"auto_block_size\": {}, \"auto_lanes\": {}, \"auto_steps_per_sec\": {:.2}, \
                 \"best_fixed_steps_per_sec\": {:.2}, \"auto_vs_best_fixed\": {:.3}, \
                 \"trials\": {}, \"warm_start_trials\": {}, \"fixed\": [\n{}\n    ]}}",
                r.app,
                r.cells,
                r.auto_backend,
                r.auto_block,
                r.auto_lanes,
                r.auto_steps_per_sec,
                r.best_fixed,
                r.auto_steps_per_sec / r.best_fixed.max(1e-12),
                r.trials,
                r.warm_trials,
                fixed.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"tune_auto_vs_fixed_sweep\",\n  \"team\": {TEAM},\n  \
         \"lanes\": 4,\n  \"block_size\": {BLOCK},\n  \"iters\": {ITERS},\n  \
         \"reps\": {REPS},\n  \"host_cpus\": {},\n  \
         \"probe\": {{\"cores\": {}, \"stream_gbs\": {:.1}}},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        host_cpus,
        stream_gbs,
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tune.json");
    std::fs::write(path, &json).expect("writing BENCH_tune.json");
    println!("# wrote {path}");
}
