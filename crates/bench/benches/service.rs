//! Service-layer throughput: jobs per second through `ump_serve` at
//! 1 / 4 / 16 concurrent jobs over 4 shared pools, on a small and a
//! medium mesh pair. Each batch alternates Airfoil and Volna across a
//! mixed backend set, so the numbers reflect the multiplexed steady
//! state (shared plan cache warm, round-robin slicing) rather than a
//! single job's step rate. Results land in `BENCH_service.json` at the
//! repo root.

use std::time::Instant;

use ump_core::Backend;
use ump_serve::{App, JobSpec, JobStatus, Service, ServiceConfig};

const POOLS: usize = 4;
const TEAM: usize = 2;
const SLICE: u64 = 8;
const STEPS: u64 = 10;
const REPEATS: usize = 3;

struct Scenario {
    mesh: &'static str,
    airfoil: (usize, usize),
    volna: (usize, usize),
}

struct Row {
    mesh: &'static str,
    concurrency: usize,
    jobs_per_sec: f64,
    steps_per_sec: f64,
    seconds: f64,
}

fn batch_specs(s: &Scenario, n: usize, seed0: u64) -> Vec<JobSpec> {
    let backends = [
        Backend::Threaded,
        Backend::Fused,
        Backend::Simd { lanes: 4 },
    ];
    (0..n)
        .map(|j| {
            let backend = backends[j % backends.len()];
            let spec = if j % 2 == 0 {
                JobSpec::new(App::Airfoil, s.airfoil.0, s.airfoil.1, backend, STEPS)
            } else {
                JobSpec::new(App::Volna, s.volna.0, s.volna.1, backend, STEPS)
            };
            spec.with_seed(seed0 + j as u64)
        })
        .collect()
}

/// Submit a whole batch, wait for every outcome, return wall seconds.
fn run_batch(service: &Service, specs: &[JobSpec]) -> f64 {
    let t0 = Instant::now();
    let handles: Vec<_> = specs
        .iter()
        .map(|&spec| {
            service
                .submit(spec)
                .expect("batch fits the admission bound")
        })
        .collect();
    for h in &handles {
        assert_eq!(h.wait().status, JobStatus::Completed);
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let scenarios = [
        Scenario {
            mesh: "small",
            airfoil: (48, 24),
            volna: (20, 14),
        },
        Scenario {
            mesh: "medium",
            airfoil: (150, 75),
            volna: (60, 42),
        },
    ];

    let mut rows = Vec::new();
    for s in &scenarios {
        let service = Service::new(ServiceConfig {
            pools: POOLS,
            team: TEAM,
            admission_capacity: 64,
            slice_steps: SLICE,
            ..ServiceConfig::default()
        });
        // warm the shared plan cache so every measured batch plans from it
        run_batch(&service, &batch_specs(s, 4, 1));

        for &concurrency in &[1usize, 4, 16] {
            let mut times = Vec::with_capacity(REPEATS);
            for rep in 0..REPEATS {
                let seed0 = 1000 + (rep as u64) * 100;
                times.push(run_batch(&service, &batch_specs(s, concurrency, seed0)));
            }
            times.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let seconds = times[times.len() / 2];
            rows.push(Row {
                mesh: s.mesh,
                concurrency,
                jobs_per_sec: concurrency as f64 / seconds,
                steps_per_sec: (concurrency as u64 * STEPS) as f64 / seconds,
                seconds,
            });
            println!(
                "# {} mesh, {:>2} concurrent: {:.1} jobs/s ({:.4}s per batch)",
                s.mesh,
                concurrency,
                concurrency as f64 / seconds,
                seconds
            );
        }

        let stats = service.stats();
        println!(
            "# {} mesh: plan cache {} hits / {} builds across {} jobs",
            s.mesh, stats.plan_hits, stats.plan_builds, stats.completed
        );
        assert!(
            stats.plan_hits > stats.plan_builds,
            "warm batches must plan from the shared cache"
        );
    }

    write_json(&rows);
}

/// Serialize to `BENCH_service.json` at the repo root.
fn write_json(rows: &[Row]) {
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"mesh\": \"{}\", \"concurrent_jobs\": {}, \"jobs_per_sec\": {:.2}, \
                 \"steps_per_sec\": {:.1}, \"batch_seconds\": {:.5}}}",
                r.mesh, r.concurrency, r.jobs_per_sec, r.steps_per_sec, r.seconds
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service_job_throughput\",\n  \"pools\": {POOLS},\n  \
         \"team\": {TEAM},\n  \"lanes\": 1,\n  \"slice_steps\": {SLICE},\n  \
         \"steps_per_job\": {STEPS},\n  \
         \"host_cpus\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("writing BENCH_service.json");
    println!("# wrote {path}");
}
