//! Recovery overhead vs checkpoint period (the resilience layer's
//! core cost/benefit trade: checkpoint often and pay snapshot cost
//! every period, or checkpoint rarely and pay replay cost on failure).
//!
//! For each checkpoint period the resilient distributed driver runs
//! the Airfoil fused chain twice on the same mesh and rank layout:
//!
//! * **clean** — no injected faults; the delta over periods isolates
//!   the steady-state checkpoint tax (snapshotting every evolving dat
//!   each period);
//! * **killed** — rank `ranks-1` is killed at a fixed step; the
//!   coordinated rollback restores every rank from the last
//!   checkpoint and replays, so the overhead over the clean run is
//!   the recovery cost — dominated by `replayed_steps`, which shrinks
//!   as the period shrinks.
//!
//! Every killed run is asserted bit-identical to the clean run before
//! its time is recorded — a number from a diverged run is worthless.
//! Results land in `BENCH_resilience.json` at the repo root.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ump_apps::airfoil;
use ump_core::OpDat;
use ump_fault::FaultPlan;
use ump_lazy::{ExchangePolicy, Shape};
use ump_mesh::generators::quad_channel;

const NX: usize = 120;
const NY: usize = 60;
const RANKS: usize = 2;
const THREADS_PER_RANK: usize = 2;
const BLOCK: usize = 256;
const ITERS: usize = 24;
const KILL_STEP: u64 = 18;
const PERIODS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;
const IO_TIMEOUT: Duration = Duration::from_millis(500);

struct PeriodResult {
    period: usize,
    clean_s: f64,
    killed_s: f64,
    replayed_steps: usize,
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    let case = quad_channel(NX, NY);

    // reference: the plain (non-resilient) fused distributed run the
    // golden guarantee is anchored to
    let (q_ref, _): (OpDat<f64>, _) = airfoil::mpi::run_mpi_fused::<f64, 4>(
        &case,
        RANKS,
        THREADS_PER_RANK,
        BLOCK,
        ITERS,
        Shape::Threaded,
        ExchangePolicy::Overlap,
    );

    let timed = |period: usize, injector: Option<&FaultPlan>| -> (f64, OpDat<f64>, usize) {
        let mut samples = Vec::with_capacity(REPS);
        let mut last = None;
        for _ in 0..REPS {
            let inj = injector.map(|plan| Arc::new(plan.injector()));
            let t0 = Instant::now();
            let (q, _, report) = airfoil::mpi::run_mpi_fused_resilient::<f64, 4>(
                &case,
                RANKS,
                THREADS_PER_RANK,
                BLOCK,
                ITERS,
                Shape::Threaded,
                ExchangePolicy::Overlap,
                period,
                inj,
                IO_TIMEOUT,
            );
            samples.push(t0.elapsed().as_secs_f64());
            last = Some((q, report.replayed_steps));
        }
        samples.sort_by(f64::total_cmp);
        let (q, replayed) = last.unwrap();
        (samples[samples.len() / 2], q, replayed)
    };

    let mut results = Vec::new();
    for period in PERIODS {
        let (clean_s, q_clean, _) = timed(period, None);
        assert!(
            bits_eq(&q_ref.data, &q_clean.data),
            "period {period}: resilient clean run diverged from plain run"
        );

        let plan = FaultPlan::new().with_kill_rank(RANKS - 1, KILL_STEP);
        let (killed_s, q_killed, replayed) = timed(period, Some(&plan));
        assert!(
            bits_eq(&q_ref.data, &q_killed.data),
            "period {period}: recovered run diverged from fault-free run"
        );

        println!(
            "# period {period:>2}: clean {clean_s:.3}s  killed {killed_s:.3}s  \
             overhead {:+.3}s  replayed {replayed} steps",
            killed_s - clean_s
        );
        results.push(PeriodResult {
            period,
            clean_s,
            killed_s,
            replayed_steps: replayed,
        });
    }

    let entries: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"checkpoint_every\": {}, \"clean_s\": {:.4}, \"killed_s\": {:.4}, \
                 \"recovery_overhead_s\": {:.4}, \"replayed_steps\": {}}}",
                r.period,
                r.clean_s,
                r.killed_s,
                r.killed_s - r.clean_s,
                r.replayed_steps,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"recovery_overhead_vs_checkpoint_period\",\n  \"app\": \
         \"airfoil_{NX}x{NY}_dp\",\n  \"backend\": \"mpi_fused\",\n  \"ranks\": {RANKS},\n  \
         \"threads_per_rank\": {THREADS_PER_RANK},\n  \"team\": {THREADS_PER_RANK},\n  \
         \"lanes\": 1,\n  \"block_size\": {BLOCK},\n  \
         \"iters\": {ITERS},\n  \"kill_rank\": {},\n  \"kill_step\": {KILL_STEP},\n  \
         \"reps\": {REPS},\n  \"bit_identical\": true,\n  \"host_cpus\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        RANKS - 1,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    std::fs::write(path, &json).expect("writing BENCH_resilience.json");
    println!("# wrote {path}");
}
