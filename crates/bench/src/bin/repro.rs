//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! Run `repro --help` for usage; the experiment list and the backend
//! registry it prints are generated from the same tables the dispatcher
//! uses ([`EXPERIMENTS`] and `ump_core::Backend::all()`), so the help
//! text can never drift from what actually runs.
//!
//! `repro --smoke [--backends all|name,name,…]` is the tiny-mesh
//! end-to-end sweep of the whole backend registry (distributed shapes
//! included) on both apps via the `step_on` dispatchers; it asserts
//! consistency against the sequential reference plus the fused
//! runtime's round savings, and exits non-zero on divergence.
//!
//! Cross-hardware numbers come from `ump-archsim` (we do not own the
//! paper's four machines — see DESIGN.md); host-measured numbers come
//! from the real backends on this machine. Paper values are printed
//! alongside wherever the paper states them, so the *shape* claims can
//! be eyeballed directly. EXPERIMENTS.md records a full run.

use ump_apps::{airfoil, volna};
use ump_archsim::{machines, predict, Backend, Machine};
use ump_bench::{fmt_s, measure_indirect, work_for, MeasuredLoop, Scale};
use ump_core::{Backend as ExecBackend, ExecPool, PlanCache, Recorder};
use ump_mesh::MeshStats;

/// Every experiment the CLI accepts, in `all` execution order.
const EXPERIMENTS: [&str; 16] = [
    "table1", "table2", "table3", "table4", "fig5", "table5", "fig6", "table6", "fig7", "table7",
    "fig8a", "fig8b", "table8", "table9", "fig9", "fusion",
];

/// Usage text generated from the experiment table and the backend
/// registry — new registry entries appear here automatically.
fn print_help() {
    println!("repro — regenerate the paper's tables and figures");
    println!();
    println!("usage: repro <experiment>|all [--scale small|paper]");
    println!("       repro --smoke [--backends all|auto|name,name,…] [--layout aos|soa|aosoaN]");
    println!("       repro serve-smoke [--inject <seed>]");
    println!();
    println!("experiments:");
    println!("  {}", EXPERIMENTS.join(" "));
    println!();
    println!("backends (ump_core::Backend::all(), the --backends vocabulary;");
    println!("every entry is swept by --smoke and the conformance matrix):");
    for b in ExecBackend::all() {
        let mut caps = Vec::new();
        if b.is_distributed() {
            caps.push(format!("{} ranks", b.ranks()));
        }
        if b.is_fused() {
            caps.push("fused".into());
        }
        if b.lanes() > 1 {
            caps.push(format!("{} lanes", b.lanes()));
        }
        if b.needs_pool() {
            caps.push("pool".into());
        }
        println!("  {:<26} {}", b.name(), caps.join(", "));
    }
    println!(
        "  {:<26} tuner-selected from the registry (ump_tune)",
        "auto"
    );
}

fn main() -> std::process::ExitCode {
    match parse_and_run(std::env::args().skip(1).collect()) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("repro: {msg}");
            eprintln!("repro: run with --help for usage");
            std::process::ExitCode::from(2)
        }
    }
}

/// Parse the CLI and dispatch. Every user-input error is a typed
/// `Err` (exit code 2), never a panic — divergence inside an
/// experiment still panics (exit code 101), which is what CI keys on.
fn parse_and_run(args: Vec<String>) -> Result<(), String> {
    let mut scale = Scale::Small;
    let mut cmd = String::from("all");
    let mut smoke_run = false;
    let mut serve_run = false;
    let mut inject: Option<u64> = None;
    let mut auto_run = false;
    let mut layout = ump_core::Layout::Aos;
    let mut backends: Vec<ExecBackend> = ExecBackend::all();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                scale =
                    Scale::parse(v).ok_or_else(|| format!("bad scale {v} (want small|paper)"))?;
            }
            "--smoke" => smoke_run = true,
            "serve-smoke" | "--serve-smoke" => serve_run = true,
            "--inject" => {
                let v = it.next().ok_or("--inject needs a seed")?;
                inject = Some(
                    v.parse::<u64>()
                        .map_err(|e| format!("bad --inject seed {v}: {e}"))?,
                );
            }
            "--layout" => {
                let v = it.next().ok_or("--layout needs a value (aos|soa|aosoaN)")?;
                layout = ump_core::Layout::parse(v)
                    .ok_or_else(|| format!("bad layout {v} (want aos|soa|aosoaN, e.g. aosoa8)"))?;
            }
            "--backends" => {
                let v = it
                    .next()
                    .ok_or("--backends needs a value (all|auto|name,name,…)")?;
                if v == "auto" {
                    auto_run = true;
                } else if v != "all" {
                    backends = v
                        .split(',')
                        .map(|name| {
                            ExecBackend::parse(name).ok_or_else(|| {
                                let known: Vec<String> =
                                    ExecBackend::all().iter().map(|b| b.name()).collect();
                                format!("unknown backend {name}; registry: {}", known.join(" "))
                            })
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => cmd = other.to_string(),
        }
    }
    if serve_run {
        serve_smoke(inject);
        return Ok(());
    }
    if let Some(seed) = inject {
        return Err(format!("--inject {seed} only applies to serve-smoke"));
    }
    if smoke_run {
        if auto_run {
            if layout != ump_core::Layout::Aos {
                return Err("--layout does not combine with --backends auto".into());
            }
            smoke_auto();
        } else {
            smoke(&backends, layout);
        }
        return Ok(());
    }
    if auto_run {
        return Err("--backends auto only applies to --smoke".into());
    }
    if layout != ump_core::Layout::Aos {
        return Err("--layout only applies to --smoke".into());
    }
    if cmd != "all" && !EXPERIMENTS.contains(&cmd.as_str()) {
        return Err(format!(
            "unknown experiment {cmd}; known: {}",
            EXPERIMENTS.join(" ")
        ));
    }
    let run = |c: &str| match c {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(scale),
        "table5" => table5(scale),
        "table6" => table6(scale),
        "table7" => table7(scale),
        "table8" => table8(scale),
        "table9" => table9(scale),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale),
        "fig8a" => fig8a(scale),
        "fig8b" => fig8b(scale),
        "fig9" => fig9(scale),
        "fusion" => fusion(scale),
        other => unreachable!("experiment {other} validated above"),
    };
    if cmd == "all" {
        for c in EXPERIMENTS {
            run(c);
        }
    } else {
        run(&cmd);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// shared prediction plumbing
// ---------------------------------------------------------------------------

/// (kernel, iteration-set, calls per outer iteration) of Airfoil.
const AIRFOIL_KERNELS: [(&str, &str, f64); 5] = [
    ("save_soln", "cells", 1.0),
    ("adt_calc", "cells", 2.0),
    ("res_calc", "edges", 2.0),
    ("bres_calc", "bedges", 2.0),
    ("update", "cells", 2.0),
];

const VOLNA_KERNELS: [(&str, &str, f64); 7] = [
    ("sim_1", "cells", 1.0),
    ("compute_flux", "edges", 2.0),
    ("numerical_flux", "edges", 1.0),
    ("space_disc", "edges", 2.0),
    ("bc_flux", "bedges", 2.0),
    ("RK_1", "cells", 1.0),
    ("RK_2", "cells", 1.0),
];

struct AppShape {
    cells: usize,
    edges: usize,
    bedges: usize,
    measured: MeasuredLoop,
}

fn airfoil_shape(scale: Scale) -> AppShape {
    let (nx, ny) = scale.airfoil_dims();
    // measure plan statistics on a moderate instance (reuse factors are
    // scale-free for grid meshes) but report paper-scale element counts
    let mesh = ump_mesh::generators::quad_channel(nx.min(600), ny.min(300)).mesh;
    let measured = measure_indirect(&mesh, 1024);
    AppShape {
        cells: nx * ny,
        edges: nx * (ny + 1) + ny * (nx + 1) - 2 * (nx + ny),
        bedges: 2 * (nx + ny),
        measured,
    }
}

fn volna_shape(scale: Scale) -> AppShape {
    let (nx, ny) = scale.volna_dims();
    let case = ump_mesh::generators::tri_coastal(nx.min(274), ny.min(273));
    let measured = measure_indirect(&case.mesh, 1024);
    AppShape {
        cells: 2 * nx * ny,
        edges: 3 * nx * ny - nx - ny, // interior edges of the tri grid
        bedges: 2 * (nx + ny),
        measured,
    }
}

fn set_size(shape: &AppShape, set: &str) -> usize {
    match set {
        "cells" => shape.cells,
        "edges" => shape.edges,
        _ => shape.bedges,
    }
}

/// Predicted total seconds for 1000 outer iterations of one app kernel.
fn kernel_total(
    m: &Machine,
    b: Backend,
    app: &str,
    kernel: &str,
    shape: &AppShape,
    wb: usize,
) -> f64 {
    let (profile, calls) = if app == "airfoil" {
        let calls = AIRFOIL_KERNELS.iter().find(|k| k.0 == kernel).unwrap().2;
        (airfoil::profile(kernel), calls)
    } else {
        let calls = VOLNA_KERNELS.iter().find(|k| k.0 == kernel).unwrap().2;
        (volna::profile(kernel), calls)
    };
    let n = set_size(shape, &profile.set);
    let w = work_for(&profile, n, wb, Some(&shape.measured));
    predict(m, b, &w).seconds * calls * 1000.0
}

/// Predicted app total (1000 iterations), all kernels.
fn app_total(m: &Machine, b: Backend, app: &str, shape: &AppShape, wb: usize) -> f64 {
    let kernels: Vec<&str> = if app == "airfoil" {
        AIRFOIL_KERNELS.iter().map(|k| k.0).collect()
    } else {
        VOLNA_KERNELS.iter().map(|k| k.0).collect()
    };
    kernels
        .iter()
        .map(|k| kernel_total(m, b, app, k, shape, wb))
        .sum()
}

fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

// ---------------------------------------------------------------------------
// tables
// ---------------------------------------------------------------------------

fn table1() {
    header("Table I — benchmark systems (model parameters from the paper)");
    println!(
        "{:<22} {:>6} {:>6} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "machine", "cores", "GHz", "cacheMB", "streamGBs", "vecDP", "GEMM DP", "FLOP/B DP(SP)"
    );
    for m in machines::all() {
        println!(
            "{:<22} {:>6} {:>6.2} {:>9.1} {:>9.1} {:>9} {:>11.0} {:>6.2}({:.2})",
            m.name,
            m.cores,
            m.freq_ghz,
            m.cache_mb,
            m.stream_gbs,
            m.vec_dp,
            m.gemm_dp,
            m.flop_per_byte(8),
            m.flop_per_byte(4),
        );
    }
    println!("paper FLOP/byte row: 3.42(6.48)  5.43(9.34)  4.87(10.1)  6.35(16.3)");
}

fn kernel_property_table(
    title: &str,
    profiles: Vec<ump_core::LoopProfile>,
    paper: &[(&str, &str)],
) {
    header(title);
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>7} {:>6} {:>14}  description",
        "kernel", "dirR", "dirW", "indR", "indW", "FLOP", "FLOP/B DP(SP)"
    );
    for p in &profiles {
        let t = p.transfers();
        println!(
            "{:<16} {:>7} {:>7} {:>7} {:>7} {:>6.0} {:>7.2}({:.2})  {}",
            p.name,
            t.direct_read,
            t.direct_write,
            t.indirect_read,
            t.indirect_write,
            p.flops_per_elem,
            p.flop_per_byte(8),
            p.flop_per_byte(4),
            p.description
        );
    }
    println!("paper rows for comparison:");
    for (k, row) in paper {
        println!("  {k:<14} {row}");
    }
}

fn table2() {
    kernel_property_table(
        "Table II — Airfoil kernel properties (derived from op_par_loop signatures)",
        airfoil::profiles(),
        &[
            ("save_soln", "4 4 0 0   4 FLOP  0.04(0.08)"),
            ("adt_calc", "4 1 8 0  64 FLOP  0.57(1.14)"),
            ("res_calc", "0 0 22 8 73 FLOP  0.30(0.60)"),
            ("bres_calc", "1 0 13 4 73 FLOP  0.50(1.01)"),
            ("update", "9 8 0 0  17 FLOP  0.10(0.20)"),
        ],
    );
}

fn table3() {
    kernel_property_table(
        "Table III — Volna kernel properties (our scheme; paper's flux differs, see EXPERIMENTS.md)",
        volna::profiles(),
        &[
            ("RK_1", "8 12 0 0  12 FLOP 0.6"),
            ("RK_2", "12 8 0 0  16 FLOP 0.8"),
            ("sim_1", "4 4 0 0    0 FLOP 0"),
            ("compute_flux", "4 6 8 0  154 FLOP 8.5"),
            ("numerical_flux", "1 4 6 0    9 FLOP 0.81"),
            ("space_disc", "8 0 10 8  23 FLOP 0.88"),
        ],
    );
}

fn table4(scale: Scale) {
    header("Table IV — mesh sizes and memory footprint");
    let (ax, ay) = scale.airfoil_dims();
    for (name, nx, ny) in [("Airfoil small", ax / 2, ay / 2), ("Airfoil large", ax, ay)] {
        let case = ump_mesh::generators::quad_channel(nx, ny);
        let s = MeshStats::compute(&case.mesh);
        let dp = s.dat_bytes(8, 13, 2);
        let sp = s.dat_bytes(4, 13, 2);
        println!(
            "{name:<16} cells {:>9}  nodes {:>9}  edges {:>9}  mem {}({}) MB",
            s.cells,
            s.nodes,
            s.edges,
            dp / 1_000_000,
            sp / 1_000_000
        );
    }
    let (vx, vy) = scale.volna_dims();
    let case = ump_mesh::generators::tri_coastal(vx, vy);
    let s = MeshStats::compute(&case.mesh);
    println!(
        "{:<16} cells {:>9}  nodes {:>9}  edges {:>9}  mem n/a({}) MB",
        "Volna",
        s.cells,
        s.nodes,
        s.edges,
        (s.cells * 13 + s.edges * 8 + s.nodes * 2) * 4 / 1_000_000
    );
    println!("paper: 720000/721801/1438600 94(47) MB; 2880000/2883601/5757200 373(186) MB;");
    println!("       2392352/1197384/3589735 n/a(355) MB (different dat inventory)");
}

fn table5(scale: Scale) {
    header("Table V — baseline per-kernel time/BW/GFLOPs (model, 1000 iters, paper scale counts)");
    let shape = airfoil_shape(Scale::Paper);
    let vshape = volna_shape(Scale::Paper);
    let _ = scale;
    println!(
        "{:<16} {:>12} {:>8} {:>8} | {:>12} {:>8} {:>8} | {:>12} {:>8} {:>8}",
        "kernel", "CPU1 s", "GB/s", "GF/s", "CPU2 s", "GB/s", "GF/s", "K40 s", "GB/s", "GF/s"
    );
    let cols = [
        (machines::cpu1(), Backend::ScalarMpi),
        (machines::cpu2(), Backend::ScalarMpi),
        (machines::k40(), Backend::Cuda),
    ];
    for (kernel, set, calls) in AIRFOIL_KERNELS {
        let profile = airfoil::profile(kernel);
        let n = set_size(&shape, set);
        let w = work_for(&profile, n, 8, Some(&shape.measured));
        let mut row = format!("{kernel:<16}");
        for (m, b) in &cols {
            let p = predict(m, *b, &w);
            row += &format!(
                " {:>12} {:>8.0} {:>8.0} |",
                fmt_s(p.seconds * calls * 1000.0),
                p.gb_s,
                p.gflop_s
            );
        }
        println!("{row}");
    }
    for (kernel, set, calls) in VOLNA_KERNELS {
        let profile = volna::profile(kernel);
        let n = set_size(&vshape, set);
        let w = work_for(&profile, n, 4, Some(&vshape.measured));
        let mut row = format!("{kernel:<16}");
        for (m, b) in &cols {
            let p = predict(m, *b, &w);
            row += &format!(
                " {:>12} {:>8.0} {:>8.0} |",
                fmt_s(p.seconds * calls * 1000.0),
                p.gb_s,
                p.gflop_s
            );
        }
        println!("{row}");
    }
    println!(
        "paper CPU1 column (s, DP Airfoil): save 4, adt 24.6, res 25.2, bres 0.09, update 14.05"
    );
}

fn table6(scale: Scale) {
    header("Table VI — OpenCL per-kernel time/BW on CPU1 and Phi (model) + vectorized flags");
    let shape = airfoil_shape(scale);
    let vshape = volna_shape(scale);
    println!(
        "{:<16} {:>12} {:>7} | {:>12} {:>7} | {:>8} {:>8}",
        "kernel", "CPU1 s", "GB/s", "Phi s", "GB/s", "vec CPU", "vec Phi"
    );
    let rows: Vec<(&str, &str, usize, f64, &AppShape)> = AIRFOIL_KERNELS
        .iter()
        .map(|(k, s, c)| (*k, *s, 8usize, *c, &shape))
        .chain(
            VOLNA_KERNELS
                .iter()
                .map(|(k, s, c)| (*k, *s, 4usize, *c, &vshape)),
        )
        .collect();
    for (kernel, set, wb, calls, sh) in rows {
        let profile = if wb == 8 {
            airfoil::profile(kernel)
        } else {
            volna::profile(kernel)
        };
        let n = set_size(sh, set);
        let w = work_for(&profile, n, wb, Some(&sh.measured));
        let c = predict(&machines::cpu1(), Backend::OpenCl, &w);
        let p = predict(&machines::phi(), Backend::OpenCl, &w);
        // the Phi's richer instruction set vectorizes more kernels (§6.3):
        // AVX's heuristics refuse the scatter-heavy ones
        let t = profile.transfers();
        let vec_cpu = w.vectorizable && t.indirect_write == 0;
        let vec_phi = w.vectorizable;
        println!(
            "{:<16} {:>12} {:>7.0} | {:>12} {:>7.0} | {:>8} {:>8}",
            kernel,
            fmt_s(c.seconds * calls * 1000.0),
            c.gb_s,
            fmt_s(p.seconds * calls * 1000.0),
            p.gb_s,
            if vec_cpu { "yes" } else { "-" },
            if vec_phi { "yes" } else { "-" },
        );
    }
    println!("paper: CPU vectorizes adt/bres/compute_flux/numerical_flux; Phi vectorizes all");
}

fn per_kernel_backend_table(
    title: &str,
    m: &Machine,
    backends: &[(&str, Backend)],
    wb: usize,
    scale: Scale,
) {
    header(title);
    let shape = airfoil_shape(scale);
    print!("{:<16}", "kernel");
    for (name, _) in backends {
        print!(" {:>14}", name);
    }
    println!();
    for (kernel, set, calls) in AIRFOIL_KERNELS {
        let profile = airfoil::profile(kernel);
        let n = set_size(&shape, set);
        let w = work_for(&profile, n, wb, Some(&shape.measured));
        print!("{kernel:<16}");
        for (_, b) in backends {
            let p = predict(m, *b, &w);
            print!(" {:>14}", fmt_s(p.seconds * calls * 1000.0));
        }
        println!();
    }
}

fn table7(scale: Scale) {
    per_kernel_backend_table(
        "Table VII — vectorized pure-MPI per-kernel (model, CPU1, DP, 1000 iters)",
        &machines::cpu1(),
        &[
            ("scalar MPI", Backend::ScalarMpi),
            ("vec MPI", Backend::VecMpi),
        ],
        8,
        scale,
    );
    per_kernel_backend_table(
        "Table VII (cont.) — CPU2",
        &machines::cpu2(),
        &[
            ("scalar MPI", Backend::ScalarMpi),
            ("vec MPI", Backend::VecMpi),
        ],
        8,
        scale,
    );
    println!("paper CPU1 vec MPI (s): save 4.08, adt 12.7, res 19.5, update 14.6");
}

fn table8(scale: Scale) {
    per_kernel_backend_table(
        "Table VIII — Xeon Phi per-kernel: scalar vs auto-vectorized vs intrinsics (model, DP)",
        &machines::phi(),
        &[
            ("scalar", Backend::ScalarThreaded),
            ("auto-vec", Backend::AutoVec),
            ("intrinsics", Backend::VecThreaded),
        ],
        8,
        scale,
    );
    println!("paper (s): adt 27.7/14.35/6.86, res 48.8/84.03/27.22, update 11.8/8.33/8.77");
    println!(
        "shape: auto-vec loses on res_calc (permute locality loss), intrinsics win everywhere"
    );
}

fn table9(scale: Scale) {
    header("Table IX — per-loop speedup relative to CPU 1 (model, best backend each)");
    let shape = airfoil_shape(scale);
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "CPU1", "CPU2", "Phi", "K40"
    );
    for (kernel, set, _calls) in AIRFOIL_KERNELS {
        let profile = airfoil::profile(kernel);
        let n = set_size(&shape, set);
        let w = work_for(&profile, n, 8, Some(&shape.measured));
        let base = predict(&machines::cpu1(), Backend::VecMpi, &w).seconds;
        let c2 = predict(&machines::cpu2(), Backend::VecMpi, &w).seconds;
        let ph = predict(&machines::phi(), Backend::VecThreaded, &w).seconds;
        let k = predict(&machines::k40(), Backend::Cuda, &w).seconds;
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            kernel,
            1.0,
            base / c2,
            base / ph,
            base / k
        );
    }
    println!("paper: save 1/1.37/1.88/5.11, adt 1/2.25/1.87/4.84, res 1/1.95/0.81/1.79,");
    println!("       update 1/1.48/1.67/4.54 — direct kernels follow bandwidth, res_calc lags");
}

// ---------------------------------------------------------------------------
// figures
// ---------------------------------------------------------------------------

fn fig5(scale: Scale) {
    header("Fig. 5 — baseline runtimes (model, 1000 iters) + host-measured reference");
    let shape = airfoil_shape(Scale::Paper);
    let vshape = volna_shape(Scale::Paper);
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "config", "Airfoil SP", "Airfoil DP", "Volna SP"
    );
    for (name, m, b) in [
        ("CPU1 MPI", machines::cpu1(), Backend::ScalarMpi),
        ("CPU1 OpenMP", machines::cpu1(), Backend::ScalarThreaded),
        ("CPU2 MPI", machines::cpu2(), Backend::ScalarMpi),
        ("CPU2 OpenMP", machines::cpu2(), Backend::ScalarThreaded),
        ("K40 CUDA", machines::k40(), Backend::Cuda),
    ] {
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            name,
            fmt_s(app_total(&m, b, "airfoil", &shape, 4)),
            fmt_s(app_total(&m, b, "airfoil", &shape, 8)),
            fmt_s(app_total(&m, b, "volna", &vshape, 4)),
        );
    }
    println!("paper (s): CPU1 MPI ≈ 46(SP)/68(DP); CPU2 MPI ≈ 21/31; K40 ≈ 5.4/8.4 (bars)");
    // host-measured scalar reference at the selected scale
    let (nx, ny) = scale.airfoil_dims();
    let rec = Recorder::new();
    let mut sim = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
    for _ in 0..scale.iters() {
        ump_apps::airfoil::drivers::step_seq(&mut sim, Some(&rec));
    }
    println!(
        "host scalar reference ({}x{} cells, {} iters): {:.2}s total",
        nx,
        ny,
        scale.iters(),
        rec.total_seconds()
    );
}

fn fig6(scale: Scale) {
    header("Fig. 6 — CPU vectorization, host-MEASURED backends at --scale");
    let (nx, ny) = scale.airfoil_dims();
    let iters = scale.iters();
    let threads = ump_core::exec::default_threads();

    fn run<R: ump_simd::Real, const L: usize>(
        nx: usize,
        ny: usize,
        iters: usize,
        threads: usize,
        which: &str,
    ) -> f64 {
        let rec = Recorder::new();
        let cache = PlanCache::new();
        // one persistent team for the whole measurement — every color
        // round of every iteration reuses the same parked workers; the
        // single-threaded backends skip the team entirely
        let needs_pool = !matches!(which, "MPI(scalar)" | "MPI vectorized");
        let pool = if needs_pool {
            ExecPool::new(threads)
        } else {
            ExecPool::new(1)
        };
        let mut sim = ump_apps::airfoil::Airfoil::<R>::new(nx, ny);
        for _ in 0..iters {
            match which {
                "MPI(scalar)" => {
                    ump_apps::airfoil::drivers::step_seq(&mut sim, Some(&rec));
                }
                "MPI vectorized" => {
                    ump_apps::airfoil::drivers::step_simd::<R, L>(&mut sim, Some(&rec));
                }
                "OpenMP" => {
                    ump_apps::airfoil::drivers::step_threaded_on(
                        &pool,
                        &mut sim,
                        &cache,
                        0,
                        1024,
                        Some(&rec),
                    );
                }
                "OpenMP vectorized" => {
                    ump_apps::airfoil::drivers::step_simd_threaded_on::<R, L>(
                        &pool,
                        &mut sim,
                        &cache,
                        0,
                        1024,
                        Some(&rec),
                    );
                }
                _ => {
                    ump_apps::airfoil::drivers::step_simt_on(
                        &pool,
                        &mut sim,
                        &cache,
                        0,
                        L,
                        200,
                        256,
                        Some(&rec),
                    );
                }
            }
        }
        rec.total_seconds()
    }

    println!(
        "{:<20} {:>12} {:>12}",
        "backend", "Airfoil SP", "Airfoil DP"
    );
    for which in [
        "MPI(scalar)",
        "MPI vectorized",
        "OpenMP",
        "OpenMP vectorized",
        "OpenCL(SIMT emu)",
    ] {
        let sp = run::<f32, 8>(nx, ny, iters, threads, which);
        let dp = run::<f64, 4>(nx, ny, iters, threads, which);
        println!("{which:<20} {sp:>12.2} {dp:>12.2}");
    }
    println!("paper shape: vec ≈ 1.6–2.0x (SP) / 1.1–1.4x (DP) over scalar; OpenCL ≈ OpenMP");

    // Volna SP measured
    let (vx, vy) = scale.volna_dims();
    let cache = PlanCache::new();
    let seq_t = {
        let rec = Recorder::new();
        let mut sim = ump_apps::volna::Volna::<f32>::new(vx, vy);
        for _ in 0..iters {
            ump_apps::volna::drivers::step_seq(&mut sim, Some(&rec));
        }
        rec.total_seconds()
    };
    let vec_t = {
        let rec = Recorder::new();
        let mut sim = ump_apps::volna::Volna::<f32>::new(vx, vy);
        for _ in 0..iters {
            ump_apps::volna::drivers::step_simd::<f32, 8>(&mut sim, Some(&rec));
        }
        rec.total_seconds()
    };
    let thr_t = {
        let rec = Recorder::new();
        let pool = ExecPool::new(threads);
        let mut sim = ump_apps::volna::Volna::<f32>::new(vx, vy);
        for _ in 0..iters {
            ump_apps::volna::drivers::step_threaded_on(
                &pool,
                &mut sim,
                &cache,
                0,
                1024,
                Some(&rec),
            );
        }
        rec.total_seconds()
    };
    println!("Volna SP measured: scalar {seq_t:.2}s, vectorized {vec_t:.2}s, threaded {thr_t:.2}s");
}

fn fig7(scale: Scale) {
    header("Fig. 7 — Xeon Phi configurations (model, 1000 iters, paper-scale counts)");
    let shape = airfoil_shape(Scale::Paper);
    let vshape = volna_shape(Scale::Paper);
    let _ = scale;
    let m = machines::phi();
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "config", "Airfoil SP", "Airfoil DP", "Volna SP"
    );
    for (name, b) in [
        ("Scalar MPI", Backend::ScalarMpi),
        ("Scalar MPI+OpenMP", Backend::ScalarThreaded),
        ("Auto-vec MPI+OpenMP", Backend::AutoVec),
        ("OpenCL", Backend::OpenCl),
        ("Vectorized MPI", Backend::VecMpi),
        ("Vectorized MPI+OpenMP", Backend::VecThreaded),
    ] {
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            name,
            fmt_s(app_total(&m, b, "airfoil", &shape, 4)),
            fmt_s(app_total(&m, b, "airfoil", &shape, 8)),
            fmt_s(app_total(&m, b, "volna", &vshape, 4)),
        );
    }
    println!("paper shape: intrinsics 2.0–2.2x (SP) / 1.7–1.8x (DP) over scalar; auto-vec poor");
}

fn fig8a(scale: Scale) {
    header("Fig. 8a — coloring schemes, host-MEASURED SIMD res_calc at --scale");
    let (nx, ny) = scale.airfoil_dims();
    let iters = scale.iters();
    println!("{:<16} {:>12} {:>12}", "scheme", "DP total s", "SP total s");
    for (name, scheme) in [
        ("Original", ump_core::Scheme::TwoLevel),
        ("FullPermute", ump_core::Scheme::FullPermute),
        ("BlockPermute", ump_core::Scheme::BlockPermute),
    ] {
        let run_dp = {
            let cache = PlanCache::new();
            let rec = Recorder::new();
            let mut sim = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
            for _ in 0..iters {
                ump_apps::airfoil::drivers::step_simd_scheme::<f64, 4>(
                    &mut sim,
                    &cache,
                    scheme,
                    1024,
                    Some(&rec),
                );
            }
            rec.total_seconds()
        };
        let run_sp = {
            let cache = PlanCache::new();
            let rec = Recorder::new();
            let mut sim = ump_apps::airfoil::Airfoil::<f32>::new(nx, ny);
            for _ in 0..iters {
                ump_apps::airfoil::drivers::step_simd_scheme::<f32, 8>(
                    &mut sim,
                    &cache,
                    scheme,
                    1024,
                    Some(&rec),
                );
            }
            rec.total_seconds()
        };
        println!("{name:<16} {run_dp:>12.2} {run_sp:>12.2}");
    }
    println!("paper shape (Phi/K40): Original wins; permute schemes lose to locality/gather cost");
}

fn fig8b(scale: Scale) {
    header("Fig. 8b — threads x block-size tuning, host-MEASURED hybrid at --scale");
    let (nx, ny) = scale.airfoil_dims();
    let iters = scale.iters().min(5);
    let max_threads = ump_core::exec::default_threads();
    print!("{:<10}", "blk\\thr");
    let thread_opts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&t| t <= max_threads.max(2))
        .collect();
    for t in &thread_opts {
        print!(" {:>10}", t);
    }
    println!();
    // one persistent pool per team size, shared across all block sizes
    let pools: Vec<ExecPool> = thread_opts.iter().map(|&t| ExecPool::new(t)).collect();
    for block in [256usize, 512, 1024, 2048] {
        print!("{block:<10}");
        for pool in &pools {
            let cache = PlanCache::new();
            let rec = Recorder::new();
            let mut sim = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
            for _ in 0..iters {
                ump_apps::airfoil::drivers::step_simd_threaded_on::<f64, 4>(
                    pool,
                    &mut sim,
                    &cache,
                    0,
                    block,
                    Some(&rec),
                );
            }
            print!(" {:>10.2}", rec.total_seconds());
        }
        println!();
    }
    println!("paper shape: more ranks/threads prefer larger blocks until load imbalance bites");
}

// ---------------------------------------------------------------------------
// fusion (ump-lazy) and the smoke run
// ---------------------------------------------------------------------------

fn fusion(scale: Scale) {
    header("Fusion — host-MEASURED fused (ump-lazy) vs unfused timestep at --scale");
    let (nx, ny) = scale.airfoil_dims();
    let iters = scale.iters();
    let threads = ump_core::exec::default_threads();
    let pool = ExecPool::new(threads);

    let run = |fused: bool| -> (f64, u64, Option<ump_core::FusionStats>) {
        let cache = PlanCache::new();
        let rec = Recorder::new();
        let mut sim = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
        // warm plans, then measure
        if fused {
            ump_apps::airfoil::drivers::step_fused_on(
                &pool,
                &mut sim,
                &cache,
                ump_lazy::Shape::Threaded,
                0,
                1024,
                None,
            );
        } else {
            ump_apps::airfoil::drivers::step_threaded_on(&pool, &mut sim, &cache, 0, 1024, None);
        }
        let r0 = pool.dispatch_rounds();
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            if fused {
                ump_apps::airfoil::drivers::step_fused_on(
                    &pool,
                    &mut sim,
                    &cache,
                    ump_lazy::Shape::Threaded,
                    0,
                    1024,
                    Some(&rec),
                );
            } else {
                ump_apps::airfoil::drivers::step_threaded_on(
                    &pool,
                    &mut sim,
                    &cache,
                    0,
                    1024,
                    Some(&rec),
                );
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        let rounds = (pool.dispatch_rounds() - r0) / iters as u64;
        (dt, rounds, rec.fusion("airfoil_step"))
    };

    let (unfused_s, unfused_rounds, _) = run(false);
    let (fused_s, fused_rounds, stats) = run(true);
    println!("{:<28} {:>10} {:>16}", "config", "total s", "rounds/step");
    println!(
        "{:<28} {unfused_s:>10.2} {unfused_rounds:>16}",
        "unfused (step_threaded)"
    );
    println!(
        "{:<28} {fused_s:>10.2} {fused_rounds:>16}",
        "fused (step_fused)"
    );
    if let Some(s) = stats {
        println!(
            "per step: {} loops -> {} groups, {} rounds saved, {:.1} MB not re-streamed",
            s.loops / s.executions,
            s.groups / s.executions,
            s.rounds_saved() / s.executions,
            s.bytes_saved / s.executions as f64 / 1e6
        );
    }
    println!(
        "speedup: {:.2}x (BENCH_fusion.json holds the criterion-measured numbers)",
        unfused_s / fused_s
    );
}

/// Tiny-mesh end-to-end sweep of the backend registry on both apps —
/// the declarative scenario sweep the registry exists for. Every
/// requested backend runs 3 steps through the apps' `step_on`
/// dispatchers and is checked against the sequential reference; fused
/// backends additionally assert their round savings through the
/// `Recorder` fusion counters. Fast enough for CI; any divergence or
/// NaN panics (non-zero exit).
fn smoke(backends: &[ExecBackend], layout: ump_core::Layout) {
    header("smoke — tiny meshes × the backend registry (ump_core::Backend)");
    // clamp the team to the probed cores: a 4-worker pool on a 1-core
    // container only measures oversubscription (the results stay
    // deterministic either way, this is purely about wall-clock)
    let team = 4usize.min(ump_tune::HostProbe::measure().cores.max(1));
    println!("pool team: {team} worker(s), dat layout: {}", layout.name());
    let pool = ExecPool::new(team);
    let iters = 3usize;

    // Airfoil 48x24
    {
        let (nx, ny) = (48usize, 24usize);
        let mut reference = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
        let mut rms = 0.0;
        for _ in 0..iters {
            rms = ump_apps::airfoil::drivers::step_seq(&mut reference, None);
        }
        assert!(reference.q.all_finite() && rms.is_finite());

        let cache = PlanCache::new();
        for &backend in backends {
            let rec = Recorder::new();
            let r0 = pool.dispatch_rounds();
            let mut sim = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
            sim.set_layout(layout);
            for _ in 0..iters {
                ump_apps::airfoil::drivers::step_on(
                    backend,
                    &mut sim,
                    &pool,
                    &cache,
                    0,
                    64,
                    Some(&rec),
                );
            }
            let rounds = pool.dispatch_rounds() - r0;
            let d = sim.q.max_abs_diff(&reference.q);
            assert!(d <= 1e-12, "airfoil {backend} diverged: {d:e} > 1e-12");
            assert_eq!(
                rounds > 0,
                backend.needs_pool(),
                "airfoil {backend}: {rounds} pool rounds vs needs_pool"
            );
            if matches!(backend, ExecBackend::Tiled | ExecBackend::TiledSimd { .. }) {
                // tiled super-chains report under their own stats key,
                // with the steps-per-tile and round counters filled in
                let s = rec.fusion("airfoil_tiled").expect("tiling stats");
                assert_eq!(s.executions, iters);
                assert_eq!(s.steps, iters, "one recorded step per dispatch");
                assert!(
                    s.fused_rounds < s.unfused_rounds,
                    "tiling must cut dispatch rounds"
                );
            } else if backend.is_fused() {
                let s = rec.fusion("airfoil_step").expect("fusion stats");
                if backend.is_distributed() {
                    // rank chains fuse the same groups but split boundary
                    // blocks into extra rounds; assert fusion happened
                    assert!(s.groups < s.loops, "rank chains must fuse groups");
                    assert_eq!(s.executions, backend.ranks() * iters);
                } else {
                    assert!(s.rounds_saved() >= 2 * iters, "fusion must save rounds");
                }
            }
            println!(
                "airfoil {nx}x{ny} {:<26} max|Δq| = {d:.2e}  rounds/step {:>2}  ok",
                backend.name(),
                rounds / iters as u64
            );
        }
    }

    // Volna 20x14
    {
        let (nx, ny) = (20usize, 14usize);
        let mut reference = ump_apps::volna::Volna::<f64>::new(nx, ny);
        let v0 = reference.total_volume();
        let mut dts = Vec::new();
        for _ in 0..iters {
            dts.push(ump_apps::volna::drivers::step_seq(&mut reference, None));
        }
        assert!(reference.w.all_finite());
        assert!(
            (reference.total_volume() - v0).abs() < 1e-9 * v0,
            "mass drift"
        );

        let cache = PlanCache::new();
        for &backend in backends {
            let rec = Recorder::new();
            let mut sim = ump_apps::volna::Volna::<f64>::new(nx, ny);
            sim.set_layout(layout);
            for (i, &r) in dts.iter().enumerate() {
                let dt = ump_apps::volna::drivers::step_on(
                    backend,
                    &mut sim,
                    &pool,
                    &cache,
                    0,
                    64,
                    Some(&rec),
                );
                assert!(
                    (dt - r).abs() <= 1e-12 * r,
                    "volna {backend} Δt diverged at step {i}: {dt} vs {r}"
                );
            }
            let d = sim.w.max_abs_diff(&reference.w);
            assert!(d <= 1e-12, "volna {backend} diverged: {d:e} > 1e-12");
            if matches!(backend, ExecBackend::Tiled | ExecBackend::TiledSimd { .. }) {
                let s = rec.fusion("volna_tiled").expect("tiling stats");
                assert_eq!(s.executions, iters);
                assert_eq!(s.steps, iters, "one recorded step per dispatch");
                assert!(
                    s.fused_rounds < s.unfused_rounds,
                    "tiling must cut dispatch rounds"
                );
            } else if backend.is_fused() {
                let s = rec.fusion("volna_step").expect("fusion stats");
                if backend.is_distributed() {
                    assert!(s.groups < s.loops, "rank chains must fuse groups");
                    assert_eq!(s.executions, backend.ranks() * iters);
                } else {
                    assert_eq!(s.rounds_saved(), 3 * iters, "volna fusion saves 3/step");
                }
            }
            println!(
                "volna {nx}x{ny} {:<26} max|Δw| = {d:.2e}  ok",
                backend.name()
            );
        }
    }

    println!("smoke ok ({} backends)", backends.len());
}

/// `--smoke --backends auto`: the self-tuning path end to end. The
/// tuner probes this host, prunes the registry with the archsim prior,
/// measures the survivors on the real meshes, and its pick — always a
/// concrete registered backend — is verified against the sequential
/// reference to 1e-12 on both apps. A second pick per app must be a
/// pure store hit (zero trials).
fn smoke_auto() {
    use ump_tune::{App, Tuner};

    header("smoke — autotuned backend selection (ump_tune)");
    let tuner = Tuner::new().with_trial_steps(2).with_top_k(4);
    let probe = tuner.probe();
    println!(
        "host probe: {} cores, {:.1} GB/s triad → prior machine \"{}\"",
        probe.cores,
        probe.stream_gbs,
        tuner.machine().name
    );
    let iters = 3usize;
    let cache = PlanCache::new();

    // Airfoil 48x24
    {
        let (nx, ny) = (48usize, 24usize);
        let choice = tuner.pick(App::Airfoil, nx, ny);
        assert!(
            ExecBackend::all().contains(&choice.backend),
            "tuner invented backend {:?}",
            choice.backend
        );
        let mut reference = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
        let mut sim = ump_apps::airfoil::Airfoil::<f64>::new(nx, ny);
        for _ in 0..iters {
            ump_apps::airfoil::drivers::step_seq(&mut reference, None);
            ump_apps::airfoil::drivers::step_on(
                choice.backend,
                &mut sim,
                tuner.pool(),
                &cache,
                0,
                choice.block_size,
                None,
            );
        }
        let d = sim.q.max_abs_diff(&reference.q);
        assert!(d <= 1e-12, "airfoil auto pick diverged: {d:e} > 1e-12");
        let warm = tuner.pick(App::Airfoil, nx, ny);
        assert!(
            warm.from_store && warm.trials == 0,
            "second tune must be a pure store hit"
        );
        println!(
            "airfoil {nx}x{ny} auto → {:<26} block {:>4}  {} trials, {:.3} ms/step, {:.2} GB/s  max|Δq| = {d:.2e}  ok",
            choice.backend.name(),
            choice.block_size,
            choice.trials,
            choice.seconds_per_step * 1e3,
            choice.gb_per_s,
        );
    }

    // Volna 20x14
    {
        let (nx, ny) = (20usize, 14usize);
        let choice = tuner.pick(App::Volna, nx, ny);
        assert!(ExecBackend::all().contains(&choice.backend));
        let mut reference = ump_apps::volna::Volna::<f64>::new(nx, ny);
        let mut sim = ump_apps::volna::Volna::<f64>::new(nx, ny);
        for _ in 0..iters {
            let want = ump_apps::volna::drivers::step_seq(&mut reference, None);
            let got = ump_apps::volna::drivers::step_on(
                choice.backend,
                &mut sim,
                tuner.pool(),
                &cache,
                0,
                choice.block_size,
                None,
            );
            assert!(
                (got - want).abs() <= 1e-12 * want,
                "volna auto Δt diverged: {got} vs {want}"
            );
        }
        let d = sim.w.max_abs_diff(&reference.w);
        assert!(d <= 1e-12, "volna auto pick diverged: {d:e} > 1e-12");
        let warm = tuner.pick(App::Volna, nx, ny);
        assert!(warm.from_store && warm.trials == 0);
        println!(
            "volna   {nx}x{ny} auto → {:<26} block {:>4}  {} trials, {:.3} ms/step, {:.2} GB/s  max|Δw| = {d:.2e}  ok",
            choice.backend.name(),
            choice.block_size,
            choice.trials,
            choice.seconds_per_step * 1e3,
            choice.gb_per_s,
        );
    }

    let stats = tuner.stats();
    assert_eq!(stats.store_hits, 2);
    assert_eq!(stats.store_misses, 2);
    println!(
        "smoke auto ok (2 apps tuned, {} trials, {} store hits)",
        stats.trials_run, stats.store_hits
    );
}

/// `repro serve-smoke` — the service-layer acceptance client: a 16-job
/// mixed batch (both apps, the whole backend registry) multiplexed over
/// 4 shared pools, every outcome verified against the sequential
/// reference driver to 1e-12, plus a kill/restore cycle asserted
/// bit-identical and a shared-plan-cache reuse check. Any divergence
/// panics (non-zero exit) — CI runs this next to `--smoke`.
///
/// With `--inject <seed>` a deterministic fault campaign derived from
/// the seed (worker kill, kernel panic, lease stall, checkpoint
/// corruption) runs on top, asserting every job recovers under its
/// retry policy and still finishes bit-identical to a fault-free run.
fn serve_smoke(inject: Option<u64>) {
    use ump_serve::{App, JobSpec, JobState, JobStatus, Service, ServiceConfig, Tuner};

    header("serve smoke — 16 mixed jobs over 4 shared pools (ump_serve)");
    let team = 2usize;
    let service = Service::new(ServiceConfig {
        pools: 4,
        team,
        admission_capacity: 32,
        slice_steps: 3,
        // a trial-frugal tuner for the auto-backend jobs below
        tuner: Some(std::sync::Arc::new(
            Tuner::new()
                .with_top_k(3)
                .with_trial_steps(1)
                .with_team(team),
        )),
        ..ServiceConfig::default()
    });

    // one job per registry backend (17 shapes, 16 jobs: cycles through
    // all but one), alternating apps, distinct seeds
    let registry = ExecBackend::all();
    let steps = 4u64;
    let mut handles = Vec::new();
    for j in 0..16u64 {
        let backend = registry[j as usize % registry.len()];
        let spec = if j % 2 == 0 {
            JobSpec::new(App::Airfoil, 48, 24, backend, steps)
        } else {
            JobSpec::new(App::Volna, 20, 14, backend, steps)
        }
        .with_seed(100 + j);
        handles.push(service.submit(spec).expect("batch under capacity"));
    }

    for h in &handles {
        let out = h.wait();
        assert_eq!(out.status, JobStatus::Completed, "job {}", h.id);
        let spec = out.spec;
        // sequential reference for the same spec
        let ref_pool = ExecPool::new(1);
        let ref_cache = PlanCache::new();
        let mut reference = JobState::new(JobSpec {
            backend: ExecBackend::Seq,
            ..spec
        });
        for _ in 0..steps {
            reference.step(&ref_pool, &ref_cache, None);
        }
        let final_state = out.final_state();
        let d = final_state.max_abs_diff(&reference);
        assert!(
            d <= 1e-12,
            "{} {} diverged: {d:e} > 1e-12",
            spec.app,
            spec.backend
        );
        for (i, (got, want)) in out.history.iter().zip(reference.history()).enumerate() {
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "{} {} step {i}: {got} vs {want}",
                spec.app,
                spec.backend
            );
        }
        println!(
            "job {:>2} {:<8} {:<26} max|Δ| = {d:.2e}  ok",
            out.id,
            spec.app.name(),
            spec.backend.name()
        );
    }

    let stats = service.stats();
    assert_eq!(stats.completed, 16, "all 16 jobs complete");
    assert_eq!(stats.failed, 0);
    assert!(
        stats.plan_hits > 0,
        "shared meshes must reuse plans (hits {}, builds {})",
        stats.plan_hits,
        stats.plan_builds
    );
    println!(
        "service: {} completed, plan cache {} hits / {} builds",
        stats.completed, stats.plan_hits, stats.plan_builds
    );

    // auto-backend jobs: the service consults its tuner, the admitted
    // spec carries a concrete registered backend, and tuning activity
    // shows up in ServiceStats
    let auto_spec = JobSpec::new(App::Airfoil, 48, 24, ExecBackend::Seq, steps).with_seed(200);
    let auto_out = service.submit_auto(auto_spec).expect("admitted").wait();
    assert_eq!(auto_out.status, JobStatus::Completed);
    assert!(
        ExecBackend::all().contains(&auto_out.spec.backend),
        "auto job ran on unregistered backend {:?}",
        auto_out.spec.backend
    );
    {
        let ref_pool = ExecPool::new(1);
        let ref_cache = PlanCache::new();
        let mut reference = JobState::new(JobSpec {
            backend: ExecBackend::Seq,
            ..auto_out.spec
        });
        for _ in 0..steps {
            reference.step(&ref_pool, &ref_cache, None);
        }
        let d = auto_out.final_state().max_abs_diff(&reference);
        assert!(d <= 1e-12, "auto job diverged: {d:e} > 1e-12");
    }
    let s1 = service.stats();
    assert_eq!(s1.tuned, 1);
    assert_eq!(s1.tune_store_misses, 1);
    assert!(s1.tune_trials > 0, "cold auto submission must run trials");
    let auto_out2 = service.submit_auto(auto_spec).expect("admitted").wait();
    assert_eq!(auto_out2.status, JobStatus::Completed);
    assert_eq!(auto_out2.spec.backend, auto_out.spec.backend);
    let s2 = service.stats();
    assert_eq!(s2.tuned, 2);
    assert_eq!(s2.tune_store_hits, 1, "second auto job must hit the store");
    assert_eq!(
        s2.tune_trials, s1.tune_trials,
        "a store hit runs zero additional trials"
    );
    println!(
        "auto jobs: tuned → {:<26} ({} trials, then a store hit)  ok",
        auto_out.spec.backend.name(),
        s1.tune_trials
    );

    // kill/restore: cancel a threaded Volna job mid-flight, resume the
    // snapshot, and require bit-identity with an uninterrupted run
    let kr_steps = 60u64;
    let kr_spec = JobSpec::new(App::Volna, 16, 12, ExecBackend::Threaded, kr_steps).with_seed(7);
    let kr_pool = ExecPool::new(team);
    let kr_cache = PlanCache::new();
    let mut uninterrupted = JobState::new(kr_spec);
    for _ in 0..kr_steps {
        uninterrupted.step(&kr_pool, &kr_cache, None);
    }
    // deterministic half: kill at exactly step 30 by snapshotting a
    // local run, then restore *into the service* for the back half
    let mut front = JobState::new(kr_spec);
    for _ in 0..30 {
        front.step(&kr_pool, &kr_cache, None);
    }
    let resumed = service
        .resume(&front.snapshot())
        .expect("snapshot resumable");
    let back = resumed.wait();
    assert_eq!(back.status, JobStatus::Completed);
    assert_eq!(back.steps_done, kr_steps);
    assert!(
        back.final_state().bits_eq(&uninterrupted),
        "restore at step 30 must finish bit-identical"
    );
    println!("kill/restore: snapshot at step 30 resumed on the service, bit-identical  ok");

    // racy half: a live cancel (best-effort — the job can outrun it)
    let h = service.submit(kr_spec).expect("admitted");
    let first = h.frames().recv().expect("first frame");
    assert_eq!(first.step, 1);
    let _ = service.cancel(h.id);
    let out = h.wait();
    let final_state = match out.status {
        JobStatus::Cancelled => {
            println!(
                "kill/restore: cancelled at step {}/{kr_steps}, resuming snapshot ({} bytes)",
                out.steps_done,
                out.snapshot.len()
            );
            let resumed = service.resume(&out.snapshot).expect("snapshot resumable");
            let out2 = resumed.wait();
            assert_eq!(out2.status, JobStatus::Completed);
            assert_eq!(out2.steps_done, kr_steps);
            out2.final_state()
        }
        JobStatus::Completed => {
            println!("kill/restore: job outran the cancel; checking bit-identity directly");
            out.final_state()
        }
        JobStatus::Failed(why) => panic!("kill/restore job failed: {why}"),
    };
    assert!(
        final_state.bits_eq(&uninterrupted),
        "killed-and-restored run must be bit-identical to uninterrupted"
    );
    println!("kill/restore: bit-identical after restart  ok");
    println!("serve smoke ok (16 jobs / 4 pools, kill/restore bit-exact)");

    if let Some(seed) = inject {
        inject_smoke(seed);
    }
}

/// The `--inject <seed>` campaign: four deterministic fault scenarios
/// (kill, kernel panic, lease stall, checkpoint corruption) whose
/// parameters are pure functions of the seed — the same seed always
/// injects the same faults at the same steps. Each scenario runs on a
/// fresh service (so the fault plan targets job id 1), must recover
/// under the retry policy, and must finish bit-identical to the
/// fault-free run of the same spec.
fn inject_smoke(seed: u64) {
    use std::sync::Arc;
    use std::time::Duration;
    use ump_fault::FaultPlan;
    use ump_serve::{App, JobSpec, JobState, JobStatus, RetryPolicy, Service, ServiceConfig};

    header(&format!("serve fault injection — seed {seed}"));
    let steps = 8u64;
    let fault_step = 2 + seed % (steps - 2); // 1-based step in [2, steps-1]
    let ckpt = 2 + seed % 3;
    let scenarios: [(&str, FaultPlan); 4] = [
        ("kill", FaultPlan::new().with_kill_job(1, fault_step)),
        ("panic", FaultPlan::new().with_panic_step(1, fault_step)),
        (
            "stall",
            FaultPlan::new().with_stall_step(1, fault_step, 60_000),
        ),
        (
            "corrupt",
            FaultPlan::new()
                .with_corrupt_checkpoint(1, 0)
                .with_kill_job(1, fault_step),
        ),
    ];
    for (i, (name, plan)) in scenarios.into_iter().enumerate() {
        let spec = if (seed + i as u64).is_multiple_of(2) {
            JobSpec::new(App::Airfoil, 20, 10, ExecBackend::Fused, steps)
        } else {
            JobSpec::new(App::Volna, 14, 10, ExecBackend::Threaded, steps)
        }
        .with_seed(seed ^ i as u64)
        .with_checkpoint_every(ckpt);

        // fault-free golden run of the same spec
        let pool = ExecPool::new(2);
        let cache = PlanCache::new();
        let mut golden = JobState::new(spec);
        for _ in 0..steps {
            golden.step(&pool, &cache, None);
        }

        let injector = Arc::new(plan.injector());
        let service = Service::new(ServiceConfig {
            pools: 1,
            team: 2,
            retry: RetryPolicy {
                max_attempts: 2,
                backoff: Duration::from_millis(2),
            },
            lease_timeout: Duration::from_millis(80),
            fault: Some(injector.clone()),
            ..ServiceConfig::default()
        });
        let out = service
            .submit(spec)
            .unwrap_or_else(|r| panic!("{name}: rejected: {r:?}"))
            .wait();
        assert_eq!(out.status, JobStatus::Completed, "{name} did not recover");
        assert!(
            out.final_state().bits_eq(&golden),
            "{name}: recovered run diverged from fault-free run"
        );
        let stats = service.stats();
        assert!(injector.injected() >= 1, "{name}: fault never fired");
        assert!(stats.retried >= 1, "{name}: recovery did not use a retry");
        for line in injector.fired() {
            println!("  [{name}] {line}");
        }
        println!(
            "  [{name}] {} {}: recovered after {} retr{} (watchdog {}), bit-identical  ok",
            spec.app,
            spec.backend,
            stats.retried,
            if stats.retried == 1 { "y" } else { "ies" },
            stats.watchdog_fired,
        );
    }
    println!("fault injection ok (4 scenarios, seed {seed}, all bit-exact)");
}

fn fig9(scale: Scale) {
    header("Fig. 9 — best runtimes per platform (model, 1000 iters)");
    let shape = airfoil_shape(Scale::Paper);
    let vshape = volna_shape(Scale::Paper);
    let _ = scale;
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "machine", "Airfoil SP", "Airfoil DP", "Volna SP"
    );
    for (m, b) in [
        (machines::cpu1(), Backend::VecMpi),
        (machines::cpu2(), Backend::VecMpi),
        (machines::phi(), Backend::VecThreaded),
        (machines::k40(), Backend::Cuda),
    ] {
        println!(
            "{:<26} {:>12} {:>12} {:>12}",
            m.name,
            fmt_s(app_total(&m, b, "airfoil", &shape, 4)),
            fmt_s(app_total(&m, b, "airfoil", &shape, 8)),
            fmt_s(app_total(&m, b, "volna", &vshape, 4)),
        );
    }
    println!("paper shape: K40 2.5–3x CPU1; Phi ≈ CPU1; CPU2 between");
}
