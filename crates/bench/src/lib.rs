//! # ump-bench — the reproduction harness
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation section (see DESIGN.md's per-experiment index); the
//! Criterion benches (`kernels`, `simd_ops`, `plans`) provide
//! microbenchmarks and the DESIGN.md ablations (scatter modes, AoS vs
//! SoA gathers, plan construction cost).
//!
//! This library holds the shared plumbing: building [`KernelWork`] model
//! inputs from *measured* plan statistics on real meshes, and running the
//! host backends under a [`Recorder`].

#![deny(missing_docs)]

use ump_archsim::KernelWork;
use ump_color::{PlanInputs, PlanStats, TwoLevelPlan};
use ump_core::{LoopProfile, Recorder};
use ump_mesh::Mesh2d;

/// Problem scale selector: `small` keeps the full suite in minutes on a
/// laptop; `paper` allocates the full 2.8M-cell meshes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ≈ 1/16 of the paper's element counts (600×300 Airfoil cells).
    Small,
    /// The paper's 2.8M-cell Airfoil / 2.4M-cell Volna meshes.
    Paper,
}

impl Scale {
    /// Airfoil grid dimensions at this scale.
    pub fn airfoil_dims(self) -> (usize, usize) {
        match self {
            Scale::Small => (600, 300),
            Scale::Paper => (2400, 1200),
        }
    }

    /// Volna grid dimensions at this scale.
    pub fn volna_dims(self) -> (usize, usize) {
        match self {
            Scale::Small => (274, 273),
            Scale::Paper => (1096, 1092),
        }
    }

    /// Iterations to time at this scale (the paper runs 1000; small runs
    /// scale that down — rates, not totals, are compared).
    pub fn iters(self) -> usize {
        match self {
            Scale::Small => 10,
            Scale::Paper => 50,
        }
    }

    /// Parse from a CLI word.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Measured locality/serialization statistics for one loop shape,
/// produced from the real plans — the model inputs the paper derives
/// from its own plan construction.
pub struct MeasuredLoop {
    /// Reuse factor within cache-resident blocks.
    pub reuse: f64,
    /// Serialization depth (max element colors per block).
    pub serialization: u32,
}

/// Measure an indirect loop's plan statistics on a mesh.
pub fn measure_indirect(mesh: &Mesh2d, block_size: usize) -> MeasuredLoop {
    let inputs = PlanInputs::new(mesh.n_edges(), vec![&mesh.edge2cell], block_size);
    let plan = TwoLevelPlan::build(&inputs);
    let stats = PlanStats::of_two_level(&plan, &[&mesh.edge2cell], 4);
    MeasuredLoop {
        reuse: stats.reuse_factor,
        serialization: stats.max_elem_colors,
    }
}

/// Build the archsim input for one kernel at a given size/precision,
/// using measured plan statistics where the kernel is indirect.
pub fn work_for(
    profile: &LoopProfile,
    n_elems: usize,
    word_bytes: usize,
    measured: Option<&MeasuredLoop>,
) -> KernelWork {
    let t = profile.transfers();
    let indirect_args = profile.args.iter().filter(|a| a.is_indirect()).count();
    // one i32 map word per indirect argument slot
    let map_words = indirect_args;
    // the canonical non-vectorizable kernel is the boundary one with its
    // data-dependent branch (Table VI marks bres-like kernels unvectorized)
    let vectorizable = profile.name != "bres_calc";
    let (reuse, serialization) = match measured {
        Some(m) if t.indirect_read + t.indirect_write > 0 => (m.reuse, m.serialization.max(1)),
        _ => (1.0, 1),
    };
    KernelWork {
        profile: profile.clone(),
        n_elems,
        word_bytes,
        reuse,
        serialization: if t.indirect_write > 0 {
            serialization
        } else {
            1
        },
        map_words,
        vectorizable,
    }
}

/// Pretty seconds → compact string with sensible precision.
pub fn fmt_s(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.2}")
    } else {
        format!("{:.2}ms", s * 1e3)
    }
}

/// Render a recorder as per-kernel table rows: (name, seconds, GB/s,
/// GFLOP/s).
pub fn recorder_rows(rec: &Recorder) -> Vec<(String, f64, f64, f64)> {
    rec.report()
        .into_iter()
        .map(|(name, s)| (name, s.seconds, s.gb_per_s(), s.gflop_per_s()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_apps::airfoil;
    use ump_mesh::generators::quad_channel;

    #[test]
    fn measured_stats_feed_the_model() {
        let mesh = quad_channel(40, 20).mesh;
        let m = measure_indirect(&mesh, 128);
        assert!(m.reuse > 1.2, "grid edge loops reuse cells: {}", m.reuse);
        assert!(m.serialization >= 2);
        let w = work_for(&airfoil::profile("res_calc"), mesh.n_edges(), 8, Some(&m));
        assert_eq!(w.map_words, 8);
        assert!(w.vectorizable);
        assert_eq!(w.reuse, m.reuse);
        let wd = work_for(&airfoil::profile("save_soln"), 100, 8, Some(&m));
        assert_eq!(wd.reuse, 1.0);
        assert_eq!(wd.serialization, 1);
        let wb = work_for(&airfoil::profile("bres_calc"), 10, 8, None);
        assert!(!wb.vectorizable);
    }

    #[test]
    fn scales_parse_and_shrink() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        let (sx, sy) = Scale::Small.airfoil_dims();
        let (px, py) = Scale::Paper.airfoil_dims();
        assert_eq!(px * py, 16 * sx * sy);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_s(123.4), "123");
        assert_eq!(fmt_s(12.345), "12.35");
        assert_eq!(fmt_s(0.0123), "12.30ms");
    }
}
