//! # ump-archsim — analytic models of the paper's four machines
//!
//! We do not own an E5-2640, an E5-2697v2, a Xeon Phi 5110P or a K40, so
//! the cross-hardware tables (V–IX) and figures (5–9) are regenerated
//! through a roofline-plus-latency model instantiated with Table I's
//! published figures and fed with *measured* inputs from the real
//! implementation: per-kernel transfer/FLOP counts derived from the
//! `op_par_loop` signatures (Tables II/III) and locality/serialization
//! statistics measured on the real plans and meshes (`ump-color`).
//!
//! The model captures exactly the effects the paper's §6 analysis
//! reasons with:
//!
//! * bandwidth bound: useful bytes (direct + indirect÷reuse + maps) over
//!   stream bandwidth, derated for gather irregularity,
//! * compute bound: FLOPs over GEMM throughput, derated to scalar issue
//!   when the backend fails to vectorize, with the 44-cycle scalar
//!   `sqrt` called out in §6.2 modelled separately,
//! * latency bound: serialized colored scatters, threading / OpenCL
//!   work-group scheduling overheads, MPI synchronization imbalance.
//!
//! Reproduction claim: *shapes*, not absolute seconds — who wins, by
//! roughly what factor, where the bottleneck flips (§6.6). Unit tests pin
//! those orderings; EXPERIMENTS.md records paper-vs-model numbers.

#![deny(missing_docs)]

pub mod machines;
pub mod model;

pub use machines::{cpu1, cpu2, host, k40, phi, Machine};
pub use model::{predict, Backend, Bottleneck, KernelWork, Prediction};
