//! The kernel cost model (see crate docs for scope).

use ump_core::LoopProfile;

use crate::machines::Machine;

/// Backend configurations of the paper's evaluation (§6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Scalar pure-MPI (non-vectorized baseline of Fig. 5).
    ScalarMpi,
    /// Scalar MPI+OpenMP (threading overhead, colored blocks).
    ScalarThreaded,
    /// Compiler auto-vectorization with the permute schemes (Fig. 7's
    /// "auto-vectorized": vector code but permutation-gathered data).
    AutoVec,
    /// Explicit vector intrinsics, pure MPI.
    VecMpi,
    /// Explicit vector intrinsics, MPI+OpenMP.
    VecThreaded,
    /// OpenCL SIMT on CPU/Phi (§6.3: whole-kernel-or-nothing
    /// vectorization plus runtime scheduling cost).
    OpenCl,
    /// CUDA on the GPU (the paper's revised Kepler backend).
    Cuda,
}

impl Backend {
    /// Does this backend emit vector (packed) arithmetic?
    pub fn vectorized(self, kernel_vectorizable: bool) -> bool {
        match self {
            Backend::ScalarMpi | Backend::ScalarThreaded => false,
            Backend::VecMpi | Backend::VecThreaded | Backend::Cuda => true,
            // OpenCL / auto-vec only succeed when the kernel has no
            // unsupported constructs (Table VI's ✓ column)
            Backend::AutoVec | Backend::OpenCl => kernel_vectorizable,
        }
    }

    /// Uses threads within a process (adds launch overhead per loop).
    pub fn threaded(self) -> bool {
        matches!(
            self,
            Backend::ScalarThreaded | Backend::VecThreaded | Backend::OpenCl | Backend::Cuda
        )
    }
}

/// What the model needs to know about one kernel invocation; everything
/// here is *measured* from the real implementation (profiles from the
/// loop signatures, locality from the real plans).
#[derive(Clone, Debug)]
pub struct KernelWork {
    /// The loop profile (transfer counts, FLOPs, transcendentals).
    pub profile: LoopProfile,
    /// Iteration-set size.
    pub n_elems: usize,
    /// Word size: 4 (SP) or 8 (DP).
    pub word_bytes: usize,
    /// Indirect references per unique target within a cache-resident
    /// block (≥ 1), from `ump_color::PlanStats::reuse_factor`.
    pub reuse: f64,
    /// Serialization depth of the colored increment (max element colors
    /// per block; 1 when no indirect write).
    pub serialization: u32,
    /// Mapping-table words (i32) read per element.
    pub map_words: usize,
    /// `true` when the kernel body contains no constructs that defeat
    /// OpenCL/auto-vectorization (Table VI's right columns; `bres_calc`'s
    /// data-dependent branch is the canonical `false`).
    pub vectorizable: bool,
}

/// What bound the kernel (the §6.6 classification).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// Off-chip bandwidth.
    Bandwidth,
    /// Arithmetic throughput (incl. transcendentals).
    Compute,
    /// Serialization / scheduling / gather latency.
    Latency,
}

/// Model output for one kernel on one machine/backend.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Wall seconds.
    pub seconds: f64,
    /// Useful bandwidth (paper counting) achieved, GB/s.
    pub gb_s: f64,
    /// Useful GFLOP/s achieved.
    pub gflop_s: f64,
    /// Dominant limiter.
    pub bound: Bottleneck,
}

/// Predict one kernel's execution.
pub fn predict(m: &Machine, backend: Backend, w: &KernelWork) -> Prediction {
    let t = w.profile.transfers();
    let n = w.n_elems as f64;
    let wb = w.word_bytes as f64;
    let lanes = m.vec_lanes(w.word_bytes) as f64;
    let vectorized = backend.vectorized(w.vectorizable);

    // ---- memory time -------------------------------------------------------
    let direct_words = (t.direct_read + t.direct_write) as f64;
    let indirect_words = (t.indirect_read + t.indirect_write) as f64;
    // off-chip traffic: direct streams + indirect unique traffic (reuse
    // absorbed by cache) + mapping tables
    let offchip_bytes_per_elem =
        direct_words * wb + indirect_words * wb / w.reuse.max(1.0) + w.map_words as f64 * 4.0;
    // bandwidth efficiency: streamed fraction runs at STREAM speed,
    // gathered fraction at the machine's gather efficiency
    let frac_indirect = if direct_words + indirect_words > 0.0 {
        indirect_words / (direct_words + indirect_words)
    } else {
        0.0
    };
    let bw_eff = 1.0 - frac_indirect * (1.0 - m.gather_eff);
    let t_mem = n * offchip_bytes_per_elem / (m.stream_gbs * 1e9 * bw_eff);

    // ---- compute time ------------------------------------------------------
    let flops = n * w.profile.flops_per_elem;
    // vector code reaches a fraction of GEMM; scalar code loses the lanes
    let comp_roof = if vectorized {
        m.gemm(w.word_bytes) * 0.55
    } else {
        // scalar issue ≈ GEMM/lanes, corrected by the machine's
        // scalar-issue factor (superscalar CPUs > 1, in-order Phi < 1)
        m.gemm(w.word_bytes) / lanes * m.scalar_ilp
    };
    let mut t_comp = flops / (comp_roof * 1e9);
    // transcendentals: sqrt-class ops at their own (un)throughput
    let trans = n * w.profile.transcendentals_per_elem;
    if trans > 0.0 {
        let per_core_rate = m.freq_ghz * 1e9 / m.sqrt_cycles;
        let rate = per_core_rate * m.cores as f64 * if vectorized { lanes * 1.5 } else { 1.0 };
        t_comp += trans / rate;
    }

    // ---- latency terms -----------------------------------------------------
    let mut t_lat = 0.0;
    // serialized colored scatter: every indirect-written word leaves the
    // vector one lane at a time, `serialization` colors deep
    let scatter_s_per_op = m.scatter_cycles / (m.cores as f64 * m.freq_ghz * 1e9);
    if t.indirect_write > 0 && vectorized {
        let serial_factor = if m.is_gpu {
            // warp-serialized increments (paper: GPUs hit this harder on
            // longer vectors, §6.6)
            w.serialization as f64 * 0.5
        } else {
            1.0
        };
        t_lat += n * t.indirect_write as f64 * scatter_s_per_op * serial_factor;
    }
    // AutoVec's permute schemes gather formerly-direct data too (§4):
    if backend == Backend::AutoVec && vectorized {
        t_lat += n * direct_words * scatter_s_per_op;
        // and destroy block locality (full permute): charge the reuse back
        t_lat += n * indirect_words * wb * (1.0 - 1.0 / w.reuse.max(1.0))
            / (m.stream_gbs * 1e9 * bw_eff);
    }
    // loop launch / scheduling overheads
    let mut t_over = 0.0;
    if backend.threaded() {
        t_over += m.launch_us * 1e-6;
    }
    if backend == Backend::OpenCl {
        // per-work-group scheduling (blocks of ~256 work-items)
        t_over += (n / 256.0) * m.opencl_sched_ns * 1e-9;
    }

    let core = t_mem.max(t_comp);
    let mut seconds = core + t_lat + t_over;
    // MPI implicit synchronization (reductions / halo waits)
    if matches!(backend, Backend::ScalarMpi | Backend::VecMpi) || backend.threaded() {
        seconds *= 1.0 + m.mpi_sync_frac;
    }

    let bound = if t_lat + t_over > core {
        Bottleneck::Latency
    } else if t_mem >= t_comp {
        Bottleneck::Bandwidth
    } else {
        Bottleneck::Compute
    };

    // "useful" volumes for the achieved-rate columns (paper counting:
    // full per-element words, no cache correction, no map tables)
    let useful_bytes = n * w.profile.bytes_per_elem(w.word_bytes);
    Prediction {
        seconds,
        gb_s: useful_bytes / seconds / 1e9,
        gflop_s: flops / seconds / 1e9,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{cpu1, cpu2, k40, phi};
    use ump_apps::airfoil;

    fn work(kernel: &str, n: usize, wb: usize) -> KernelWork {
        let profile = airfoil::profile(kernel);
        let (reuse, serialization, map_words, vectorizable) = match kernel {
            "save_soln" | "update" => (1.0, 1, 0, true),
            "adt_calc" => (3.6, 1, 4, true),
            "res_calc" => (3.5, 4, 4, true),
            "bres_calc" => (1.0, 2, 3, false),
            _ => (1.0, 1, 0, true),
        };
        KernelWork {
            profile,
            n_elems: n,
            word_bytes: wb,
            reuse,
            serialization,
            map_words,
            vectorizable,
        }
    }

    const NC: usize = 2_880_000;
    const NE: usize = 5_757_200;

    #[test]
    fn direct_kernels_are_bandwidth_bound_everywhere() {
        for m in crate::machines::all() {
            for b in [Backend::ScalarMpi, Backend::VecMpi] {
                let p = predict(&m, b, &work("save_soln", NC, 8));
                assert_eq!(p.bound, Bottleneck::Bandwidth, "{} {:?}", m.name, b);
            }
        }
    }

    #[test]
    fn vectorization_does_not_speed_up_direct_kernels_on_cpu() {
        // §6.6: "vectorization on the CPU does not increase the
        // performance of these direct kernels"
        let m = cpu1();
        let s = predict(&m, Backend::ScalarMpi, &work("update", NC, 8)).seconds;
        let v = predict(&m, Backend::VecMpi, &work("update", NC, 8)).seconds;
        assert!((s / v - 1.0).abs() < 0.1, "scalar {s}, vec {v}");
    }

    #[test]
    fn adt_calc_compute_bound_scalar_becomes_bandwidth_bound_vectorized() {
        // §6.6: adt_calc compute-limited without vectorization; with it,
        // bandwidth-bound on CPU2/Phi/K40
        let m = cpu1();
        let s = predict(&m, Backend::ScalarMpi, &work("adt_calc", NC, 8));
        assert_eq!(s.bound, Bottleneck::Compute);
        let v2 = predict(&cpu2(), Backend::VecMpi, &work("adt_calc", NC, 8));
        assert_eq!(v2.bound, Bottleneck::Bandwidth);
        // and the speedup from vectorizing it on CPU1 is large (paper
        // Table V 24.6s -> Table VII 12.7s ≈ 1.9x)
        let v1 = predict(&m, Backend::VecMpi, &work("adt_calc", NC, 8));
        let speedup = s.seconds / v1.seconds;
        assert!((1.5..4.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn overall_vec_speedup_matches_paper_band() {
        // paper conclusions: CPU speedups 1.6–2.0 SP / 1.1–1.4 DP;
        // Phi 2.0–2.2 SP / 1.7–1.8 DP. Sum the five airfoil kernels.
        let total = |m: &Machine, b: Backend, wb: usize| -> f64 {
            ["save_soln", "adt_calc", "res_calc", "update"]
                .iter()
                .map(|k| {
                    let n = if *k == "res_calc" { NE } else { NC };
                    2.0 * predict(m, b, &work(k, n, wb)).seconds
                })
                .sum()
        };
        for (m, wb, lo, hi) in [
            (cpu1(), 8, 1.05, 1.8),
            (cpu1(), 4, 1.4, 2.4),
            (phi(), 8, 1.4, 2.3),
            (phi(), 4, 1.6, 3.4),
        ] {
            let s = total(&m, Backend::ScalarMpi, wb);
            let v = total(&m, Backend::VecMpi, wb);
            let speedup = s / v;
            assert!(
                (lo..hi).contains(&speedup),
                "{} wb={wb}: speedup {speedup} not in [{lo},{hi}]",
                m.name
            );
        }
    }

    #[test]
    fn phi_is_comparable_to_mid_range_cpu_and_k40_wins() {
        // §7: Phi ≈ CPU-pair; K40 ≈ 2.5–3x CPU1
        let total = |m: &Machine, b: Backend| -> f64 {
            ["save_soln", "adt_calc", "res_calc", "update"]
                .iter()
                .map(|k| {
                    let n = if *k == "res_calc" { NE } else { NC };
                    2.0 * predict(m, b, &work(k, n, 8)).seconds
                })
                .sum()
        };
        let c1 = total(&cpu1(), Backend::VecMpi);
        let c2 = total(&cpu2(), Backend::VecMpi);
        let p = total(&phi(), Backend::VecThreaded);
        let g = total(&k40(), Backend::Cuda);
        assert!(
            p < c1 * 1.4 && p > c2 * 0.8,
            "phi {p} vs cpu1 {c1} / cpu2 {c2}"
        );
        let k40_speedup = c1 / g;
        assert!(
            (2.0..4.0).contains(&k40_speedup),
            "k40 speedup {k40_speedup}"
        );
    }

    #[test]
    fn opencl_is_only_slightly_better_than_scalar_threads_on_cpu() {
        // §6.3: OpenCL ≈ plain OpenMP overall on the CPU
        let m = cpu1();
        let kernels = ["save_soln", "adt_calc", "res_calc", "update"];
        let t_omp: f64 = kernels
            .iter()
            .map(|k| {
                let n = if *k == "res_calc" { NE } else { NC };
                predict(&m, Backend::ScalarThreaded, &work(k, n, 8)).seconds
            })
            .sum();
        let t_ocl: f64 = kernels
            .iter()
            .map(|k| {
                let n = if *k == "res_calc" { NE } else { NC };
                predict(&m, Backend::OpenCl, &work(k, n, 8)).seconds
            })
            .sum();
        let ratio = t_omp / t_ocl;
        assert!((0.75..1.45).contains(&ratio), "omp/ocl = {ratio}");
        // but explicit intrinsics clearly beat OpenCL (§6.3 last line)
        let t_vec: f64 = kernels
            .iter()
            .map(|k| {
                let n = if *k == "res_calc" { NE } else { NC };
                predict(&m, Backend::VecMpi, &work(k, n, 8)).seconds
            })
            .sum();
        assert!(t_vec < t_ocl * 0.9, "vec {t_vec} vs ocl {t_ocl}");
    }

    #[test]
    fn indirect_kernels_hurt_more_on_longer_vectors() {
        // Table IX: res_calc's relative gain on Phi/K40 lags the direct
        // kernels' (serialization scales with lanes)
        let rel = |m: &Machine, k: &str, b: Backend| -> f64 {
            let base = predict(&cpu1(), Backend::VecMpi, &work(k, NE, 8)).seconds;
            base / predict(m, b, &work(k, NE, 8)).seconds
        };
        let phi_res = rel(&phi(), "res_calc", Backend::VecThreaded);
        let phi_save = rel(&phi(), "save_soln", Backend::VecThreaded);
        assert!(
            phi_res < phi_save,
            "res_calc rel {phi_res} should lag save_soln rel {phi_save} on Phi"
        );
    }

    #[test]
    fn sp_to_dp_runtime_ratio_grows_when_vectorized() {
        // §6.4: baseline DP/SP ≈ 1.3–1.4x, vectorized ≈ 1.8–2.1x
        let m = cpu1();
        let t = |b: Backend, wb: usize| -> f64 {
            ["save_soln", "adt_calc", "res_calc", "update"]
                .iter()
                .map(|k| {
                    let n = if *k == "res_calc" { NE } else { NC };
                    predict(&m, b, &work(k, n, wb)).seconds
                })
                .sum()
        };
        let scalar_ratio = t(Backend::ScalarMpi, 8) / t(Backend::ScalarMpi, 4);
        let vec_ratio = t(Backend::VecMpi, 8) / t(Backend::VecMpi, 4);
        assert!(
            vec_ratio > scalar_ratio + 0.15,
            "vectorized DP/SP {vec_ratio} should exceed scalar {scalar_ratio}"
        );
        assert!(vec_ratio > 1.5, "vectorized DP/SP {vec_ratio}");
    }
}
