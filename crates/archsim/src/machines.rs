//! The four benchmark machines of paper Table I.

/// A machine model: Table I's published figures plus a few latency
/// parameters calibrated once (see crate docs).
#[derive(Clone, Debug, PartialEq)]
pub struct Machine {
    /// Display name.
    pub name: &'static str,
    /// Core count (total across sockets; 60 used on the Phi).
    pub cores: usize,
    /// Clock in GHz.
    pub freq_ghz: f64,
    /// Last-level cache in MB (per chip × chips).
    pub cache_mb: f64,
    /// STREAM bandwidth, GB/s (the achievable roof, not the vendor peak).
    pub stream_gbs: f64,
    /// DGEMM throughput, GFLOP/s (achievable compute roof, DP).
    pub gemm_dp: f64,
    /// SGEMM throughput, GFLOP/s (SP).
    pub gemm_sp: f64,
    /// Vector lanes for doubles (4 AVX, 8 IMCI, 32 warp-equivalent).
    pub vec_dp: usize,
    /// Per-element extra cost of a gathered (vs streamed) byte, as a
    /// bandwidth derating factor in [0, 1]: effective BW for fully
    /// irregular access = `stream_gbs * gather_eff`.
    pub gather_eff: f64,
    /// Cycles per serialized scatter lane-element on one core (the
    /// colored increment's cost driver; whole-machine cost divides by
    /// `cores`).
    pub scatter_cycles: f64,
    /// Scalar-issue recovery factor: out-of-order CPUs reclaim some of
    /// the lost lanes through superscalar ILP (>1); the Phi's in-order
    /// cores issue scalar code far below one op/cycle (<1).
    pub scalar_ilp: f64,
    /// Scalar `sqrt`-class instruction cost in cycles (§6.2 quotes 44 on
    /// the CPU).
    pub sqrt_cycles: f64,
    /// Per-loop threading launch overhead, microseconds (OpenMP barrier /
    /// CUDA launch).
    pub launch_us: f64,
    /// Additional per-work-group scheduling cost of the OpenCL runtime,
    /// nanoseconds (§4.1: TBB scheduling beats static OpenMP loops).
    pub opencl_sched_ns: f64,
    /// MPI synchronization overhead as a fraction of compute time at the
    /// paper's 2.8M-cell scale (§6.5: ~4% CPU, ~13% Phi).
    pub mpi_sync_frac: f64,
    /// Is this a GPU (SIMT-native: gathers in hardware, no scalar
    /// fallback penalty)?
    pub is_gpu: bool,
}

impl Machine {
    /// Vector lanes for a given word size.
    pub fn vec_lanes(&self, word_bytes: usize) -> usize {
        if word_bytes == 8 {
            self.vec_dp
        } else {
            self.vec_dp * 2
        }
    }

    /// GEMM roof for a word size.
    pub fn gemm(&self, word_bytes: usize) -> f64 {
        if word_bytes == 8 {
            self.gemm_dp
        } else {
            self.gemm_sp
        }
    }

    /// Machine balance FLOP/byte (Table I's last row) at a word size.
    pub fn flop_per_byte(&self, word_bytes: usize) -> f64 {
        self.gemm(word_bytes) / self.stream_gbs
    }
}

/// CPU 1: 2 × Xeon E5-2640 (Sandy Bridge), Table I column 1.
pub fn cpu1() -> Machine {
    Machine {
        name: "CPU1 (2x E5-2640)",
        cores: 12,
        freq_ghz: 2.4,
        cache_mb: 30.0,
        stream_gbs: 66.8,
        gemm_dp: 229.0,
        gemm_sp: 433.0,
        vec_dp: 4,
        gather_eff: 0.55,
        scatter_cycles: 3.0,
        scalar_ilp: 1.4,
        // §6.2 quotes 44 cycles/sqrt; measured adt_calc implies partial
        // pipelining, ~28 effective
        sqrt_cycles: 28.0,
        launch_us: 4.0,
        opencl_sched_ns: 80.0,
        mpi_sync_frac: 0.04,
        is_gpu: false,
    }
}

/// CPU 2: 2 × Xeon E5-2697 v2 (Ivy Bridge), Table I column 2.
pub fn cpu2() -> Machine {
    Machine {
        name: "CPU2 (2x E5-2697v2)",
        cores: 24,
        freq_ghz: 2.7,
        cache_mb: 60.0,
        stream_gbs: 98.76,
        gemm_dp: 510.0,
        gemm_sp: 944.0,
        vec_dp: 4,
        // double the cache: indirect access suffers less
        gather_eff: 0.65,
        scatter_cycles: 2.5,
        scalar_ilp: 1.4,
        sqrt_cycles: 28.0,
        launch_us: 5.0,
        opencl_sched_ns: 80.0,
        mpi_sync_frac: 0.04,
        is_gpu: false,
    }
}

/// Xeon Phi 5110P (KNC), Table I column 3.
pub fn phi() -> Machine {
    Machine {
        name: "Xeon Phi 5110P",
        cores: 60,
        freq_ghz: 1.053,
        cache_mb: 30.0,
        stream_gbs: 171.0,
        gemm_dp: 833.0,
        gemm_sp: 1729.0,
        vec_dp: 8,
        // in-order cores, gathers stall hard (§6.6: indirect kernels
        // "significantly slower")
        gather_eff: 0.28,
        scatter_cycles: 4.0,
        scalar_ilp: 0.25,
        sqrt_cycles: 60.0,
        launch_us: 12.0,
        opencl_sched_ns: 120.0,
        mpi_sync_frac: 0.13,
        is_gpu: false,
    }
}

/// NVIDIA Tesla K40, Table I column 4.
pub fn k40() -> Machine {
    Machine {
        name: "Tesla K40",
        cores: 2880,
        freq_ghz: 0.87,
        cache_mb: 1.5,
        stream_gbs: 244.0,
        gemm_dp: 1420.0,
        gemm_sp: 3730.0,
        // warp of 32 threads behaves like 32 DP lanes for serialization
        vec_dp: 32,
        gather_eff: 0.22,
        scatter_cycles: 12.0,
        scalar_ilp: 1.0,
        sqrt_cycles: 8.0,
        launch_us: 6.0,
        opencl_sched_ns: 0.0,
        mpi_sync_frac: 0.02,
        is_gpu: true,
    }
}

/// All four machines in Table I order.
pub fn all() -> Vec<Machine> {
    vec![cpu1(), cpu2(), phi(), k40()]
}

/// A machine calibrated from a live host probe: measured core count and
/// STREAM bandwidth, with the latency/efficiency parameters inherited
/// from [`cpu1`]'s calibration (the closest paper machine to a generic
/// out-of-order x86 host). The compute roof is estimated from the core
/// count at a nominal 2.5 GHz with 4 DP lanes × FMA — crude, but the
/// autotuner only uses this machine to *rank* candidates before
/// measuring, so relative ordering matters and absolute FLOP/s do not.
///
/// Deliberately **not** part of [`all`]: the Table I tests iterate that
/// list and pin its bandwidth ordering to the paper.
pub fn host(cores: usize, stream_gbs: f64) -> Machine {
    let cores = cores.max(1);
    let freq_ghz = 2.5;
    Machine {
        name: "host (auto-calibrated)",
        cores,
        freq_ghz,
        cache_mb: 2.5 * cores as f64,
        stream_gbs: stream_gbs.max(1.0),
        // 4 DP lanes × 2 (FMA) per cycle per core
        gemm_dp: cores as f64 * freq_ghz * 8.0,
        gemm_sp: cores as f64 * freq_ghz * 16.0,
        vec_dp: 4,
        gather_eff: 0.55,
        scatter_cycles: 3.0,
        scalar_ilp: 1.4,
        sqrt_cycles: 28.0,
        launch_us: 4.0,
        opencl_sched_ns: 80.0,
        mpi_sync_frac: 0.04,
        is_gpu: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_balance_column_reproduced() {
        // paper Table I FLOP/byte row: 3.42(6.48), 5.43(9.34), 4.87(10.1),
        // 6.35(16.3) — computed from GEMM/stream pairs ±STREAM rounding
        let expect = [
            (cpu1(), 3.42, 6.48),
            (cpu2(), 5.43, 9.34),
            (phi(), 4.87, 10.1),
            (k40(), 6.35, 16.3),
        ];
        for (m, dp, sp) in expect {
            assert!(
                (m.flop_per_byte(8) - dp).abs() < 0.6,
                "{}: dp {} vs {}",
                m.name,
                m.flop_per_byte(8),
                dp
            );
            assert!(
                (m.flop_per_byte(4) - sp).abs() < 1.1,
                "{}: sp {} vs {}",
                m.name,
                m.flop_per_byte(4),
                sp
            );
        }
    }

    #[test]
    fn lane_widths() {
        assert_eq!(cpu1().vec_lanes(8), 4);
        assert_eq!(cpu1().vec_lanes(4), 8);
        assert_eq!(phi().vec_lanes(4), 16);
        assert_eq!(k40().vec_lanes(8), 32);
    }

    #[test]
    fn bandwidth_ordering_matches_paper() {
        // paper §6.6: K40 > Phi > CPU2 > CPU1 in stream bandwidth
        let bw: Vec<f64> = all().iter().map(|m| m.stream_gbs).collect();
        assert!(bw[3] > bw[2] && bw[2] > bw[1] && bw[1] > bw[0]);
    }
}
