//! # ump-part — mesh partitioning for the distributed-memory backend
//!
//! OP2's MPI backend "splits the mesh into partitions using standard
//! partitioners such as PT-Scotch" (paper §3). PT-Scotch is a large
//! external C library; per DESIGN.md we substitute two classic
//! partitioners that produce the same *kind* of result — balanced parts
//! with small boundaries — which is all the halo-exchange machinery and
//! the performance model consume:
//!
//! * [`rcb`] — recursive coordinate bisection over cell centroids,
//! * [`greedy_bfs`] — Farhat-style greedy breadth-first growth on the
//!   dual graph,
//! * [`refine_boundary`] — a local Kernighan–Lin-flavoured pass that
//!   moves boundary cells to reduce edge cut under a balance constraint,
//! * [`PartitionQuality`] — edge cut, imbalance and halo-volume metrics
//!   (the quantities that drive MPI time in §6.5's analysis).

#![deny(missing_docs)]

use ump_mesh::Csr;

/// A partition assignment: `part[i]` is the rank that owns element `i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Owner of each element.
    pub part: Vec<u32>,
    /// Number of parts.
    pub n_parts: u32,
}

impl Partition {
    /// Element count of each part.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.n_parts as usize];
        for &p in &self.part {
            s[p as usize] += 1;
        }
        s
    }

    /// The element ids owned by `rank`, ascending.
    pub fn owned_by(&self, rank: u32) -> Vec<u32> {
        self.part
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == rank)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Per-rank halo sets over `graph`: `halo_sets(g)[r]` lists, in
    /// ascending order, the *foreign* vertices adjacent to rank `r`'s
    /// part — exactly the ghost elements the distributed runtime must
    /// import before every indirect loop, and the sets from which the
    /// halo-exchange plans and the interior/boundary block
    /// classification of the overlap backend are derived.
    pub fn halo_sets(&self, graph: &Csr) -> Vec<Vec<u32>> {
        assert_eq!(graph.rows(), self.part.len(), "graph/partition mismatch");
        let mut halos: Vec<Vec<u32>> = vec![Vec::new(); self.n_parts as usize];
        for v in 0..graph.rows() {
            let home = self.part[v];
            for &w in graph.row(v) {
                if self.part[w as usize] != home {
                    halos[home as usize].push(w as u32);
                }
            }
        }
        for h in &mut halos {
            h.sort_unstable();
            h.dedup();
        }
        halos
    }

    /// Validate: every owner is in range and every part is non-empty
    /// (empty parts break the rank runtime).
    pub fn validate(&self) -> Result<(), String> {
        for (i, &p) in self.part.iter().enumerate() {
            if p >= self.n_parts {
                return Err(format!(
                    "element {i} assigned to rank {p} >= {}",
                    self.n_parts
                ));
            }
        }
        let sizes = self.sizes();
        if let Some(rank) = sizes.iter().position(|&s| s == 0) {
            return Err(format!("part {rank} is empty"));
        }
        Ok(())
    }
}

/// Recursive coordinate bisection of points into `n_parts` parts.
///
/// At each step the current point set is split along its longer bounding
/// box axis at the size-weighted median, recursing with part counts
/// `⌈k/2⌉ / ⌊k/2⌋`, so any `n_parts` (not only powers of two) is balanced
/// to within one element.
pub fn rcb(points: &[[f64; 2]], n_parts: u32) -> Partition {
    assert!(n_parts >= 1);
    assert!(
        points.len() >= n_parts as usize,
        "fewer elements than parts"
    );
    let mut part = vec![0u32; points.len()];
    let mut ids: Vec<u32> = (0..points.len() as u32).collect();
    rcb_recurse(points, &mut ids, 0, n_parts, &mut part);
    Partition { part, n_parts }
}

fn rcb_recurse(
    points: &[[f64; 2]],
    ids: &mut [u32],
    first_part: u32,
    n_parts: u32,
    out: &mut [u32],
) {
    if n_parts == 1 {
        for &i in ids.iter() {
            out[i as usize] = first_part;
        }
        return;
    }
    // longer bbox axis
    let (mut lo, mut hi) = ([f64::INFINITY; 2], [f64::NEG_INFINITY; 2]);
    for &i in ids.iter() {
        for a in 0..2 {
            lo[a] = lo[a].min(points[i as usize][a]);
            hi[a] = hi[a].max(points[i as usize][a]);
        }
    }
    let axis = usize::from(hi[1] - lo[1] > hi[0] - lo[0]);
    let left_parts = n_parts.div_ceil(2);
    let split = ids.len() * left_parts as usize / n_parts as usize;
    // weighted median via select_nth; tie-break on id for determinism
    ids.select_nth_unstable_by(split.min(ids.len() - 1), |&a, &b| {
        points[a as usize][axis]
            .partial_cmp(&points[b as usize][axis])
            .unwrap()
            .then(a.cmp(&b))
    });
    let (left, right) = ids.split_at_mut(split);
    rcb_recurse(points, left, first_part, left_parts, out);
    rcb_recurse(
        points,
        right,
        first_part + left_parts,
        n_parts - left_parts,
        out,
    );
}

/// Greedy BFS partitioning of a graph: parts are grown one at a time from
/// a peripheral seed until they reach `n / n_parts` elements, then the
/// next part starts from the unassigned vertex closest to the frontier.
pub fn greedy_bfs(graph: &Csr, n_parts: u32) -> Partition {
    assert!(n_parts >= 1);
    let n = graph.rows();
    assert!(n >= n_parts as usize, "fewer elements than parts");
    let mut part = vec![u32::MAX; n];
    let mut assigned = 0usize;
    let mut frontier: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut next_seed = 0usize;
    for p in 0..n_parts {
        let quota = (n - assigned) / (n_parts - p) as usize;
        let mut count = 0usize;
        // seed: prefer a leftover frontier vertex (adjacent to previous
        // part) for compactness, else the first unassigned vertex
        let seed = loop {
            match frontier.pop_front() {
                Some(v) if part[v as usize] == u32::MAX => break Some(v),
                Some(_) => continue,
                None => break None,
            }
        }
        .unwrap_or_else(|| {
            while part[next_seed] != u32::MAX {
                next_seed += 1;
            }
            next_seed as u32
        });
        let mut queue = std::collections::VecDeque::new();
        part[seed as usize] = p;
        count += 1;
        queue.push_back(seed);
        while count < quota {
            let Some(v) = queue.pop_front() else {
                // disconnected remainder: jump to the next unassigned
                while next_seed < n && part[next_seed] != u32::MAX {
                    next_seed += 1;
                }
                if next_seed == n {
                    break;
                }
                part[next_seed] = p;
                count += 1;
                queue.push_back(next_seed as u32);
                continue;
            };
            for &w in graph.row(v as usize) {
                if part[w as usize] == u32::MAX {
                    if count < quota {
                        part[w as usize] = p;
                        count += 1;
                        queue.push_back(w as u32);
                    } else {
                        frontier.push_back(w as u32);
                    }
                }
            }
        }
        // anything left in this part's queue borders the next part
        frontier.extend(queue);
        assigned += count;
    }
    // sweep up any stragglers (disconnected graphs)
    for p in part.iter_mut() {
        if *p == u32::MAX {
            *p = n_parts - 1;
        }
    }
    Partition { part, n_parts }
}

/// One boundary-refinement sweep: move a cell to a neighboring part when
/// that strictly reduces its external degree (edge cut) and keeps the
/// destination within `balance_slack` of the average part size. Returns
/// the number of moves made.
pub fn refine_boundary(graph: &Csr, partition: &mut Partition, balance_slack: f64) -> usize {
    let n = graph.rows();
    let avg = n as f64 / partition.n_parts as f64;
    let cap = (avg * (1.0 + balance_slack)).floor() as usize;
    let mut sizes = partition.sizes();
    let mut moves = 0usize;
    for v in 0..n {
        let home = partition.part[v];
        // count neighbors per part
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for &w in graph.row(v) {
            let p = partition.part[w as usize];
            match counts.iter_mut().find(|(q, _)| *q == p) {
                Some((_, c)) => *c += 1,
                None => counts.push((p, 1)),
            }
        }
        let home_links = counts
            .iter()
            .find(|(p, _)| *p == home)
            .map_or(0, |&(_, c)| c);
        if let Some(&(best, links)) = counts
            .iter()
            .filter(|&&(p, _)| p != home)
            .max_by_key(|&&(p, c)| (c, std::cmp::Reverse(p)))
        {
            if links > home_links && sizes[best as usize] < cap && sizes[home as usize] > 1 {
                partition.part[v] = best;
                sizes[best as usize] += 1;
                sizes[home as usize] -= 1;
                moves += 1;
            }
        }
    }
    moves
}

/// Quality metrics of a partition over a graph (paper §6.5: halo volume
/// and load balance drive the MPI overheads the Phi is so sensitive to).
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionQuality {
    /// Number of graph edges crossing parts (each counted once).
    pub edge_cut: usize,
    /// `max part size / average part size` (1.0 = perfect).
    pub imbalance: f64,
    /// Total halo volume: Σ over parts of the number of foreign vertices
    /// adjacent to the part (what gets exchanged every iteration).
    pub halo_volume: usize,
}

impl PartitionQuality {
    /// Measure a partition against its graph.
    pub fn measure(graph: &Csr, partition: &Partition) -> PartitionQuality {
        let mut edge_cut = 0usize;
        for v in 0..graph.rows() {
            for &w in graph.row(v) {
                if (w as usize) > v && partition.part[v] != partition.part[w as usize] {
                    edge_cut += 1;
                }
            }
        }
        let sizes = partition.sizes();
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        let imbalance = sizes.iter().copied().max().unwrap_or(0) as f64 / avg.max(1e-300);
        // halo: the per-rank ghost sets, summed
        let halo_volume = partition.halo_sets(graph).iter().map(Vec::len).sum();
        PartitionQuality {
            edge_cut,
            imbalance,
            halo_volume,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ump_mesh::dual::cell_dual;
    use ump_mesh::generators::{perturbed_quads, quad_channel, tri_coastal};

    fn centroids(m: &ump_mesh::Mesh2d) -> Vec<[f64; 2]> {
        (0..m.n_cells()).map(|c| m.cell_centroid(c)).collect()
    }

    #[test]
    fn rcb_balances_to_within_one() {
        let m = quad_channel(20, 10).mesh;
        for k in [2u32, 3, 4, 7, 8] {
            let p = rcb(&centroids(&m), k);
            p.validate().unwrap();
            let sizes = p.sizes();
            let (mn, mx) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(mx - mn <= 1, "k={k} sizes={sizes:?}");
        }
    }

    #[test]
    fn rcb_cut_scales_like_perimeter() {
        // For a 2-D grid, cut should be O(sqrt(n/k)*k), far below random's O(n)
        let m = quad_channel(32, 32).mesh;
        let dual = cell_dual(&m);
        let p = rcb(&centroids(&m), 4);
        let q = PartitionQuality::measure(&dual, &p);
        // 4 quadrants of a 32x32 grid: ideal cut = 64; allow slack
        assert!(q.edge_cut <= 100, "cut {}", q.edge_cut);
        assert!(q.imbalance < 1.01);
    }

    #[test]
    fn greedy_bfs_covers_and_balances() {
        let m = tri_coastal(16, 12).mesh;
        let dual = cell_dual(&m);
        for k in [2u32, 5, 8] {
            let p = greedy_bfs(&dual, k);
            p.validate().unwrap();
            let q = PartitionQuality::measure(&dual, &p);
            assert!(q.imbalance < 1.25, "k={k} imbalance {}", q.imbalance);
        }
    }

    #[test]
    fn refinement_never_worsens_cut() {
        let m = perturbed_quads(18, 14, 0.3, 17);
        let dual = cell_dual(&m);
        let mut p = greedy_bfs(&dual, 6);
        let before = PartitionQuality::measure(&dual, &p).edge_cut;
        for _ in 0..3 {
            refine_boundary(&dual, &mut p, 0.10);
        }
        p.validate().unwrap();
        let after = PartitionQuality::measure(&dual, &p).edge_cut;
        assert!(after <= before, "refinement {before} -> {after}");
    }

    #[test]
    fn single_part_is_trivial() {
        let m = quad_channel(4, 4).mesh;
        let p = rcb(&centroids(&m), 1);
        assert!(p.part.iter().all(|&x| x == 0));
        let dual = cell_dual(&m);
        let q = PartitionQuality::measure(&dual, &p);
        assert_eq!(q.edge_cut, 0);
        assert_eq!(q.halo_volume, 0);
    }

    #[test]
    fn owned_by_lists_ascending_owners() {
        let m = quad_channel(8, 4).mesh;
        let p = rcb(&centroids(&m), 4);
        let mut total = 0;
        for r in 0..4 {
            let owned = p.owned_by(r);
            total += owned.len();
            for w in owned.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &e in &owned {
                assert_eq!(p.part[e as usize], r);
            }
        }
        assert_eq!(total, m.n_cells());
    }

    #[test]
    fn validate_rejects_empty_and_out_of_range() {
        let bad = Partition {
            part: vec![0, 0, 2],
            n_parts: 2,
        };
        assert!(bad.validate().is_err());
        let empty = Partition {
            part: vec![0, 0, 0],
            n_parts: 2,
        };
        assert!(empty.validate().is_err());
    }

    #[test]
    fn halo_sets_are_foreign_adjacent_and_sorted() {
        let m = quad_channel(10, 6).mesh;
        let dual = cell_dual(&m);
        let p = rcb(&centroids(&m), 4);
        let halos = p.halo_sets(&dual);
        assert_eq!(halos.len(), 4);
        for (r, halo) in halos.iter().enumerate() {
            assert!(!halo.is_empty(), "every rank of a connected mesh borders");
            for w in halo.windows(2) {
                assert!(w[0] < w[1], "sorted, deduped");
            }
            for &g in halo {
                // foreign...
                assert_ne!(p.part[g as usize], r as u32);
                // ...and adjacent to an owned cell
                assert!(dual
                    .row(g as usize)
                    .iter()
                    .any(|&n| p.part[n as usize] == r as u32));
            }
        }
        // total halo volume is what PartitionQuality reports
        let q = PartitionQuality::measure(&dual, &p);
        assert_eq!(q.halo_volume, halos.iter().map(Vec::len).sum::<usize>());
        // single part: no halos anywhere
        let one = rcb(&centroids(&m), 1);
        assert!(one.halo_sets(&dual).iter().all(Vec::is_empty));
    }

    #[test]
    fn rcb_is_deterministic() {
        let m = perturbed_quads(12, 12, 0.2, 4);
        let pts = centroids(&m);
        assert_eq!(rcb(&pts, 5).part, rcb(&pts, 5).part);
    }
}
