//! # ump-fault — seeded, schedule-deterministic fault injection
//!
//! The resilience layer's contract is a *golden guarantee*: under any
//! injected fault plan, a recovered run must finish bit-identical to the
//! fault-free run. Testing that requires faults that are themselves
//! reproducible — a fault keyed to wall-clock time fires at a different
//! logical point every run and turns every recovery test into a flake.
//!
//! Every fault here is therefore keyed to a **logical coordinate** of
//! the execution schedule, never to time:
//!
//! * service faults fire at `(job id, 1-based step index)`;
//! * distributed faults fire at `(rank, step)` or at the *nth*
//!   point-to-point message on a `(from, to)` edge — each rank's sends
//!   are totally ordered by its own program order, so the nth message is
//!   the same message on every run;
//! * pool faults fire at the nth dispatched color round;
//! * snapshot corruption flips a fixed byte of a named job's next
//!   checkpoint.
//!
//! A [`FaultPlan`] is the declarative list (built explicitly or derived
//! from a seed via [`FaultRng`] — same seed ⇒ same plan ⇒ same fault
//! sequence); a [`FaultInjector`] is its runtime form, consulted through
//! cheap hooks in `ExecPool`, `ump_minimpi::Comm`, and `ump_serve`'s
//! step loop. Hooks cost one branch (and for messages one counter bump)
//! when armed and nothing at all when no injector is installed. Every
//! fault is **one-shot**: it fires once and is consumed, so the replay
//! after a recovery does not re-trip the same fault forever.

#![deny(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One injectable fault, keyed by logical schedule coordinates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Kill the worker leasing `job` at the start of its `step`th
    /// timestep (1-based): the slice aborts as if the executing worker
    /// died, leaving the job failed and eligible for retry.
    KillJob {
        /// Service-assigned job id.
        job: u64,
        /// 1-based step index at which the kill fires.
        step: u64,
    },
    /// Panic inside the kernel body of `job`'s `step`th timestep —
    /// exercises the service's panic containment rather than a clean
    /// abort.
    PanicStep {
        /// Service-assigned job id.
        job: u64,
        /// 1-based step index at which the panic fires.
        step: u64,
    },
    /// Stall `job` at its `step`th timestep for `millis` (cooperatively
    /// interruptible) — the stuck-job shape the lease watchdog must
    /// catch.
    StallStep {
        /// Service-assigned job id.
        job: u64,
        /// 1-based step index at which the stall begins.
        step: u64,
        /// Stall length in milliseconds (pick ≫ the lease timeout).
        millis: u64,
    },
    /// XOR `0xff` into byte `byte % len` of `job`'s next stored
    /// checkpoint — the retry path must detect the damage (typed decode
    /// error, never a panic) and fall back.
    CorruptCheckpoint {
        /// Service-assigned job id.
        job: u64,
        /// Byte offset (reduced modulo the snapshot length).
        byte: u64,
    },
    /// Kill rank `rank` at the start of distributed step `step`
    /// (0-based): the rank loses its in-memory state and must rebuild
    /// from the coordinated checkpoint.
    KillRank {
        /// Rank id in `[0, size)`.
        rank: usize,
        /// 0-based step index at which the rank dies.
        step: u64,
    },
    /// Drop the `nth` (1-based) point-to-point message sent from rank
    /// `from` to rank `to`.
    DropMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based per-`(from, to)` send ordinal.
        nth: u64,
    },
    /// Delay the `nth` message on `(from, to)` by `millis` — pick a
    /// delay past the receive deadline to force a typed timeout.
    DelayMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based per-`(from, to)` send ordinal.
        nth: u64,
        /// Added wire latency in milliseconds.
        millis: u64,
    },
    /// Deliver the `nth` message on `(from, to)` twice — the transport
    /// must deduplicate (sequence numbers) or the stale copy poisons a
    /// later receive on the same tag.
    DuplicateMessage {
        /// Sending rank.
        from: usize,
        /// Receiving rank.
        to: usize,
        /// 1-based per-`(from, to)` send ordinal.
        nth: u64,
    },
    /// Panic at the start of the `round`th color round dispatched on an
    /// armed `ExecPool` (0-based over the pool's lifetime) — the kernel
    /// body panic of the pool-containment tests.
    PanicRound {
        /// 0-based lifetime round index on the armed pool.
        round: u64,
    },
}

impl Fault {
    fn describe(&self) -> String {
        match self {
            Fault::KillJob { job, step } => format!("kill job {job} at step {step}"),
            Fault::PanicStep { job, step } => format!("panic job {job} at step {step}"),
            Fault::StallStep { job, step, millis } => {
                format!("stall job {job} at step {step} for {millis}ms")
            }
            Fault::CorruptCheckpoint { job, byte } => {
                format!("corrupt checkpoint of job {job} at byte {byte}")
            }
            Fault::KillRank { rank, step } => format!("kill rank {rank} at step {step}"),
            Fault::DropMessage { from, to, nth } => {
                format!("drop message {from}->{to} #{nth}")
            }
            Fault::DelayMessage {
                from,
                to,
                nth,
                millis,
            } => format!("delay message {from}->{to} #{nth} by {millis}ms"),
            Fault::DuplicateMessage { from, to, nth } => {
                format!("duplicate message {from}->{to} #{nth}")
            }
            Fault::PanicRound { round } => format!("panic pool round {round}"),
        }
    }
}

/// A declarative list of faults. Build one explicitly with the
/// `with_*` methods, or derive coordinates from a seed through
/// [`FaultRng`] — either way the plan is a pure value: printing it
/// tells you exactly what will break and where.
///
/// ```
/// use ump_fault::{Fault, FaultPlan};
///
/// let plan = FaultPlan::new()
///     .with_kill_job(3, 5)
///     .with_drop_message(0, 1, 2);
/// assert_eq!(plan.faults().len(), 2);
/// assert_eq!(plan.faults()[0], Fault::KillJob { job: 3, step: 5 });
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// The planned faults, in declaration order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Add an arbitrary fault.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// Kill the worker running `job` at its `step`th timestep.
    pub fn with_kill_job(self, job: u64, step: u64) -> FaultPlan {
        self.with(Fault::KillJob { job, step })
    }

    /// Panic inside `job`'s `step`th kernel body.
    pub fn with_panic_step(self, job: u64, step: u64) -> FaultPlan {
        self.with(Fault::PanicStep { job, step })
    }

    /// Stall `job` at `step` for `millis` milliseconds.
    pub fn with_stall_step(self, job: u64, step: u64, millis: u64) -> FaultPlan {
        self.with(Fault::StallStep { job, step, millis })
    }

    /// Corrupt a byte of `job`'s next stored checkpoint.
    pub fn with_corrupt_checkpoint(self, job: u64, byte: u64) -> FaultPlan {
        self.with(Fault::CorruptCheckpoint { job, byte })
    }

    /// Kill `rank` at distributed step `step`.
    pub fn with_kill_rank(self, rank: usize, step: u64) -> FaultPlan {
        self.with(Fault::KillRank { rank, step })
    }

    /// Drop the `nth` message from `from` to `to`.
    pub fn with_drop_message(self, from: usize, to: usize, nth: u64) -> FaultPlan {
        self.with(Fault::DropMessage { from, to, nth })
    }

    /// Delay the `nth` message from `from` to `to` by `millis`.
    pub fn with_delay_message(self, from: usize, to: usize, nth: u64, millis: u64) -> FaultPlan {
        self.with(Fault::DelayMessage {
            from,
            to,
            nth,
            millis,
        })
    }

    /// Duplicate the `nth` message from `from` to `to`.
    pub fn with_duplicate_message(self, from: usize, to: usize, nth: u64) -> FaultPlan {
        self.with(Fault::DuplicateMessage { from, to, nth })
    }

    /// Panic at the pool's `round`th dispatched color round.
    pub fn with_panic_round(self, round: u64) -> FaultPlan {
        self.with(Fault::PanicRound { round })
    }

    /// Arm the plan: build its runtime injector.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector::new(self.clone())
    }
}

/// A tiny deterministic generator (xorshift64*) for deriving fault
/// coordinates from a seed — same seed, same stream, no global state.
/// Not a statistical RNG; it only has to spread kill points around.
#[derive(Clone, Debug)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Seed the stream (a zero seed is remapped — xorshift fixes 0).
    pub fn new(seed: u64) -> FaultRng {
        FaultRng(if seed == 0 { 0x9e3779b97f4a7c15 } else { seed })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform-ish value in `[lo, hi)` (`hi > lo`).
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// What the service step hook asks a job to do at a step boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFault {
    /// Abort the slice as if the worker died.
    Kill,
    /// Panic inside the step (exercises catch-unwind containment).
    Panic,
    /// Sleep (interruptibly) — the watchdog's prey.
    Stall(Duration),
}

/// What the transport should do with one outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageAction {
    /// Send normally.
    Deliver,
    /// Silently discard (the receiver's deadline must catch it).
    Drop,
    /// Add wire latency before the message becomes visible.
    Delay(Duration),
    /// Enqueue the message twice (same sequence number).
    Duplicate,
}

/// The armed, runtime form of a [`FaultPlan`]: hook points consult it
/// with logical coordinates and it answers with the matching one-shot
/// fault, atomically consuming it. Shared via `Arc` between a service /
/// universe and the test that asserts on [`fired`](FaultInjector::fired).
#[derive(Debug)]
pub struct FaultInjector {
    faults: Vec<(Fault, AtomicBool)>,
    /// Messages sent so far per `(from, to)` edge — the schedule clock
    /// for message faults.
    send_counts: Mutex<HashMap<(usize, usize), u64>>,
    fired: Mutex<Vec<String>>,
}

impl FaultInjector {
    /// Arm a plan.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            faults: plan
                .faults
                .into_iter()
                .map(|f| (f, AtomicBool::new(false)))
                .collect(),
            send_counts: Mutex::new(HashMap::new()),
            fired: Mutex::new(Vec::new()),
        }
    }

    /// Consume the first unconsumed fault matched by `pick`.
    fn take(&self, pick: impl Fn(&Fault) -> bool) -> Option<&Fault> {
        for (fault, consumed) in &self.faults {
            if pick(fault) && !consumed.swap(true, Ordering::AcqRel) {
                self.fired.lock().unwrap().push(fault.describe());
                return Some(fault);
            }
        }
        None
    }

    /// Service hook: consulted at the start of `job`'s `step`th
    /// timestep (1-based).
    pub fn on_job_step(&self, job: u64, step: u64) -> Option<JobFault> {
        self.take(|f| {
            matches!(f,
                Fault::KillJob { job: j, step: s }
                | Fault::PanicStep { job: j, step: s }
                | Fault::StallStep { job: j, step: s, .. } if *j == job && *s == step)
        })
        .map(|f| match f {
            Fault::KillJob { .. } => JobFault::Kill,
            Fault::PanicStep { .. } => JobFault::Panic,
            Fault::StallStep { millis, .. } => JobFault::Stall(Duration::from_millis(*millis)),
            _ => unreachable!("take matched a job fault"),
        })
    }

    /// Service hook: byte to corrupt in `job`'s next stored checkpoint,
    /// if planned.
    pub fn corrupt_checkpoint(&self, job: u64) -> Option<u64> {
        match self.take(|f| matches!(f, Fault::CorruptCheckpoint { job: j, .. } if *j == job)) {
            Some(Fault::CorruptCheckpoint { byte, .. }) => Some(*byte),
            _ => None,
        }
    }

    /// Distributed hook: does `rank` die at the start of `step`?
    pub fn on_rank_step(&self, rank: usize, step: u64) -> bool {
        self.take(|f| matches!(f, Fault::KillRank { rank: r, step: s } if *r == rank && *s == step))
            .is_some()
    }

    /// Transport hook: called once per send on the `(from, to)` edge,
    /// in the sender's program order. Bumps the edge's send ordinal and
    /// answers what to do with this message.
    pub fn on_send(&self, from: usize, to: usize) -> MessageAction {
        let nth = {
            let mut counts = self.send_counts.lock().unwrap();
            let c = counts.entry((from, to)).or_insert(0);
            *c += 1;
            *c
        };
        let matched = self.take(|f| {
            matches!(f,
                Fault::DropMessage { from: a, to: b, nth: n }
                | Fault::DelayMessage { from: a, to: b, nth: n, .. }
                | Fault::DuplicateMessage { from: a, to: b, nth: n }
                    if *a == from && *b == to && *n == nth)
        });
        match matched {
            Some(Fault::DropMessage { .. }) => MessageAction::Drop,
            Some(Fault::DelayMessage { millis, .. }) => {
                MessageAction::Delay(Duration::from_millis(*millis))
            }
            Some(Fault::DuplicateMessage { .. }) => MessageAction::Duplicate,
            _ => MessageAction::Deliver,
        }
    }

    /// Pool hook: does the `round`th dispatched color round panic?
    pub fn on_round(&self, round: u64) -> bool {
        self.take(|f| matches!(f, Fault::PanicRound { round: r } if *r == round))
            .is_some()
    }

    /// Reset the per-edge send ordinals (a recovery rollback replays
    /// the communication schedule from the checkpoint; consumed faults
    /// stay consumed, so the replay runs clean).
    pub fn reset_send_counts(&self) {
        self.send_counts.lock().unwrap().clear();
    }

    /// Human-readable log of every fault that fired, in firing order.
    pub fn fired(&self) -> Vec<String> {
        self.fired.lock().unwrap().clone()
    }

    /// Number of faults that have fired so far.
    pub fn injected(&self) -> usize {
        self.fired.lock().unwrap().len()
    }

    /// `true` once every planned fault has fired — the "did the test
    /// actually exercise recovery" assertion.
    pub fn exhausted(&self) -> bool {
        self.faults
            .iter()
            .all(|(_, consumed)| consumed.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_faults_fire_once_at_their_coordinate() {
        let inj = FaultPlan::new()
            .with_kill_job(2, 3)
            .with_panic_step(2, 5)
            .injector();
        assert_eq!(inj.on_job_step(2, 1), None);
        assert_eq!(inj.on_job_step(1, 3), None);
        assert_eq!(inj.on_job_step(2, 3), Some(JobFault::Kill));
        // one-shot: the replayed step sails through
        assert_eq!(inj.on_job_step(2, 3), None);
        assert_eq!(inj.on_job_step(2, 5), Some(JobFault::Panic));
        assert!(inj.exhausted());
        assert_eq!(inj.fired().len(), 2);
    }

    #[test]
    fn message_faults_key_on_per_edge_send_order() {
        let inj = FaultPlan::new()
            .with_drop_message(0, 1, 2)
            .with_delay_message(1, 0, 1, 50)
            .injector();
        // edge (0,1): first send clean, second dropped, third clean
        assert_eq!(inj.on_send(0, 1), MessageAction::Deliver);
        assert_eq!(inj.on_send(0, 1), MessageAction::Drop);
        assert_eq!(inj.on_send(0, 1), MessageAction::Deliver);
        // edge (1,0) counts independently
        assert_eq!(
            inj.on_send(1, 0),
            MessageAction::Delay(Duration::from_millis(50))
        );
        assert!(inj.exhausted());
    }

    #[test]
    fn reset_send_counts_replays_the_schedule_clock() {
        let inj = FaultPlan::new().with_drop_message(0, 1, 1).injector();
        assert_eq!(inj.on_send(0, 1), MessageAction::Drop);
        inj.reset_send_counts();
        // ordinal 1 again, but the fault is consumed: clean replay
        assert_eq!(inj.on_send(0, 1), MessageAction::Deliver);
    }

    #[test]
    fn seeded_rng_is_reproducible() {
        let a: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.gen_range(0, 1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = FaultRng::new(42);
            (0..8).map(|_| r.gen_range(0, 1000)).collect()
        };
        let c: Vec<u64> = {
            let mut r = FaultRng::new(43);
            (0..8).map(|_| r.gen_range(0, 1000)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| v < 1000));
    }

    #[test]
    fn rank_and_round_faults() {
        let inj = FaultPlan::new()
            .with_kill_rank(1, 4)
            .with_panic_round(7)
            .with_corrupt_checkpoint(9, 13)
            .injector();
        assert!(!inj.on_rank_step(1, 3));
        assert!(!inj.on_rank_step(0, 4));
        assert!(inj.on_rank_step(1, 4));
        assert!(!inj.on_rank_step(1, 4));
        assert!(!inj.on_round(6));
        assert!(inj.on_round(7));
        assert!(!inj.on_round(7));
        assert_eq!(inj.corrupt_checkpoint(8), None);
        assert_eq!(inj.corrupt_checkpoint(9), Some(13));
        assert_eq!(inj.injected(), 3);
    }
}
