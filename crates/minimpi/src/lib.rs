//! # ump-minimpi — a message-passing runtime on threads
//!
//! The paper's distributed-memory level is MPI: ranks own mesh partitions,
//! exchange halos before indirect loops, and synchronize implicitly at
//! global reductions (§2, §6.5). Real MPI is a wire-transport detail; the
//! algorithmic content is point-to-point tagged messages, barriers, and
//! reductions. This crate provides exactly those primitives with OS
//! threads as ranks — every rank runs the *same SPMD closure*, just like
//! `mpirun`:
//!
//! ```
//! use ump_minimpi::Universe;
//! let sums = Universe::new(4).run(|comm| {
//!     comm.allreduce_sum(comm.rank() as f64)
//! });
//! assert!(sums.iter().all(|&s| s == 6.0));
//! ```
//!
//! Reductions reduce in rank order, so results are bit-reproducible run to
//! run — which the reproduction harness relies on when comparing backends.
//!
//! Halo exchanges ([`ExchangePlan`]) come in blocking
//! ([`ExchangePlan::execute`]) and split non-blocking
//! ([`ExchangePlan::start`] / [`PendingExchange::finish`]) forms — the
//! latter is what the distributed fused backend overlaps with interior
//! compute. [`Universe::with_message_latency`] optionally models a wire
//! latency per message (delivery-time visibility, like DMA progress
//! under real MPI), which is how the halo bench measures what the
//! overlap hides.
//!
//! A receive that blocks longer than the configurable watchdog timeout
//! panics with a diagnostic instead of deadlocking the test suite; the
//! bounded forms ([`Comm::recv_deadline`],
//! [`PendingExchange::finish_timeout`], [`ExchangeGuard`]) return typed
//! errors ([`RecvError`], [`ExchangeError`]) instead, which is what the
//! resilient distributed drivers build their no-hang guarantee on. A
//! [`ump_fault::FaultInjector`] armed via [`Universe::with_fault`]
//! deterministically drops, delays, or duplicates point-to-point
//! messages by per-edge send ordinal.

#![deny(missing_docs)]

pub mod comm;
pub mod exchange;

pub use comm::{Comm, RecvError, ReduceOp, Universe};
pub use exchange::{
    all_to_all_indices, ExchangeError, ExchangeGuard, ExchangePlan, PendingExchange,
};
