//! The communicator: SPMD launch, point-to-point messages, barriers,
//! reductions.

use std::any::Any;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use ump_fault::{FaultInjector, MessageAction};

/// Default receive-watchdog timeout.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

struct Message {
    from: usize,
    tag: u64,
    /// Per-`(from, to)` send sequence number. Stamped on every send so
    /// the receiver can discard an injected duplicate — tags are reused
    /// across steps, so without this a stale copy would silently poison
    /// a *later* receive on the same `(from, tag)`.
    seq: u64,
    /// When the message becomes visible to the receiver — send time plus
    /// the universe's modeled wire latency (= send time when zero).
    deliver_at: Instant,
    data: Box<dyn Any + Send>,
}

/// Typed receive failure: the watchdog deadline elapsed with no
/// matching message visible. Returned by [`Comm::recv_deadline`];
/// [`Comm::recv`] converts it into the classic watchdog panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecvError {
    /// Rank the receive was matching on.
    pub from: usize,
    /// Tag the receive was matching on.
    pub tag: u64,
    /// Deadline that elapsed.
    pub waited: Duration,
    /// Unmatched messages buffered on the receiver when it gave up.
    pub pending: usize,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recv(from={}, tag={}) timed out after {:?} — deadlock? \
             {} unmatched message(s) pending",
            self.from, self.tag, self.waited, self.pending
        )
    }
}

impl std::error::Error for RecvError {}

/// Shared collective state: one barrier + a slot array for
/// gather-style collectives.
struct Shared {
    barrier: Barrier,
    slots: Mutex<Vec<Option<Box<dyn Any + Send>>>>,
}

/// An SPMD universe: spawns `n_ranks` threads each running the same
/// closure with its own [`Comm`].
pub struct Universe {
    n_ranks: usize,
    timeout: Duration,
    latency: Duration,
    fault: Option<Arc<FaultInjector>>,
}

impl Universe {
    /// Create a universe of `n_ranks` ranks.
    pub fn new(n_ranks: usize) -> Universe {
        assert!(n_ranks >= 1);
        Universe {
            n_ranks,
            timeout: DEFAULT_TIMEOUT,
            latency: Duration::ZERO,
            fault: None,
        }
    }

    /// Override the receive-watchdog timeout (tests use short values).
    pub fn with_timeout(mut self, timeout: Duration) -> Universe {
        self.timeout = timeout;
        self
    }

    /// Model a wire latency per point-to-point message: a sent message
    /// becomes *visible* to its receiver only `latency` after the send;
    /// a receive that matches it earlier sleeps out the remainder
    /// (yielding the core — on shared hardware other ranks compute
    /// through the window, exactly like DMA progress under real MPI).
    /// Zero (the default) keeps delivery instantaneous. The halo bench
    /// uses this to measure what overlapped exchanges hide: with
    /// latency `L`, a blocking schedule exposes `L` per exchange on the
    /// critical path while the overlap schedule buries it under
    /// interior compute.
    pub fn with_message_latency(mut self, latency: Duration) -> Universe {
        self.latency = latency;
        self
    }

    /// Arm a fault injector on every rank's transport: each send
    /// consults it (drop / delay / duplicate by per-edge send ordinal)
    /// and receivers deduplicate injected copies by sequence number.
    /// Without an injector the transport's only overhead is the one
    /// relaxed counter bump per send that stamps the sequence number.
    pub fn with_fault(mut self, fault: Arc<FaultInjector>) -> Universe {
        self.fault = Some(fault);
        self
    }

    /// Run the SPMD closure on every rank; returns the per-rank results
    /// in rank order. Panics propagate (a failing rank fails the run).
    pub fn run<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&Comm) -> T + Sync,
    {
        let n = self.n_ranks;
        let shared = Arc::new(Shared {
            barrier: Barrier::new(n),
            slots: Mutex::new((0..n).map(|_| None).collect()),
        });
        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Message>();
            txs.push(tx);
            rxs.push(rx);
        }
        let timeout = self.timeout;
        let latency = self.latency;
        let fault = self.fault.clone();
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (rank, rx) in rxs.into_iter().enumerate() {
                let txs = txs.clone();
                let shared = Arc::clone(&shared);
                let fault = fault.clone();
                handles.push(scope.spawn(move || {
                    let comm = Comm {
                        rank,
                        size: n,
                        txs,
                        rx: Mutex::new(rx),
                        pending: Mutex::new(Vec::new()),
                        shared,
                        timeout,
                        latency,
                        fault,
                        send_seqs: (0..n).map(|_| AtomicU64::new(0)).collect(),
                        delivered: Mutex::new(vec![HashSet::new(); n]),
                    };
                    f(&comm)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // re-raise the rank's own panic payload so callers see
                    // the real diagnostic (watchdog message, assert text…)
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        })
    }
}

/// Reduction operator for [`Comm::allreduce`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions (OP2's `OP_INC` global argument).
    Sum,
    /// Minimum (OP2's `OP_MIN`, e.g. the CFL time step in Volna).
    Min,
    /// Maximum (OP2's `OP_MAX`).
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Per-rank communicator handle. Each rank owns its own, but the handle
/// is `Sync` (receive-side state sits behind a mutex) so rank-local
/// runtimes — notably the fused-chain executors, whose recorded exchange
/// closures must be `Sync` — can capture `&Comm` freely. Concurrent
/// receives from one rank serialize on that mutex; the SPMD drivers
/// never do that, they only need the *capability*.
pub struct Comm {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Message>>,
    rx: Mutex<Receiver<Message>>,
    pending: Mutex<Vec<Message>>,
    shared: Arc<Shared>,
    timeout: Duration,
    latency: Duration,
    fault: Option<Arc<FaultInjector>>,
    /// Per-destination send sequence counters (stamp [`Message::seq`]).
    send_seqs: Vec<AtomicU64>,
    /// Per-sender sets of delivered sequence numbers — consulted and
    /// grown only while a fault injector is armed (duplicates can only
    /// be injected), so fault-free runs pay nothing here.
    delivered: Mutex<Vec<HashSet<u64>>>,
}

impl Comm {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The configured receive-watchdog timeout ([`Comm::recv`]'s
    /// deadline; exchange `finish` uses it as the per-peer budget).
    pub fn watchdog(&self) -> Duration {
        self.timeout
    }

    /// Send `value` to rank `to` with a user `tag`. Non-blocking
    /// (buffered, like `MPI_Isend` + background progress).
    ///
    /// With a fault injector armed ([`Universe::with_fault`]) the send
    /// may be dropped, delayed, or duplicated according to the plan;
    /// the `Clone` bound exists for the duplicate path.
    pub fn send<T: Clone + Send + 'static>(&self, to: usize, tag: u64, value: T) {
        let seq = self.send_seqs[to].fetch_add(1, Ordering::Relaxed) + 1;
        let mut extra = Duration::ZERO;
        let mut duplicate = false;
        if let Some(inj) = &self.fault {
            match inj.on_send(self.rank, to) {
                MessageAction::Deliver => {}
                MessageAction::Drop => return,
                MessageAction::Delay(d) => extra = d,
                MessageAction::Duplicate => duplicate = true,
            }
        }
        let deliver_at = Instant::now() + self.latency + extra;
        if duplicate {
            self.enqueue(to, tag, seq, deliver_at, Box::new(value.clone()));
        }
        self.enqueue(to, tag, seq, deliver_at, Box::new(value));
    }

    fn enqueue(
        &self,
        to: usize,
        tag: u64,
        seq: u64,
        deliver_at: Instant,
        data: Box<dyn Any + Send>,
    ) {
        self.txs[to]
            .send(Message {
                from: self.rank,
                tag,
                seq,
                deliver_at,
                data,
            })
            .expect("peer rank hung up");
    }

    /// Blocking receive of a `T` from rank `from` with tag `tag`.
    /// Out-of-order arrivals are buffered and matched later.
    ///
    /// # Panics
    /// On watchdog timeout (likely deadlock) or when the matched message
    /// payload is not a `T` (protocol error).
    pub fn recv<T: Send + 'static>(&self, from: usize, tag: u64) -> T {
        match self.recv_deadline(from, tag, self.timeout) {
            Ok(v) => v,
            Err(e) => panic!("rank {}: {e}", self.rank),
        }
    }

    /// Receive with an explicit deadline, returning a typed
    /// [`RecvError`] instead of panicking when no matching message
    /// becomes *visible* in time. Visibility honors the modeled wire
    /// latency: a matched message whose delivery time lies beyond the
    /// deadline is left buffered (a later, more patient receive can
    /// still take it) and reported as a timeout — an injected delay
    /// cannot smuggle a stall past the deadline by sleeping inside the
    /// delivery path. Injected duplicates are discarded by sequence
    /// number before matching.
    pub fn recv_deadline<T: Send + 'static>(
        &self,
        from: usize,
        tag: u64,
        deadline: Duration,
    ) -> Result<T, RecvError> {
        let deadline_at = Instant::now() + deadline;
        let mut pending = self.pending.lock();
        loop {
            while let Some(pos) = pending.iter().position(|m| m.from == from && m.tag == tag) {
                let msg = pending.remove(pos);
                if self.already_delivered(&msg) {
                    continue; // stale injected duplicate: discard
                }
                if msg.deliver_at > deadline_at {
                    pending.push(msg);
                    return Err(self.timeout_err(from, tag, deadline, pending.len()));
                }
                self.mark_delivered(&msg);
                drop(pending);
                return Ok(Self::deliver(msg, from, tag));
            }
            let now = Instant::now();
            if now >= deadline_at {
                return Err(self.timeout_err(from, tag, deadline, pending.len()));
            }
            let rx = self.rx.lock();
            match rx.recv_timeout(deadline_at - now) {
                Ok(msg) => {
                    drop(rx);
                    pending.push(msg);
                }
                Err(_) => {
                    return Err(self.timeout_err(from, tag, deadline, pending.len()));
                }
            }
        }
    }

    /// Discard every buffered and queued inbound message, returning how
    /// many were thrown away. Recovery rollbacks call this on every
    /// rank (between barriers) so packets of the abandoned step cannot
    /// poison the replay's receives.
    pub fn drain_messages(&self) -> usize {
        let mut pending = self.pending.lock();
        let mut n = pending.len();
        pending.clear();
        let rx = self.rx.lock();
        while rx.try_recv().is_ok() {
            n += 1;
        }
        n
    }

    fn timeout_err(&self, from: usize, tag: u64, waited: Duration, pending: usize) -> RecvError {
        RecvError {
            from,
            tag,
            waited,
            pending,
        }
    }

    fn already_delivered(&self, msg: &Message) -> bool {
        self.fault.is_some() && self.delivered.lock()[msg.from].contains(&msg.seq)
    }

    fn mark_delivered(&self, msg: &Message) {
        if self.fault.is_some() {
            self.delivered.lock()[msg.from].insert(msg.seq);
        }
    }

    /// Sleep out any remaining modeled wire latency, then unwrap.
    fn deliver<T: Send + 'static>(msg: Message, from: usize, tag: u64) -> T {
        let now = Instant::now();
        if msg.deliver_at > now {
            std::thread::sleep(msg.deliver_at - now);
        }
        Self::downcast(msg, from, tag)
    }

    fn downcast<T: Send + 'static>(msg: Message, from: usize, tag: u64) -> T {
        *msg.data.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "recv(from={from}, tag={tag}): payload type mismatch (expected {})",
                std::any::type_name::<T>()
            )
        })
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Gather one value from every rank; every rank receives the full
    /// rank-ordered vector.
    pub fn allgather<T: Clone + Send + 'static>(&self, value: T) -> Vec<T> {
        self.shared.slots.lock()[self.rank] = Some(Box::new(value));
        self.barrier();
        let out: Vec<T> = {
            let slots = self.shared.slots.lock();
            slots
                .iter()
                .map(|s| {
                    s.as_ref()
                        .expect("missing allgather contribution")
                        .downcast_ref::<T>()
                        .expect("allgather type mismatch")
                        .clone()
                })
                .collect()
        };
        self.barrier();
        if self.rank == 0 {
            let mut slots = self.shared.slots.lock();
            for s in slots.iter_mut() {
                *s = None;
            }
        }
        self.barrier();
        out
    }

    /// All-reduce a scalar with `op`, reducing in rank order (bit
    /// reproducible).
    pub fn allreduce(&self, value: f64, op: ReduceOp) -> f64 {
        let all = self.allgather(value);
        let mut acc = all[0];
        for &v in &all[1..] {
            acc = op.apply(acc, v);
        }
        acc
    }

    /// All-reduce a vector elementwise with `op`, rank order.
    pub fn allreduce_vec(&self, values: &[f64], op: ReduceOp) -> Vec<f64> {
        let all = self.allgather(values.to_vec());
        let mut acc = all[0].clone();
        for v in &all[1..] {
            assert_eq!(v.len(), acc.len(), "allreduce_vec length mismatch");
            for (a, &b) in acc.iter_mut().zip(v) {
                *a = op.apply(*a, b);
            }
        }
        acc
    }

    /// Convenience sum all-reduce.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allreduce(value, ReduceOp::Sum)
    }

    /// Convenience min all-reduce.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.allreduce(value, ReduceOp::Min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_returns_rank_ordered_results() {
        let out = Universe::new(5).run(|c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn ping_pong() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 7, vec![1.0f64, 2.0, 3.0]);
                c.recv::<Vec<f64>>(1, 8)
            } else {
                let v = c.recv::<Vec<f64>>(0, 7);
                let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
                c.send(0, 8, doubled.clone());
                doubled
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                // send tag 2 first, then tag 1
                c.send(1, 2, 222i64);
                c.send(1, 1, 111i64);
                0
            } else {
                // receive in tag order 1, 2 regardless of arrival order
                let a = c.recv::<i64>(0, 1);
                let b = c.recv::<i64>(0, 2);
                assert_eq!((a, b), (111, 222));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn allreduce_ops() {
        let sums = Universe::new(4).run(|c| c.allreduce_sum((c.rank() + 1) as f64));
        assert!(sums.iter().all(|&s| s == 10.0));
        let mins = Universe::new(4).run(|c| c.allreduce_min(10.0 - c.rank() as f64));
        assert!(mins.iter().all(|&m| m == 7.0));
        let maxs = Universe::new(3).run(|c| c.allreduce(c.rank() as f64, ReduceOp::Max));
        assert!(maxs.iter().all(|&m| m == 2.0));
    }

    #[test]
    fn allreduce_is_rank_order_deterministic() {
        // Floating-point sum depends on order; rank order must make it
        // identical on every rank and every run.
        let contributions = [1e16, 1.0, -1e16, 1.0];
        let expect = contributions.iter().fold(0.0, |a, &b| a + b);
        for _ in 0..5 {
            let out = Universe::new(4).run(|c| c.allreduce_sum(contributions[c.rank()]));
            assert!(out.iter().all(|&s| s == expect));
        }
    }

    #[test]
    fn allreduce_vec_elementwise() {
        let out = Universe::new(3).run(|c| {
            let mine = vec![c.rank() as f64, 1.0];
            c.allreduce_vec(&mine, ReduceOp::Sum)
        });
        for v in out {
            assert_eq!(v, vec![3.0, 3.0]);
        }
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let out = Universe::new(3).run(|c| {
            let a = c.allreduce_sum(1.0);
            let b = c.allreduce_sum(2.0);
            let g = c.allgather(c.rank());
            (a, b, g)
        });
        for (a, b, g) in out {
            assert_eq!((a, b), (3.0, 6.0));
            assert_eq!(g, vec![0, 1, 2]);
        }
    }

    #[test]
    fn single_rank_universe() {
        let out = Universe::new(1).run(|c| {
            assert_eq!(c.size(), 1);
            c.allreduce_sum(5.0)
        });
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn modeled_wire_latency_delays_delivery_not_sends() {
        // generous margins: upper bounds compare against the *full*
        // latency after sleeping 4×, so a scheduler blip on a loaded CI
        // host has hundreds of milliseconds of slack before a flake
        let lat = Duration::from_millis(200);
        let out = Universe::new(2).with_message_latency(lat).run(|c| {
            if c.rank() == 0 {
                let t0 = Instant::now();
                c.send(1, 1, 42i64); // non-blocking regardless of latency
                assert!(t0.elapsed() < lat, "send must not block on the wire");
                // compute that outlasts the wire: the matched recv then
                // returns without sleeping out any remainder
                std::thread::sleep(lat * 4);
                let t1 = Instant::now();
                let v: i64 = c.recv(1, 2);
                assert!(t1.elapsed() < lat, "latency already elapsed");
                v
            } else {
                let t0 = Instant::now();
                c.send(0, 2, 7i64);
                // immediate recv pays (close to) the full modeled latency
                let v: i64 = c.recv(0, 1);
                assert!(t0.elapsed() >= lat / 2, "wire latency not modeled");
                v
            }
        });
        assert_eq!(out, vec![7, 42]);
    }

    #[test]
    #[should_panic(expected = "timed out")]
    fn recv_watchdog_fires_on_deadlock() {
        Universe::new(2)
            .with_timeout(Duration::from_millis(50))
            .run(|c| {
                if c.rank() == 0 {
                    // rank 0 waits for a message nobody sends
                    c.recv::<i32>(1, 99)
                } else {
                    0
                }
            });
    }

    #[test]
    fn recv_deadline_returns_typed_timeout() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                let err = c
                    .recv_deadline::<i32>(1, 99, Duration::from_millis(30))
                    .unwrap_err();
                assert_eq!((err.from, err.tag), (1, 99));
                assert!(err.to_string().contains("timed out"));
                1
            } else {
                0
            }
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn dropped_message_times_out_instead_of_hanging() {
        let inj = Arc::new(
            ump_fault::FaultPlan::new()
                .with_drop_message(0, 1, 1)
                .injector(),
        );
        let fired = Arc::clone(&inj);
        let out = Universe::new(2).with_fault(inj).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, 42i64);
                true
            } else {
                c.recv_deadline::<i64>(0, 5, Duration::from_millis(30))
                    .is_err()
            }
        });
        assert_eq!(out, vec![true, true]);
        assert!(fired.exhausted());
    }

    #[test]
    fn delayed_message_is_a_timeout_not_a_stall() {
        // the injected delay pushes visibility past the deadline: the
        // bounded receive must fail *within its budget*, not sleep out
        // the delay inside delivery; a later patient receive still gets
        // the message.
        let inj = Arc::new(
            ump_fault::FaultPlan::new()
                .with_delay_message(0, 1, 1, 300)
                .injector(),
        );
        let out = Universe::new(2).with_fault(inj).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, 7i64);
                0
            } else {
                let t0 = Instant::now();
                let err = c.recv_deadline::<i64>(0, 5, Duration::from_millis(40));
                assert!(err.is_err(), "delayed message leaked past the deadline");
                assert!(
                    t0.elapsed() < Duration::from_millis(250),
                    "deadline did not bound the wait"
                );
                c.recv::<i64>(0, 5)
            }
        });
        assert_eq!(out[1], 7);
    }

    #[test]
    fn duplicated_message_is_discarded_by_seq() {
        // without dedup the duplicate of tag-5 #1 would satisfy the
        // *second* recv on the same (from, tag) and shadow the real 43.
        let inj = Arc::new(
            ump_fault::FaultPlan::new()
                .with_duplicate_message(0, 1, 1)
                .injector(),
        );
        let out = Universe::new(2).with_fault(inj).run(|c| {
            if c.rank() == 0 {
                c.send(1, 5, 42i64);
                c.send(1, 5, 43i64);
                (0, 0)
            } else {
                let a = c.recv::<i64>(0, 5);
                let b = c.recv::<i64>(0, 5);
                (a, b)
            }
        });
        assert_eq!(out[1], (42, 43));
    }

    #[test]
    fn drain_messages_clears_stale_packets() {
        let out = Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, 10i64);
                c.send(1, 2, 20i64);
                c.barrier();
                0
            } else {
                c.barrier(); // both packets are en route or queued
                             // buffer one into pending by matching the other tag first
                let _ = c.recv::<i64>(0, 2);
                let n = c.drain_messages();
                assert_eq!(n, 1, "one stale packet should be drained");
                assert!(c
                    .recv_deadline::<i64>(0, 1, Duration::from_millis(20))
                    .is_err());
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_is_a_protocol_error() {
        Universe::new(2).run(|c| {
            if c.rank() == 0 {
                c.send(1, 1, 5i32);
            } else {
                let _: f64 = c.recv(0, 1);
            }
        });
    }
}
