//! Index-list exchange and halo data movement.
//!
//! OP2's MPI backend precomputes, per dataset, which elements each rank
//! must *export* to neighbors and *import* into its halo region; every
//! indirect loop then triggers `op_mpi_halo_exchanges` (paper Fig. 2b).
//! This module is the transport half of that machinery: the ownership
//! logic that decides *what* to exchange lives in `ump-core::dist`.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::{Comm, RecvError};

/// Typed failure of a bounded halo exchange: a peer's packet did not
/// become visible within the deadline (lost, or delayed past it).
/// Returned by [`PendingExchange::finish_timeout`] instead of blocking
/// forever — the no-hang half of the resilience contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExchangeError {
    /// The receive from `from` on `tag` timed out.
    Timeout {
        /// Peer rank whose packet never arrived.
        from: usize,
        /// Exchange tag of the missing packet.
        tag: u64,
        /// Per-peer deadline that elapsed.
        waited: Duration,
        /// Unmatched messages buffered on the receiver when it gave up.
        pending: usize,
    },
}

impl From<RecvError> for ExchangeError {
    fn from(e: RecvError) -> ExchangeError {
        ExchangeError::Timeout {
            from: e.from,
            tag: e.tag,
            waited: e.waited,
            pending: e.pending,
        }
    }
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Timeout {
                from,
                tag,
                waited,
                pending,
            } => write!(
                f,
                "halo exchange timed out waiting for rank {from} (tag {tag}) after {waited:?}; \
                 {pending} unmatched message(s) pending"
            ),
        }
    }
}

impl std::error::Error for ExchangeError {}

/// A reusable halo-exchange plan for one dataset layout.
///
/// `sends[r]` lists *local* element indices whose values are shipped to
/// rank `r`; `recvs[r]` lists the local (halo) indices the incoming values
/// from rank `r` are unpacked into, in the sender's order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExchangePlan {
    /// Per-peer export index lists (local indices into the data array).
    pub sends: Vec<Vec<u32>>,
    /// Per-peer import index lists (local indices into the data array).
    pub recvs: Vec<Vec<u32>>,
}

impl ExchangePlan {
    /// An empty plan for `size` ranks.
    pub fn empty(size: usize) -> ExchangePlan {
        ExchangePlan {
            sends: vec![Vec::new(); size],
            recvs: vec![Vec::new(); size],
        }
    }

    /// Total exported elements (halo send volume).
    pub fn send_volume(&self) -> usize {
        self.sends.iter().map(Vec::len).sum()
    }

    /// Total imported elements (halo recv volume).
    pub fn recv_volume(&self) -> usize {
        self.recvs.iter().map(Vec::len).sum()
    }

    /// Execute the exchange on a `dim`-component dataset: pack the export
    /// rows, send, receive, unpack into the halo rows. `tag` disambiguates
    /// concurrent exchanges (use the loop's dat index).
    ///
    /// Equivalent to [`start`](ExchangePlan::start) immediately followed
    /// by [`PendingExchange::finish`] — the *blocking* shape. Latency-
    /// hiding callers split the two and compute on interior data while
    /// the messages are in flight.
    pub fn execute<T: Copy + Send + 'static>(
        &self,
        comm: &Comm,
        data: &mut [T],
        dim: usize,
        tag: u64,
    ) {
        self.start(comm, data, dim, tag).finish(comm, data);
    }

    /// Post the send half of the exchange without waiting for anything:
    /// pack the export rows and ship them to every peer (buffered, like
    /// `MPI_Isend`). The returned handle completes the exchange; between
    /// `start` and [`finish`](PendingExchange::finish) the caller may
    /// freely *read* owned rows and must not touch the halo rows the
    /// finish will overwrite.
    pub fn start<'p, T: Copy + Send + 'static>(
        &'p self,
        comm: &Comm,
        data: &[T],
        dim: usize,
        tag: u64,
    ) -> PendingExchange<'p> {
        let me = comm.rank();
        assert_eq!(self.sends.len(), comm.size(), "plan size mismatch");
        for (r, idxs) in self.sends.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let mut packet = Vec::with_capacity(idxs.len() * dim);
            for &i in idxs {
                let base = i as usize * dim;
                packet.extend_from_slice(&data[base..base + dim]);
            }
            comm.send(r, tag, packet);
        }
        PendingExchange {
            plan: self,
            dim,
            tag,
        }
    }

    /// Reverse exchange *accumulating* into the export rows: ships the
    /// halo rows back to their owners and `+=`s them into the owned rows.
    /// (Used by tests and by the ghost-accumulate ablation; the production
    /// backend uses OP2's redundant-execution scheme instead.)
    pub fn execute_reverse_add(&self, comm: &Comm, data: &mut [f64], dim: usize, tag: u64) {
        let me = comm.rank();
        for (r, idxs) in self.recvs.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let mut packet = Vec::with_capacity(idxs.len() * dim);
            for &i in idxs {
                let base = i as usize * dim;
                packet.extend_from_slice(&data[base..base + dim]);
            }
            comm.send(r, tag, packet);
        }
        for (r, idxs) in self.sends.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let packet: Vec<f64> = comm.recv(r, tag);
            assert_eq!(packet.len(), idxs.len() * dim);
            for (k, &i) in idxs.iter().enumerate() {
                let base = i as usize * dim;
                for d in 0..dim {
                    data[base + d] += packet[k * dim + d];
                }
            }
        }
    }
}

/// The receive half of a split halo exchange, returned by
/// [`ExchangePlan::start`]. Dropping it without calling
/// [`finish`](PendingExchange::finish) would leave the peers' packets
/// queued and poison later exchanges on the same tag — the handle is
/// `#[must_use]` for that reason.
#[must_use = "a started exchange must be finished or peers' packets leak into later receives"]
pub struct PendingExchange<'p> {
    plan: &'p ExchangePlan,
    dim: usize,
    tag: u64,
}

impl PendingExchange<'_> {
    /// Receive every peer's packet and unpack it into the halo rows of
    /// `data` (which must be the same dataset `start` packed from).
    /// Blocks only for messages that have not yet arrived — the point of
    /// the split is that compute overlapped since `start` usually means
    /// they all have.
    pub fn finish<T: Copy + Send + 'static>(self, comm: &Comm, data: &mut [T]) {
        let rank = comm.rank();
        let watchdog = comm.watchdog();
        if let Err(e) = self.finish_timeout(comm, data, watchdog) {
            panic!("rank {rank}: {e}");
        }
    }

    /// [`finish`](PendingExchange::finish) with an explicit per-peer
    /// deadline and a typed error instead of the watchdog panic: if any
    /// peer's packet does not become visible within `deadline`, returns
    /// [`ExchangeError::Timeout`] naming that peer. Peers processed
    /// before the failure have already been unpacked into `data` — a
    /// caller that sees an error must treat the whole dataset's halo as
    /// poisoned and roll back (the resilient drivers restore from the
    /// coordinated checkpoint and drain stale packets).
    pub fn finish_timeout<T: Copy + Send + 'static>(
        self,
        comm: &Comm,
        data: &mut [T],
        deadline: Duration,
    ) -> Result<(), ExchangeError> {
        let me = comm.rank();
        let (dim, tag) = (self.dim, self.tag);
        for (r, idxs) in self.plan.recvs.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let packet: Vec<T> = comm.recv_deadline(r, tag, deadline)?;
            assert_eq!(packet.len(), idxs.len() * dim, "halo packet size mismatch");
            for (k, &i) in idxs.iter().enumerate() {
                let base = i as usize * dim;
                data[base..base + dim].copy_from_slice(&packet[k * dim..(k + 1) * dim]);
            }
        }
        Ok(())
    }

    /// Total elements this finish will import (halo recv volume).
    pub fn recv_volume(&self) -> usize {
        self.plan.recv_volume()
    }
}

/// Deadline-and-failure policy for a *sequence* of exchange finishes,
/// shaped for the fused chain's recorded closures: those are plain
/// `Fn()` with no return channel, so errors travel through this guard
/// as a side-channel instead. The first timeout latches
/// [`failed`](ExchangeGuard::failed); every later finish routed through
/// the guard is skipped outright (its packets stay queued — the
/// rollback drains them), so one lost halo can't cascade into a full
/// watchdog stall per remaining exchange.
pub struct ExchangeGuard {
    deadline: Duration,
    failed: AtomicBool,
    timeouts: AtomicU32,
    errors: Mutex<Vec<ExchangeError>>,
}

impl ExchangeGuard {
    /// A guard applying `deadline` to each peer receive it finishes.
    pub fn new(deadline: Duration) -> ExchangeGuard {
        ExchangeGuard {
            deadline,
            failed: AtomicBool::new(false),
            timeouts: AtomicU32::new(0),
            errors: Mutex::new(Vec::new()),
        }
    }

    /// The per-peer receive deadline this guard enforces.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// Finish `pending` under the guard's deadline. On timeout, records
    /// the error and latches the failed flag; once failed, subsequent
    /// calls drop their pending exchange without receiving anything.
    pub fn finish<T: Copy + Send + 'static>(
        &self,
        pending: PendingExchange<'_>,
        comm: &Comm,
        data: &mut [T],
    ) {
        if self.failed.load(Ordering::Acquire) {
            let _ = pending; // skipped: the rollback will drain its packets
            return;
        }
        if let Err(e) = pending.finish_timeout(comm, data, self.deadline) {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            self.errors.lock().push(e);
            self.failed.store(true, Ordering::Release);
        }
    }

    /// Has any finish timed out since the last [`reset`](ExchangeGuard::reset)?
    pub fn failed(&self) -> bool {
        self.failed.load(Ordering::Acquire)
    }

    /// Cumulative number of timed-out finishes over the guard's life.
    pub fn timeouts(&self) -> u32 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Drain the recorded errors (in occurrence order).
    pub fn take_errors(&self) -> Vec<ExchangeError> {
        std::mem::take(&mut *self.errors.lock())
    }

    /// Clear the failed latch for the next step (after the caller has
    /// rolled back and drained the transport).
    pub fn reset(&self) {
        self.failed.store(false, Ordering::Release);
    }
}

/// All-to-all exchange of index lists: `requests[r]` is what this rank
/// wants from rank `r`; the return value's entry `r` is what rank `r`
/// wants from this rank. The standard first step of halo-plan
/// construction ("tell every owner which of its elements I need").
pub fn all_to_all_indices(comm: &Comm, requests: &[Vec<u32>], tag: u64) -> Vec<Vec<u32>> {
    let me = comm.rank();
    let n = comm.size();
    assert_eq!(requests.len(), n);
    for (r, req) in requests.iter().enumerate() {
        if r != me {
            comm.send(r, tag, req.clone());
        }
    }
    let mut out = vec![Vec::new(); n];
    out[me] = requests[me].clone();
    for r in 0..n {
        if r != me {
            out[r] = comm.recv::<Vec<u32>>(r, tag);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Universe;

    #[test]
    fn all_to_all_roundtrip() {
        let out = Universe::new(3).run(|c| {
            let me = c.rank() as u32;
            // rank r asks rank q for [r*10 + q]
            let requests: Vec<Vec<u32>> = (0..3).map(|q| vec![me * 10 + q as u32]).collect();
            let got = all_to_all_indices(c, &requests, 5);
            // rank r receives from q the list [q*10 + r]
            for q in 0..3u32 {
                assert_eq!(got[q as usize], vec![q * 10 + me]);
            }
            true
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn halo_exchange_moves_owner_values_into_ghosts() {
        // 2 ranks; each owns rows 0..3 and has one ghost row 3 mirroring
        // the peer's row 1.
        let out = Universe::new(2).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let dim = 2;
            let mut data = vec![0.0f64; 4 * dim];
            for i in 0..3 {
                data[i * dim] = (me * 100 + i) as f64;
                data[i * dim + 1] = -((me * 100 + i) as f64);
            }
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![1]; // ship my row 1
            plan.recvs[other] = vec![3]; // into my ghost row 3
            plan.execute(c, &mut data, dim, 0);
            (data[3 * dim], data[3 * dim + 1])
        });
        assert_eq!(out[0], (101.0, -101.0));
        assert_eq!(out[1], (1.0, -1.0));
    }

    #[test]
    fn reverse_add_accumulates_ghost_contributions() {
        let out = Universe::new(2).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let mut data = vec![0.0f64; 4];
            data[1] = 10.0; // my owned value
            data[3] = (me + 1) as f64; // my ghost contribution to peer row 1
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![1];
            plan.recvs[other] = vec![3];
            plan.execute_reverse_add(c, &mut data, 1, 0);
            data[1]
        });
        // rank 0's row 1 receives rank 1's ghost (2.0): 10 + 2 = 12
        assert_eq!(out[0], 12.0);
        // rank 1's row 1 receives rank 0's ghost (1.0): 10 + 1 = 11
        assert_eq!(out[1], 11.0);
    }

    /// The split start/finish path must move the same data as the
    /// blocking execute — and tolerate arbitrary compute (here: local
    /// mutation of owned rows) between the two halves.
    #[test]
    fn split_exchange_overlaps_compute_and_matches_blocking() {
        let out = Universe::new(2).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let mut data = vec![0.0f64; 4];
            data[1] = (me * 10 + 1) as f64;
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![1];
            plan.recvs[other] = vec![3];
            let pending = plan.start(c, &data, 1, 7);
            assert_eq!(pending.recv_volume(), 1);
            // "interior compute" while the message is in flight: owned
            // rows may change freely — the packet already holds the
            // packed values
            data[0] = 99.0;
            data[1] = -1.0;
            pending.finish(c, &mut data);
            (data[3], data[1])
        });
        // ghosts hold the value at start() time, not the mutated one
        assert_eq!(out[0], (11.0, -1.0));
        assert_eq!(out[1], (1.0, -1.0));
    }

    #[test]
    fn finish_timeout_surfaces_lost_packet_as_typed_error() {
        use std::sync::Arc;
        let inj = Arc::new(
            ump_fault::FaultPlan::new()
                .with_drop_message(0, 1, 1)
                .injector(),
        );
        let out = Universe::new(2).with_fault(inj).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let mut data = vec![me as f64, 0.0];
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![0];
            plan.recvs[other] = vec![1];
            let pending = plan.start(c, &data, 1, 0);
            let t0 = std::time::Instant::now();
            let res = pending.finish_timeout(c, &mut data, Duration::from_millis(40));
            assert!(t0.elapsed() < Duration::from_secs(5), "no-hang bound blown");
            (res.is_err(), data[1])
        });
        // rank 1's inbound packet was dropped: typed timeout, halo untouched
        assert_eq!(out[1], (true, 0.0));
        // rank 0's exchange was untouched and completed
        assert_eq!(out[0], (false, 1.0));
    }

    #[test]
    fn exchange_guard_latches_and_skips_after_first_timeout() {
        use std::sync::Arc;
        let inj = Arc::new(
            ump_fault::FaultPlan::new()
                .with_drop_message(0, 1, 1)
                .injector(),
        );
        let out = Universe::new(2).with_fault(inj).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let mut a = vec![me as f64 + 1.0, 0.0];
            let mut b = vec![(me as f64 + 1.0) * 10.0, 0.0];
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![0];
            plan.recvs[other] = vec![1];
            let guard = ExchangeGuard::new(Duration::from_millis(40));
            let p1 = plan.start(c, &a, 1, 1);
            let p2 = plan.start(c, &b, 1, 2);
            let t0 = std::time::Instant::now();
            guard.finish(p1, c, &mut a);
            guard.finish(p2, c, &mut b);
            let elapsed = t0.elapsed();
            if guard.failed() {
                // the second finish must have been skipped, not waited out
                assert!(elapsed < Duration::from_millis(200), "guard did not skip");
                assert_eq!(guard.timeouts(), 1);
                assert_eq!(guard.take_errors().len(), 1);
                let drained = c.drain_messages();
                assert!(drained >= 1, "skipped packets should still be queued");
                guard.reset();
                assert!(!guard.failed());
            }
            (guard.timeouts(), a[1], b[1])
        });
        // rank 1 lost the tag-1 packet from rank 0: one timeout, halos stale
        assert_eq!(out[1].0, 1);
        assert_eq!(out[1].1, 0.0);
        // rank 0 saw clean exchanges
        assert_eq!(out[0], (0, 2.0, 20.0));
    }

    #[test]
    fn comm_handles_are_sync() {
        // the fused-chain executors capture &Comm in Sync closures
        fn assert_sync<T: Sync>() {}
        assert_sync::<Comm>();
        assert_sync::<ExchangePlan>();
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let out = Universe::new(2).run(|c| {
            let mut data = vec![1.0f64, 2.0];
            ExchangePlan::empty(2).execute(c, &mut data, 1, 0);
            data
        });
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn volumes() {
        let mut plan = ExchangePlan::empty(3);
        plan.sends[1] = vec![0, 1];
        plan.recvs[2] = vec![5];
        assert_eq!(plan.send_volume(), 2);
        assert_eq!(plan.recv_volume(), 1);
    }

    #[test]
    fn concurrent_exchanges_with_distinct_tags() {
        let out = Universe::new(2).run(|c| {
            let other = 1 - c.rank();
            let mut a = vec![c.rank() as f64 + 1.0, 0.0];
            let mut b = vec![(c.rank() as f64 + 1.0) * 10.0, 0.0];
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![0];
            plan.recvs[other] = vec![1];
            // interleave: both sends go out before either recv completes
            plan.execute(c, &mut a, 1, 1);
            plan.execute(c, &mut b, 1, 2);
            (a[1], b[1])
        });
        assert_eq!(out[0], (2.0, 20.0));
        assert_eq!(out[1], (1.0, 10.0));
    }
}
