//! Index-list exchange and halo data movement.
//!
//! OP2's MPI backend precomputes, per dataset, which elements each rank
//! must *export* to neighbors and *import* into its halo region; every
//! indirect loop then triggers `op_mpi_halo_exchanges` (paper Fig. 2b).
//! This module is the transport half of that machinery: the ownership
//! logic that decides *what* to exchange lives in `ump-core::dist`.

use crate::comm::Comm;

/// A reusable halo-exchange plan for one dataset layout.
///
/// `sends[r]` lists *local* element indices whose values are shipped to
/// rank `r`; `recvs[r]` lists the local (halo) indices the incoming values
/// from rank `r` are unpacked into, in the sender's order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExchangePlan {
    /// Per-peer export index lists (local indices into the data array).
    pub sends: Vec<Vec<u32>>,
    /// Per-peer import index lists (local indices into the data array).
    pub recvs: Vec<Vec<u32>>,
}

impl ExchangePlan {
    /// An empty plan for `size` ranks.
    pub fn empty(size: usize) -> ExchangePlan {
        ExchangePlan {
            sends: vec![Vec::new(); size],
            recvs: vec![Vec::new(); size],
        }
    }

    /// Total exported elements (halo send volume).
    pub fn send_volume(&self) -> usize {
        self.sends.iter().map(Vec::len).sum()
    }

    /// Total imported elements (halo recv volume).
    pub fn recv_volume(&self) -> usize {
        self.recvs.iter().map(Vec::len).sum()
    }

    /// Execute the exchange on a `dim`-component dataset: pack the export
    /// rows, send, receive, unpack into the halo rows. `tag` disambiguates
    /// concurrent exchanges (use the loop's dat index).
    ///
    /// Equivalent to [`start`](ExchangePlan::start) immediately followed
    /// by [`PendingExchange::finish`] — the *blocking* shape. Latency-
    /// hiding callers split the two and compute on interior data while
    /// the messages are in flight.
    pub fn execute<T: Copy + Send + 'static>(
        &self,
        comm: &Comm,
        data: &mut [T],
        dim: usize,
        tag: u64,
    ) {
        self.start(comm, data, dim, tag).finish(comm, data);
    }

    /// Post the send half of the exchange without waiting for anything:
    /// pack the export rows and ship them to every peer (buffered, like
    /// `MPI_Isend`). The returned handle completes the exchange; between
    /// `start` and [`finish`](PendingExchange::finish) the caller may
    /// freely *read* owned rows and must not touch the halo rows the
    /// finish will overwrite.
    pub fn start<'p, T: Copy + Send + 'static>(
        &'p self,
        comm: &Comm,
        data: &[T],
        dim: usize,
        tag: u64,
    ) -> PendingExchange<'p> {
        let me = comm.rank();
        assert_eq!(self.sends.len(), comm.size(), "plan size mismatch");
        for (r, idxs) in self.sends.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let mut packet = Vec::with_capacity(idxs.len() * dim);
            for &i in idxs {
                let base = i as usize * dim;
                packet.extend_from_slice(&data[base..base + dim]);
            }
            comm.send(r, tag, packet);
        }
        PendingExchange {
            plan: self,
            dim,
            tag,
        }
    }

    /// Reverse exchange *accumulating* into the export rows: ships the
    /// halo rows back to their owners and `+=`s them into the owned rows.
    /// (Used by tests and by the ghost-accumulate ablation; the production
    /// backend uses OP2's redundant-execution scheme instead.)
    pub fn execute_reverse_add(&self, comm: &Comm, data: &mut [f64], dim: usize, tag: u64) {
        let me = comm.rank();
        for (r, idxs) in self.recvs.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let mut packet = Vec::with_capacity(idxs.len() * dim);
            for &i in idxs {
                let base = i as usize * dim;
                packet.extend_from_slice(&data[base..base + dim]);
            }
            comm.send(r, tag, packet);
        }
        for (r, idxs) in self.sends.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let packet: Vec<f64> = comm.recv(r, tag);
            assert_eq!(packet.len(), idxs.len() * dim);
            for (k, &i) in idxs.iter().enumerate() {
                let base = i as usize * dim;
                for d in 0..dim {
                    data[base + d] += packet[k * dim + d];
                }
            }
        }
    }
}

/// The receive half of a split halo exchange, returned by
/// [`ExchangePlan::start`]. Dropping it without calling
/// [`finish`](PendingExchange::finish) would leave the peers' packets
/// queued and poison later exchanges on the same tag — the handle is
/// `#[must_use]` for that reason.
#[must_use = "a started exchange must be finished or peers' packets leak into later receives"]
pub struct PendingExchange<'p> {
    plan: &'p ExchangePlan,
    dim: usize,
    tag: u64,
}

impl PendingExchange<'_> {
    /// Receive every peer's packet and unpack it into the halo rows of
    /// `data` (which must be the same dataset `start` packed from).
    /// Blocks only for messages that have not yet arrived — the point of
    /// the split is that compute overlapped since `start` usually means
    /// they all have.
    pub fn finish<T: Copy + Send + 'static>(self, comm: &Comm, data: &mut [T]) {
        let me = comm.rank();
        let (dim, tag) = (self.dim, self.tag);
        for (r, idxs) in self.plan.recvs.iter().enumerate() {
            if r == me || idxs.is_empty() {
                continue;
            }
            let packet: Vec<T> = comm.recv(r, tag);
            assert_eq!(packet.len(), idxs.len() * dim, "halo packet size mismatch");
            for (k, &i) in idxs.iter().enumerate() {
                let base = i as usize * dim;
                data[base..base + dim].copy_from_slice(&packet[k * dim..(k + 1) * dim]);
            }
        }
    }

    /// Total elements this finish will import (halo recv volume).
    pub fn recv_volume(&self) -> usize {
        self.plan.recv_volume()
    }
}

/// All-to-all exchange of index lists: `requests[r]` is what this rank
/// wants from rank `r`; the return value's entry `r` is what rank `r`
/// wants from this rank. The standard first step of halo-plan
/// construction ("tell every owner which of its elements I need").
pub fn all_to_all_indices(comm: &Comm, requests: &[Vec<u32>], tag: u64) -> Vec<Vec<u32>> {
    let me = comm.rank();
    let n = comm.size();
    assert_eq!(requests.len(), n);
    for (r, req) in requests.iter().enumerate() {
        if r != me {
            comm.send(r, tag, req.clone());
        }
    }
    let mut out = vec![Vec::new(); n];
    out[me] = requests[me].clone();
    for r in 0..n {
        if r != me {
            out[r] = comm.recv::<Vec<u32>>(r, tag);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Universe;

    #[test]
    fn all_to_all_roundtrip() {
        let out = Universe::new(3).run(|c| {
            let me = c.rank() as u32;
            // rank r asks rank q for [r*10 + q]
            let requests: Vec<Vec<u32>> = (0..3).map(|q| vec![me * 10 + q as u32]).collect();
            let got = all_to_all_indices(c, &requests, 5);
            // rank r receives from q the list [q*10 + r]
            for q in 0..3u32 {
                assert_eq!(got[q as usize], vec![q * 10 + me]);
            }
            true
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn halo_exchange_moves_owner_values_into_ghosts() {
        // 2 ranks; each owns rows 0..3 and has one ghost row 3 mirroring
        // the peer's row 1.
        let out = Universe::new(2).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let dim = 2;
            let mut data = vec![0.0f64; 4 * dim];
            for i in 0..3 {
                data[i * dim] = (me * 100 + i) as f64;
                data[i * dim + 1] = -((me * 100 + i) as f64);
            }
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![1]; // ship my row 1
            plan.recvs[other] = vec![3]; // into my ghost row 3
            plan.execute(c, &mut data, dim, 0);
            (data[3 * dim], data[3 * dim + 1])
        });
        assert_eq!(out[0], (101.0, -101.0));
        assert_eq!(out[1], (1.0, -1.0));
    }

    #[test]
    fn reverse_add_accumulates_ghost_contributions() {
        let out = Universe::new(2).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let mut data = vec![0.0f64; 4];
            data[1] = 10.0; // my owned value
            data[3] = (me + 1) as f64; // my ghost contribution to peer row 1
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![1];
            plan.recvs[other] = vec![3];
            plan.execute_reverse_add(c, &mut data, 1, 0);
            data[1]
        });
        // rank 0's row 1 receives rank 1's ghost (2.0): 10 + 2 = 12
        assert_eq!(out[0], 12.0);
        // rank 1's row 1 receives rank 0's ghost (1.0): 10 + 1 = 11
        assert_eq!(out[1], 11.0);
    }

    /// The split start/finish path must move the same data as the
    /// blocking execute — and tolerate arbitrary compute (here: local
    /// mutation of owned rows) between the two halves.
    #[test]
    fn split_exchange_overlaps_compute_and_matches_blocking() {
        let out = Universe::new(2).run(|c| {
            let me = c.rank();
            let other = 1 - me;
            let mut data = vec![0.0f64; 4];
            data[1] = (me * 10 + 1) as f64;
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![1];
            plan.recvs[other] = vec![3];
            let pending = plan.start(c, &data, 1, 7);
            assert_eq!(pending.recv_volume(), 1);
            // "interior compute" while the message is in flight: owned
            // rows may change freely — the packet already holds the
            // packed values
            data[0] = 99.0;
            data[1] = -1.0;
            pending.finish(c, &mut data);
            (data[3], data[1])
        });
        // ghosts hold the value at start() time, not the mutated one
        assert_eq!(out[0], (11.0, -1.0));
        assert_eq!(out[1], (1.0, -1.0));
    }

    #[test]
    fn comm_handles_are_sync() {
        // the fused-chain executors capture &Comm in Sync closures
        fn assert_sync<T: Sync>() {}
        assert_sync::<Comm>();
        assert_sync::<ExchangePlan>();
    }

    #[test]
    fn empty_plan_is_a_no_op() {
        let out = Universe::new(2).run(|c| {
            let mut data = vec![1.0f64, 2.0];
            ExchangePlan::empty(2).execute(c, &mut data, 1, 0);
            data
        });
        assert_eq!(out[0], vec![1.0, 2.0]);
    }

    #[test]
    fn volumes() {
        let mut plan = ExchangePlan::empty(3);
        plan.sends[1] = vec![0, 1];
        plan.recvs[2] = vec![5];
        assert_eq!(plan.send_volume(), 2);
        assert_eq!(plan.recv_volume(), 1);
    }

    #[test]
    fn concurrent_exchanges_with_distinct_tags() {
        let out = Universe::new(2).run(|c| {
            let other = 1 - c.rank();
            let mut a = vec![c.rank() as f64 + 1.0, 0.0];
            let mut b = vec![(c.rank() as f64 + 1.0) * 10.0, 0.0];
            let mut plan = ExchangePlan::empty(2);
            plan.sends[other] = vec![0];
            plan.recvs[other] = vec![1];
            // interleave: both sends go out before either recv completes
            plan.execute(c, &mut a, 1, 1);
            plan.execute(c, &mut b, 1, 2);
            (a[1], b[1])
        });
        assert_eq!(out[0], (2.0, 20.0));
        assert_eq!(out[1], (1.0, 10.0));
    }
}
