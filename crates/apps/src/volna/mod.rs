//! The Volna shallow-water tsunami benchmark (paper §6.1, Table III).
//!
//! Volna proper solves the nonlinear shallow-water equations with a
//! finite-volume scheme on triangles; its OP2 port runs six kernels per
//! step. The original's flux function and real bathymetry are not
//! public, so per DESIGN.md we implement a standard equivalent — a
//! Rusanov (local Lax–Friedrichs) flux with a centered bed-slope source
//! on the synthetic coastal mesh — keeping the kernel names, iteration
//! sets, and access shapes of Table III:
//!
//! ```text
//! sim_1          cells  direct copy            w_old ← w
//! compute_flux   edges  gather, direct write   Rusanov flux + wave speed
//! numerical_flux edges  gather, reduction      CFL timestep (min-reduce)
//! space_disc     edges  gather, scatter        accumulate cell residuals
//! bc_flux        bedges boundary               reflective-wall closure
//! RK_1           cells  direct                 Heun stage 1
//! RK_2           cells  direct                 Heun stage 2
//! ```
//!
//! State per cell is `w = (h, hu, hv, b)`: water column height, momenta,
//! and static bed elevation (negative below sea level) riding in slot 3
//! so gathers move one aligned 4-vector per cell. The paper runs Volna in
//! single precision; kernels stay generic over `R` so tests can pin the
//! f32 backends against an f64 reference.

pub mod drivers;
pub mod kernels;
pub mod kernels_vec;
pub mod mpi;

use ump_core::{Access, ArgInfo, Layout, LoopProfile, OpDat};
use ump_mesh::generators::{tri_coastal, CoastalCase};
use ump_simd::Real;

/// Gravity (the paper's tsunami setting is dimensional).
pub const GRAVITY: f64 = 9.81;
/// CFL number for the explicit RK2 scheme.
pub const CFL: f64 = 0.4;
/// Minimum water column to keep the flux function finite.
pub const H_MIN: f64 = 1.0e-6;

/// The Volna simulation state at precision `R`.
#[derive(Clone, Debug)]
pub struct Volna<R: Real> {
    /// Mesh, bathymetry and source.
    pub case: CoastalCase,
    /// Cell state (h, hu, hv, b).
    pub w: OpDat<R>,
    /// Saved state (sim_1's target).
    pub w_old: OpDat<R>,
    /// RK stage state.
    pub w1: OpDat<R>,
    /// Cell residuals (slot 3 unused, kept for aligned 4-vectors).
    pub res: OpDat<R>,
    /// Cell areas.
    pub area: OpDat<R>,
    /// Edge geometry (nx, ny, len, 0): unit normal out of `edge2cell[0]`
    /// plus the edge length in slot 2.
    pub egeom: OpDat<R>,
    /// Edge fluxes (f_h, f_hu, f_hv, λ·len) written by `compute_flux`.
    pub eflux: OpDat<R>,
    /// Boundary-edge geometry (nx·len, ny·len): outward normal of the
    /// boundary cell scaled by edge length, consumed by `bc_flux`.
    pub bgeom: OpDat<R>,
}

impl<R: Real> Volna<R> {
    /// Set up the benchmark on an `nx × ny` coastal triangle mesh (the
    /// paper's mesh is ≈ 2.39M cells ≈ `tri_coastal(1096, 1092)`).
    pub fn new(nx: usize, ny: usize) -> Volna<R> {
        Self::from_case(tri_coastal(nx, ny))
    }

    /// Like [`new`](Volna::new), with the initial free-surface
    /// displacement deterministically rescaled from `seed` — the
    /// per-job initial conditions of the service layer. Seed 0 is the
    /// pristine case. Each cell's surface elevation η is scaled by
    /// ±5 % (SplitMix64 stream); the water column stays at least the
    /// still-water depth minus 5 % of the source amplitude, so every
    /// seeded case remains wet and stable.
    pub fn seeded(nx: usize, ny: usize, seed: u64) -> Volna<R> {
        let mut sim = Self::new(nx, ny);
        if seed != 0 {
            let mut rng = ump_mesh::SplitMix64::new(seed);
            for c in 0..sim.w.set_size {
                let scale = R::from_f64(1.0 + 0.1 * (rng.next_f64() - 0.5));
                let row = sim.w.row_mut(c);
                let b = row[3];
                // h = depth + η·scale, with depth = −b and η = h + b
                let eta = row[0] + b;
                row[0] = -b + eta * scale;
            }
        }
        sim
    }

    /// Set up on a prebuilt case: still water plus the tsunami source.
    /// Runs the lane-locality edge pass first (see
    /// [`Airfoil::from_case`](crate::airfoil::Airfoil::from_case)); the
    /// edge dats below are built after the reorder, so everything stays
    /// consistent.
    pub fn from_case(mut case: CoastalCase) -> Volna<R> {
        ump_mesh::renumber::lane_localize_edges(&mut case.mesh);
        Self::from_case_preordered(case)
    }

    /// As [`from_case`](Volna::from_case) but *without* the
    /// lane-locality edge pass — for callers whose edge order already
    /// encodes structure that a reorder would break (rank-local meshes,
    /// where the owned edges form a prefix and `edge_global` mirrors the
    /// order). The globally lane-localized mesh passes its order down to
    /// the rank pieces, so locality is preserved anyway.
    pub fn from_case_preordered(case: CoastalCase) -> Volna<R> {
        let mesh = &case.mesh;
        let (nc, ne) = (mesh.n_cells(), mesh.n_edges());
        let w = OpDat::from_fn("w", nc, 4, |c| {
            let depth = case.bathy_cell[c];
            let eta = case.eta0_cell[c];
            let b = -depth; // bed elevation, negative under water
            let h = depth + eta;
            vec![R::from_f64(h), R::ZERO, R::ZERO, R::from_f64(b)]
        });
        let area = OpDat::from_fn("area", nc, 1, |c| vec![R::from_f64(mesh.cell_area(c))]);
        let egeom = OpDat::from_fn("egeom", ne, 4, |e| {
            let n = mesh.edge2node.row(e);
            let a = mesh.node_xy[n[0] as usize];
            let b = mesh.node_xy[n[1] as usize];
            // dx, dy as in the Airfoil kernels: a - b; outward normal of
            // the right cell (edge2cell[0]) is (dy, -dx)/len
            let (dx, dy) = (a[0] - b[0], a[1] - b[1]);
            let len = (dx * dx + dy * dy).sqrt();
            vec![
                R::from_f64(dy / len),
                R::from_f64(-dx / len),
                R::from_f64(len),
                R::ZERO,
            ]
        });
        let bgeom = OpDat::from_fn("bgeom", mesh.n_bedges(), 2, |be| {
            let n = mesh.bedge2node.row(be);
            let a = mesh.node_xy[n[0] as usize];
            let b = mesh.node_xy[n[1] as usize];
            let (dx, dy) = (a[0] - b[0], a[1] - b[1]);
            // outward normal of the (right-lying) cell times length
            vec![R::from_f64(dy), R::from_f64(-dx)]
        });
        Volna {
            w_old: OpDat::zeros("w_old", nc, 4),
            w1: OpDat::zeros("w1", nc, 4),
            res: OpDat::zeros("res", nc, 4),
            eflux: OpDat::zeros("eflux", ne, 4),
            w,
            area,
            egeom,
            bgeom,
            case,
        }
    }

    /// Storage layout of the simulation dats (uniform —
    /// [`set_layout`](Volna::set_layout) converts all of them together).
    pub fn layout(&self) -> Layout {
        self.w.layout
    }

    /// Convert every dat to `to`. A pure index permutation (bit-exact);
    /// the fused backends execute natively in any layout, the remaining
    /// backends convert back to AoS around each step.
    pub fn set_layout(&mut self, to: Layout) {
        self.w.set_layout(to);
        self.w_old.set_layout(to);
        self.w1.set_layout(to);
        self.res.set_layout(to);
        self.area.set_layout(to);
        self.egeom.set_layout(to);
        self.eflux.set_layout(to);
        self.bgeom.set_layout(to);
    }

    /// Total water volume Σ h·A — exactly conserved by the scheme
    /// (boundary edges are reflective walls: no mass flux).
    pub fn total_volume(&self) -> f64 {
        (0..self.w.set_size)
            .map(|c| self.w.row(c)[0].to_f64() * self.area.row(c)[0].to_f64())
            .sum()
    }

    /// Total dat memory footprint in bytes (Table IV's Volna row).
    pub fn dat_bytes(&self) -> usize {
        self.w.bytes()
            + self.w_old.bytes()
            + self.w1.bytes()
            + self.res.bytes()
            + self.area.bytes()
            + self.egeom.bytes()
            + self.eflux.bytes()
    }

    /// Maximum |free surface| — the wave amplitude, for sanity checks.
    pub fn max_eta(&self) -> f64 {
        (0..self.w.set_size)
            .map(|c| {
                let r = self.w.row(c);
                (r[0].to_f64() + r[3].to_f64()).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Static profiles of the six kernels (the Table III analogue, derived
/// from our actual argument lists — the paper's exact counts differ
/// slightly because Volna's flux function is not public; see
/// EXPERIMENTS.md).
pub fn profiles() -> Vec<LoopProfile> {
    vec![
        LoopProfile {
            name: "sim_1".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("w", 4, Access::Read),
                ArgInfo::direct("w_old", 4, Access::Write),
            ],
            flops_per_elem: 0.0,
            transcendentals_per_elem: 0.0,
            description: "Direct copy".into(),
        },
        LoopProfile {
            name: "compute_flux".into(),
            set: "edges".into(),
            args: vec![
                ArgInfo::direct("egeom", 4, Access::Read),
                ArgInfo::indirect("w", 4, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("w", 4, Access::Read, "edge2cell", 1),
                ArgInfo::direct("eflux", 4, Access::Write),
            ],
            flops_per_elem: 56.0,
            transcendentals_per_elem: 2.0,
            description: "Gather, direct write".into(),
        },
        LoopProfile {
            name: "numerical_flux".into(),
            set: "edges".into(),
            args: vec![
                ArgInfo::direct("egeom", 4, Access::Read),
                ArgInfo::direct("eflux", 4, Access::Read),
                ArgInfo::indirect("area", 1, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("area", 1, Access::Read, "edge2cell", 1),
                ArgInfo::global("dt", 1, Access::Inc),
            ],
            flops_per_elem: 6.0,
            transcendentals_per_elem: 0.0,
            description: "Gather, reduction".into(),
        },
        LoopProfile {
            name: "space_disc".into(),
            set: "edges".into(),
            args: vec![
                ArgInfo::direct("egeom", 4, Access::Read),
                ArgInfo::direct("eflux", 4, Access::Read),
                ArgInfo::indirect("w", 4, Access::Read, "edge2cell", 0),
                ArgInfo::indirect("w", 4, Access::Read, "edge2cell", 1),
                ArgInfo::indirect("res", 4, Access::Inc, "edge2cell", 0),
                ArgInfo::indirect("res", 4, Access::Inc, "edge2cell", 1),
            ],
            flops_per_elem: 23.0,
            transcendentals_per_elem: 0.0,
            description: "Gather, scatter".into(),
        },
        LoopProfile {
            name: "bc_flux".into(),
            set: "bedges".into(),
            args: vec![
                ArgInfo::direct("bgeom", 2, Access::Read),
                ArgInfo::indirect("w", 4, Access::Read, "bedge2cell", 0),
                ArgInfo::indirect("res", 4, Access::Inc, "bedge2cell", 0),
            ],
            flops_per_elem: 9.0,
            transcendentals_per_elem: 0.0,
            description: "Boundary (reflective wall)".into(),
        },
        LoopProfile {
            name: "RK_1".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("w_old", 4, Access::Read),
                ArgInfo::direct("res", 4, Access::Rw),
                ArgInfo::direct("w1", 4, Access::Write),
                ArgInfo::direct("area", 1, Access::Read),
                ArgInfo::global("dt", 1, Access::Read),
            ],
            flops_per_elem: 12.0,
            transcendentals_per_elem: 0.0,
            description: "Direct".into(),
        },
        LoopProfile {
            name: "RK_2".into(),
            set: "cells".into(),
            args: vec![
                ArgInfo::direct("w_old", 4, Access::Read),
                ArgInfo::direct("w1", 4, Access::Read),
                ArgInfo::direct("res", 4, Access::Rw),
                ArgInfo::direct("w", 4, Access::Write),
                ArgInfo::direct("area", 1, Access::Read),
                ArgInfo::global("dt", 1, Access::Read),
            ],
            flops_per_elem: 16.0,
            transcendentals_per_elem: 0.0,
            description: "Direct".into(),
        },
    ]
}

/// Look up one profile by kernel name. Served from a process-wide cache:
/// instrumented and fused drivers resolve profiles every loop of every
/// step, which must not rebuild the whole signature vocabulary.
pub fn profile(name: &str) -> LoopProfile {
    static CACHE: std::sync::OnceLock<Vec<LoopProfile>> = std::sync::OnceLock::new();
    CACHE
        .get_or_init(profiles)
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown volna kernel {name}"))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_is_still_water_plus_source() {
        let v: Volna<f64> = Volna::new(12, 8);
        assert_eq!(v.w.set_size, 12 * 8 * 2);
        // every water column positive, eta = h + b equals the source
        for c in 0..v.w.set_size {
            let r = v.w.row(c);
            assert!(r[0].to_f64() > 0.0, "dry cell {c}");
            let eta = r[0] + r[3];
            assert!((eta - v.case.eta0_cell[c]).abs() < 1e-12);
            assert_eq!(r[1], 0.0);
        }
        assert!(v.max_eta() > 0.4, "source peak present");
    }

    #[test]
    fn edge_normals_are_unit_and_outward_of_first_cell() {
        let v: Volna<f64> = Volna::new(6, 6);
        let mesh = &v.case.mesh;
        for e in 0..mesh.n_edges() {
            let g = v.egeom.row(e);
            let (nx, ny, len) = (g[0], g[1], g[2]);
            assert!((nx * nx + ny * ny - 1.0).abs() < 1e-12, "unit normal");
            assert!(len > 0.0);
            // outward of cell 0: midpoint + eps*n must be farther from
            // cell 0's centroid than the midpoint itself
            let n = mesh.edge2node.row(e);
            let a = mesh.node_xy[n[0] as usize];
            let b = mesh.node_xy[n[1] as usize];
            let mid = [(a[0] + b[0]) * 0.5, (a[1] + b[1]) * 0.5];
            let c0 = mesh.cell_centroid(mesh.edge2cell.at(e, 0));
            let d0 = (mid[0] - c0[0]) * nx + (mid[1] - c0[1]) * ny;
            assert!(d0 > 0.0, "edge {e} normal points into cell 0");
        }
    }

    #[test]
    fn seeded_stays_wet_and_deterministic() {
        let a: Volna<f64> = Volna::seeded(12, 8, 41);
        let b: Volna<f64> = Volna::seeded(12, 8, 41);
        let p: Volna<f64> = Volna::new(12, 8);
        assert_eq!(a.w.data, b.w.data);
        assert_ne!(a.w.data, p.w.data);
        assert_eq!(Volna::<f64>::seeded(12, 8, 0).w.data, p.w.data);
        for c in 0..a.w.set_size {
            let r = a.w.row(c);
            assert!(r[0] > 0.0, "cell {c} dried out");
            // η scaled by at most ±5 %
            let (eta, eta0) = (r[0] + r[3], p.w.row(c)[0] + p.w.row(c)[3]);
            assert!((eta - eta0).abs() <= 0.051 * eta0.abs() + 1e-12);
        }
    }

    #[test]
    fn profiles_have_paper_shape() {
        let sd = profile("space_disc");
        let t = sd.transfers();
        assert_eq!(t.direct_read, 8); // paper: 8
        assert_eq!(t.indirect_write, 8); // paper: 8
        assert!(sd.needs_coloring());
        let nf = profile("numerical_flux");
        assert!(nf.has_reduction());
        assert!(!profile("sim_1").is_indirect());
        assert!(!profile("RK_1").needs_coloring());
        let cf = profile("compute_flux");
        assert!(cf.is_indirect() && !cf.needs_coloring());
    }

    #[test]
    fn footprint_volna_paper_scale() {
        // paper: 355 MB SP for 2.39M cells / 3.59M edges — our dats at
        // that scale: cells*13 + edges*8 words
        let words = 2_392_352usize * 13 + 3_589_735 * 8;
        let mb = words * 4 / 1_000_000;
        assert!((100..500).contains(&mb), "{mb} MB");
    }
}
