//! The Volna user kernels, scalar form (see module docs for the scheme).

use ump_simd::Real;

/// `sim_1`: save the state (direct copy, cells).
#[inline(always)]
pub fn sim_1<R: Real>(w: &[R], w_old: &mut [R]) {
    for n in 0..4 {
        w_old[n] = w[n];
    }
}

/// `compute_flux`: Rusanov flux through one edge (gather both cell
/// states, write the edge flux + wave speed). `geom = (nx, ny, len, _)`,
/// normal out of the *left* argument's cell (`edge2cell[0]`). The flux is
/// pre-multiplied by the edge length; λ·len rides in slot 3.
#[inline(always)]
pub fn compute_flux<R: Real>(geom: &[R], wl: &[R], wr: &[R], eflux: &mut [R], g: R, h_min: R) {
    let (nx, ny, len) = (geom[0], geom[1], geom[2]);

    let hl = wl[0].max(h_min);
    let hr = wr[0].max(h_min);
    let (hul, hvl) = (wl[1], wl[2]);
    let (hur, hvr) = (wr[1], wr[2]);

    let (ul, vl) = (hul / hl, hvl / hl);
    let (ur, vr) = (hur / hr, hvr / hr);
    let unl = ul * nx + vl * ny;
    let unr = ur * nx + vr * ny;
    let cl = (g * hl).sqrt();
    let cr = (g * hr).sqrt();
    let lambda = (unl.abs() + cl).max(unr.abs() + cr);

    let half = R::HALF;
    let pl = half * g * hl * hl;
    let pr = half * g * hr * hr;

    // physical fluxes projected on n
    let fl0 = hl * unl;
    let fr0 = hr * unr;
    let fl1 = hul * unl + pl * nx;
    let fr1 = hur * unr + pr * nx;
    let fl2 = hvl * unl + pl * ny;
    let fr2 = hvr * unr + pr * ny;

    // Rusanov: central + dissipation ∝ λ. The mass dissipation acts on
    // the *free surface* difference η = h + b, not on h itself —
    // otherwise a lake at rest over varying bathymetry pumps mass
    // (the standard hydrostatic LLF correction).
    let deta = (wr[0] + wr[3]) - (wl[0] + wl[3]);
    eflux[0] = (half * (fl0 + fr0) - half * lambda * deta) * len;
    eflux[1] = (half * (fl1 + fr1) - half * lambda * (wr[1] - wl[1])) * len;
    eflux[2] = (half * (fl2 + fr2) - half * lambda * (wr[2] - wl[2])) * len;
    eflux[3] = lambda * len;
}

/// `numerical_flux`: CFL timestep candidate of one edge, min-reduced into
/// `dt_min` (gather the two cell areas, read the wave speed).
#[inline(always)]
pub fn numerical_flux<R: Real>(
    geom: &[R],
    eflux: &[R],
    area_l: R,
    area_r: R,
    dt_min: &mut R,
    cfl: R,
) {
    let lam_len = eflux[3].max(R::from_f64(1e-12));
    let _ = geom[2]; // len already folded into λ·len
    let dt = cfl * area_l.min(area_r) / lam_len;
    *dt_min = (*dt_min).min(dt);
}

/// `space_disc`: accumulate the edge flux and the centered bed-slope
/// source into both cell residuals (gather, colored scatter). Residual
/// convention: `dW/dt = −res/A`, so outflow adds to the first (right)
/// cell and subtracts from the second.
#[inline(always)]
pub fn space_disc<R: Real>(
    geom: &[R],
    eflux: &[R],
    wl: &[R],
    wr: &[R],
    res_l: &mut [R],
    res_r: &mut [R],
    g: R,
) {
    let (nx, ny, len) = (geom[0], geom[1], geom[2]);
    res_l[0] += eflux[0];
    res_r[0] -= eflux[0];
    res_l[1] += eflux[1];
    res_r[1] -= eflux[1];
    res_l[2] += eflux[2];
    res_r[2] -= eflux[2];

    // Green-Gauss bed-slope source: res_hu += g·h_cell·b_face·n·len
    let b_face = R::HALF * (wl[3] + wr[3]);
    let sl = g * wl[0] * b_face * len;
    let sr = g * wr[0] * b_face * len;
    res_l[1] += sl * nx;
    res_l[2] += sl * ny;
    res_r[1] -= sr * nx;
    res_r[2] -= sr * ny;
}

/// `bc_flux`: reflective-wall boundary flux. A wall face carries no mass
/// or convective flux, only the cell's own pressure plus its share of the
/// bed-slope source — exactly the terms that close the face loop of a
/// boundary cell (without this, a lake at rest develops boundary
/// currents). `x1`,`x2` are the boundary edge's nodes, cell on the right.
/// `bgeom = (nx·len, ny·len)` — the outward normal of the cell scaled by
/// the edge length, precomputed at setup like `egeom`.
#[inline(always)]
pub fn bc_flux<R: Real>(bgeom: &[R], w: &[R], res: &mut [R], g: R) {
    let h = w[0];
    let p = R::HALF * g * h * h;
    let s = p + g * h * w[3]; // pressure + bed-source share (b_f = b_cell)
    res[1] += s * bgeom[0];
    res[2] += s * bgeom[1];
}

/// `RK_1`: Heun predictor `w1 = w_old − (dt/A)·res`, residual zeroed.
#[inline(always)]
pub fn rk_1<R: Real>(w_old: &[R], res: &mut [R], w1: &mut [R], area: R, dt: R) {
    let f = dt / area;
    for n in 0..4 {
        w1[n] = w_old[n] - f * res[n];
        res[n] = R::ZERO;
    }
}

/// `RK_2`: Heun corrector `w = ½(w_old + w1 − (dt/A)·res)`, residual
/// zeroed.
#[inline(always)]
pub fn rk_2<R: Real>(w_old: &[R], w1: &[R], res: &mut [R], w: &mut [R], area: R, dt: R) {
    let f = dt / area;
    for n in 0..4 {
        w[n] = R::HALF * (w_old[n] + w1[n] - f * res[n]);
        res[n] = R::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: f64 = super::super::GRAVITY;

    #[test]
    fn sim_1_copies() {
        let w = [2.0, 0.1, -0.2, -3.0];
        let mut w_old = [0.0; 4];
        sim_1(&w, &mut w_old);
        assert_eq!(w_old, w);
    }

    #[test]
    fn flux_vanishes_for_identical_still_states() {
        let geom = [1.0, 0.0, 0.5, 0.0];
        let w = [2.0, 0.0, 0.0, -2.0];
        let mut f = [0.0f64; 4];
        compute_flux(&geom, &w, &w, &mut f, G, 1e-6);
        assert_eq!(f[0], 0.0, "no mass flux at rest");
        assert!(f[1] > 0.0, "pressure flux present in normal direction");
        assert_eq!(f[2], 0.0);
        assert!(f[3] > 0.0, "wave speed positive");
        // λ = sqrt(g h) · len
        assert!((f[3] - (G * 2.0f64).sqrt() * 0.5).abs() < 1e-12);
    }

    #[test]
    fn flux_is_antisymmetric_in_orientation() {
        // flipping the normal and swapping the states must negate the
        // mass flux (conservation across the edge)
        let geom_p = [0.6, 0.8, 1.0, 0.0];
        let geom_m = [-0.6, -0.8, 1.0, 0.0];
        let wl = [2.0, 0.3, -0.1, -2.0];
        let wr = [1.5, -0.2, 0.4, -1.5];
        let mut fp = [0.0f64; 4];
        let mut fm = [0.0f64; 4];
        compute_flux(&geom_p, &wl, &wr, &mut fp, G, 1e-6);
        compute_flux(&geom_m, &wr, &wl, &mut fm, G, 1e-6);
        for n in 0..3 {
            assert!((fp[n] + fm[n]).abs() < 1e-12, "component {n}");
        }
        assert!((fp[3] - fm[3]).abs() < 1e-12, "wave speed is symmetric");
    }

    #[test]
    fn dt_scales_with_cell_size_and_wave_speed() {
        let geom = [1.0, 0.0, 2.0, 0.0];
        let eflux = [0.0, 0.0, 0.0, 10.0];
        let mut dt = f64::INFINITY;
        numerical_flux(&geom, &eflux, 4.0, 9.0, &mut dt, 0.4);
        assert!((dt - 0.4 * 4.0 / 10.0).abs() < 1e-12);
        // a slower edge cannot raise the minimum
        let eflux2 = [0.0, 0.0, 0.0, 1.0];
        numerical_flux(&geom, &eflux2, 4.0, 9.0, &mut dt, 0.4);
        assert!((dt - 0.16).abs() < 1e-12);
    }

    #[test]
    fn space_disc_conserves_mass_exactly() {
        let geom = [0.6, 0.8, 1.3, 0.0];
        let eflux = [1.7, -0.4, 0.9, 3.0];
        let wl = [2.0, 0.0, 0.0, -2.0];
        let wr = [1.0, 0.1, 0.0, -1.0];
        let mut rl = [0.0f64; 4];
        let mut rr = [0.0f64; 4];
        space_disc(&geom, &eflux, &wl, &wr, &mut rl, &mut rr, G);
        assert!((rl[0] + rr[0]).abs() < 1e-12, "mass antisymmetric");
        assert_eq!(rl[3], 0.0, "slot 3 untouched");
        assert_eq!(rr[3], 0.0);
    }

    #[test]
    fn rk_stages_advance_and_zero_residual() {
        let w_old = [2.0, 0.0, 0.0, -2.0];
        let mut res = [0.4, 0.8, -0.4, 0.0];
        let mut w1 = [0.0; 4];
        rk_1(&w_old, &mut res, &mut w1, 2.0, 0.5);
        assert_eq!(w1[0], 2.0 - 0.25 * 0.4);
        assert_eq!(res, [0.0; 4]);
        assert_eq!(w1[3], -2.0, "bed elevation unchanged");

        let mut res2 = [0.2, 0.0, 0.0, 0.0];
        let mut w = [0.0; 4];
        rk_2(&w_old, &w1, &mut res2, &mut w, 2.0, 0.5);
        assert!((w[0] - 0.5 * (2.0 + w1[0] - 0.25 * 0.2)).abs() < 1e-15);
        assert_eq!(w[3], -2.0);
        assert_eq!(res2, [0.0; 4]);
    }
}
