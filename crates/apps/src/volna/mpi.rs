//! The Volna message-passing backend: same owner-compute + redundant
//! exec-halo scheme as Airfoil's (see `airfoil::mpi`), with the
//! shallow-water twist that the CFL timestep is a *global* min-reduction
//! — the implicit synchronization point §6.5 charges the Phi for.
//!
//! Per rank and time step:
//!
//! ```text
//! sim_1 over owned cells
//! phase 1: halo-exchange w → compute_flux/numerical_flux/space_disc/bc
//!          over ALL local edges, dt = allreduce_min, RK_1 over owned
//! phase 2: halo-exchange w1 → flux kernels on w1, RK_2 over owned
//! ```

use ump_color::PlanInputs;
use ump_core::{distribute, ExecPool, LocalMesh, OpDat, PlanCache, Recorder, Scheme, SharedDat};
use ump_mesh::generators::CoastalCase;
use ump_minimpi::{Comm, Universe};
use ump_part::rcb;
use ump_simd::Real;

use super::kernels::{bc_flux, compute_flux, numerical_flux, rk_1, rk_2, sim_1, space_disc};
use super::{Volna, CFL, GRAVITY, H_MIN};

/// A rank-local Volna state (geometry-derived dats rebuilt from the
/// local mesh; cell state extracted from the global case).
pub struct RankState<R: Real> {
    /// The rank's mesh piece.
    pub local: LocalMesh,
    /// Cell state (owned + ghost).
    pub w: OpDat<R>,
    /// Saved state.
    pub w_old: OpDat<R>,
    /// RK stage state.
    pub w1: OpDat<R>,
    /// Residuals.
    pub res: OpDat<R>,
    /// Cell areas (local geometry).
    pub area: OpDat<R>,
    /// Edge geometry.
    pub egeom: OpDat<R>,
    /// Edge fluxes.
    pub eflux: OpDat<R>,
    /// Boundary-edge geometry.
    pub bgeom: OpDat<R>,
}

impl<R: Real> RankState<R> {
    /// Build a rank's state from the global case and its mesh piece.
    pub fn new(case: &CoastalCase, local: LocalMesh) -> RankState<R> {
        // reuse the single-process constructor on the *local* mesh for
        // all geometry-derived dats, then overwrite the physical state
        // from the global initial condition through the id maps
        let local_case = CoastalCase {
            mesh: local.mesh.clone(),
            bathy_cell: local
                .cell_global
                .iter()
                .map(|&g| case.bathy_cell[g as usize])
                .collect(),
            eta0_cell: local
                .cell_global
                .iter()
                .map(|&g| case.eta0_cell[g as usize])
                .collect(),
        };
        let sim = Volna::<R>::from_case(local_case);
        RankState {
            w: sim.w,
            w_old: sim.w_old,
            w1: sim.w1,
            res: sim.res,
            area: sim.area,
            egeom: sim.egeom,
            eflux: sim.eflux,
            bgeom: sim.bgeom,
            local,
        }
    }

    /// One RK2 step on this rank; returns the globally-agreed Δt.
    pub fn step(&mut self, comm: &Comm, rec: Option<&Recorder>) -> f64 {
        let g = R::from_f64(GRAVITY);
        let h_min = R::from_f64(H_MIN);
        let cfl = R::from_f64(CFL);
        let mesh = &self.local.mesh;
        let n_owned = self.local.n_owned_cells;
        let time = |rec: Option<&Recorder>, name: &str, n: usize, f: &mut dyn FnMut()| match rec {
            Some(r) => r.time(&super::profile(name), R::BYTES, n, f),
            None => f(),
        };

        time(rec, "sim_1", n_owned, &mut || {
            for c in 0..n_owned {
                let (w, w_old) = (&self.w, &mut self.w_old);
                sim_1(w.row(c), w_old.row_mut(c));
            }
        });

        let mut dt = R::INFINITY;
        let mut global_dt = f64::INFINITY;
        for phase in 0..2u64 {
            // refresh ghosts of the state the flux kernels will gather
            if phase == 0 {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w.data, 4, phase);
            } else {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w1.data, 4, phase);
            }
            let state = if phase == 0 { &self.w } else { &self.w1 };
            time(rec, "compute_flux", mesh.n_edges(), &mut || {
                for e in 0..mesh.n_edges() {
                    let c = mesh.edge2cell.row(e);
                    compute_flux(
                        self.egeom.row(e),
                        state.row(c[0] as usize),
                        state.row(c[1] as usize),
                        self.eflux.row_mut(e),
                        g,
                        h_min,
                    );
                }
            });
            if phase == 0 {
                time(rec, "numerical_flux", mesh.n_edges(), &mut || {
                    for e in 0..mesh.n_edges() {
                        let c = mesh.edge2cell.row(e);
                        numerical_flux(
                            self.egeom.row(e),
                            self.eflux.row(e),
                            self.area.row(c[0] as usize)[0],
                            self.area.row(c[1] as usize)[0],
                            &mut dt,
                            cfl,
                        );
                    }
                });
                // the global CFL step: the implicit synchronization point
                global_dt = comm.allreduce_min(dt.to_f64());
            }
            let dt_step = R::from_f64(global_dt);
            time(rec, "space_disc", mesh.n_edges(), &mut || {
                for e in 0..mesh.n_edges() {
                    let c = mesh.edge2cell.row(e);
                    let (c0, c1) = (c[0] as usize, c[1] as usize);
                    let (rl, rr) =
                        crate::airfoil::drivers::two_rows_mut(&mut self.res.data, 4, c0, c1);
                    space_disc(
                        self.egeom.row(e),
                        self.eflux.row(e),
                        state.row(c0),
                        state.row(c1),
                        rl,
                        rr,
                        g,
                    );
                }
            });
            time(rec, "bc_flux", mesh.n_bedges(), &mut || {
                for be in 0..mesh.n_bedges() {
                    let c0 = mesh.bedge2cell.at(be, 0);
                    bc_flux(self.bgeom.row(be), state.row(c0), self.res.row_mut(c0), g);
                }
            });
            let rk_name = if phase == 0 { "RK_1" } else { "RK_2" };
            time(rec, rk_name, n_owned, &mut || {
                for c in 0..n_owned {
                    if phase == 0 {
                        let (w_old, res, w1, area) =
                            (&self.w_old, &mut self.res, &mut self.w1, &self.area);
                        rk_1(
                            w_old.row(c),
                            res.row_mut(c),
                            w1.row_mut(c),
                            area.row(c)[0],
                            dt_step,
                        );
                    } else {
                        let (w_old, w1, res, w, area) = (
                            &self.w_old,
                            &self.w1,
                            &mut self.res,
                            &mut self.w,
                            &self.area,
                        );
                        rk_2(
                            w_old.row(c),
                            w1.row(c),
                            res.row_mut(c),
                            w.row_mut(c),
                            area.row(c)[0],
                            dt_step,
                        );
                    }
                }
                // discard ghost increments (owners recompute them)
                for v in &mut self.res.data[n_owned * 4..] {
                    *v = R::ZERO;
                }
            });
        }
        global_dt
    }
}

impl<R: Real> RankState<R> {
    /// One RK2 step with colored-block threading *inside* the rank — the
    /// MPI×threads hybrid configuration (paper §6.5), on the rank's
    /// persistent [`ExecPool`]. Same communication pattern and ghost
    /// discipline as [`RankState::step`]; compute loops run as colored
    /// blocks over the rank-local plans.
    pub fn step_threaded(
        &mut self,
        comm: &Comm,
        cache: &PlanCache,
        pool: &ExecPool,
        block_size: usize,
    ) -> f64 {
        let g = R::from_f64(GRAVITY);
        let h_min = R::from_f64(H_MIN);
        let cfl = R::from_f64(CFL);
        let n_owned = self.local.n_owned_cells;
        let n_edges = self.local.mesh.n_edges();

        let cell_plan = cache.get(
            Scheme::TwoLevel,
            &[],
            &PlanInputs::new(n_owned, vec![], block_size),
        );
        let edge_direct = cache.get(
            Scheme::TwoLevel,
            &[],
            &PlanInputs::new(n_edges, vec![], block_size),
        );
        let edge_colored = cache.get(
            Scheme::TwoLevel,
            &["edge2cell"],
            &PlanInputs::new(n_edges, vec![&self.local.mesh.edge2cell], block_size),
        );

        {
            let (w, w_old) = (&self.w, &mut self.w_old);
            let wo = SharedDat::new(&mut w_old.data);
            pool.colored_blocks(cell_plan.two_level(), 0, |_b, range| {
                for c in range.start as usize..range.end as usize {
                    unsafe { sim_1(w.row(c), wo.slice_mut(c * 4, 4)) };
                }
            });
        }

        let mut global_dt = f64::INFINITY;
        for phase in 0..2u64 {
            if phase == 0 {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w.data, 4, phase);
            } else {
                self.local
                    .cell_halo
                    .execute(comm, &mut self.w1.data, 4, phase);
            }
            {
                let mesh = &self.local.mesh;
                let state = if phase == 0 { &self.w } else { &self.w1 };
                let (egeom, area) = (&self.egeom, &self.area);
                let ef = SharedDat::new(&mut self.eflux.data);
                pool.colored_blocks(edge_direct.two_level(), 0, |_b, range| {
                    for e in range.start as usize..range.end as usize {
                        let c = mesh.edge2cell.row(e);
                        unsafe {
                            compute_flux(
                                egeom.row(e),
                                state.row(c[0] as usize),
                                state.row(c[1] as usize),
                                ef.slice_mut(e * 4, 4),
                                g,
                                h_min,
                            );
                        }
                    }
                });
                if phase == 0 {
                    let plan = edge_direct.two_level();
                    let mut dt_blocks = vec![R::INFINITY; plan.blocks.len()];
                    {
                        let eflux = &self.eflux;
                        let dts = SharedDat::new(&mut dt_blocks);
                        pool.colored_blocks(plan, 0, |b, range| {
                            let mut local = R::INFINITY;
                            for e in range.start as usize..range.end as usize {
                                let c = mesh.edge2cell.row(e);
                                numerical_flux(
                                    egeom.row(e),
                                    eflux.row(e),
                                    area.row(c[0] as usize)[0],
                                    area.row(c[1] as usize)[0],
                                    &mut local,
                                    cfl,
                                );
                            }
                            unsafe { dts.slice_mut(b, 1)[0] = local };
                        });
                    }
                    // deterministic block-order reduction, then the
                    // global CFL synchronization point
                    let mut dt = R::INFINITY;
                    for v in dt_blocks {
                        dt = dt.min(v);
                    }
                    global_dt = comm.allreduce_min(dt.to_f64());
                }
            }
            let dt_step = R::from_f64(global_dt);
            {
                let mesh = &self.local.mesh;
                let state = if phase == 0 { &self.w } else { &self.w1 };
                let (egeom, eflux) = (&self.egeom, &self.eflux);
                let ress = SharedDat::new(&mut self.res.data);
                pool.colored_blocks(edge_colored.two_level(), 0, |_b, range| {
                    for e in range.start as usize..range.end as usize {
                        let c = mesh.edge2cell.row(e);
                        let (c0, c1) = (c[0] as usize, c[1] as usize);
                        let (rl, rr) =
                            unsafe { (ress.slice_mut(c0 * 4, 4), ress.slice_mut(c1 * 4, 4)) };
                        space_disc(
                            egeom.row(e),
                            eflux.row(e),
                            state.row(c0),
                            state.row(c1),
                            rl,
                            rr,
                            g,
                        );
                    }
                });
            }
            {
                let state = if phase == 0 { &self.w } else { &self.w1 };
                for be in 0..self.local.mesh.n_bedges() {
                    let c0 = self.local.mesh.bedge2cell.at(be, 0);
                    bc_flux(self.bgeom.row(be), state.row(c0), self.res.row_mut(c0), g);
                }
            }
            {
                let (w_old, area) = (&self.w_old, &self.area);
                let ress = SharedDat::new(&mut self.res.data);
                let w1s = SharedDat::new(&mut self.w1.data);
                let ws = SharedDat::new(&mut self.w.data);
                pool.colored_blocks(cell_plan.two_level(), 0, |_b, range| {
                    for c in range.start as usize..range.end as usize {
                        unsafe {
                            if phase == 0 {
                                rk_1(
                                    w_old.row(c),
                                    ress.slice_mut(c * 4, 4),
                                    w1s.slice_mut(c * 4, 4),
                                    area.row(c)[0],
                                    dt_step,
                                );
                            } else {
                                rk_2(
                                    w_old.row(c),
                                    &*(w1s.slice_mut(c * 4, 4)),
                                    ress.slice_mut(c * 4, 4),
                                    ws.slice_mut(c * 4, 4),
                                    area.row(c)[0],
                                    dt_step,
                                );
                            }
                        }
                    }
                });
            }
            // discard ghost increments (owners recompute them)
            for v in &mut self.res.data[n_owned * 4..] {
                *v = R::ZERO;
            }
        }
        global_dt
    }
}

/// Run `steps` RK2 steps of Volna across `n_ranks` message-passing
/// ranks; returns the assembled global state and the Δt history.
pub fn run_mpi<R: Real>(
    case: &CoastalCase,
    n_ranks: usize,
    steps: usize,
    rec: Option<&Recorder>,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = Universe::new(n_ranks).run(|comm| {
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            history.push(state.step(comm, rec));
        }
        (
            state.w.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let w = OpDat::from_vec(
        "w",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (w, history)
}

/// Run the MPI×threads hybrid backend end to end: `n_ranks` ranks, each
/// with a persistent `threads_per_rank`-member [`ExecPool`] created once
/// and reused across all `steps` RK2 steps.
pub fn run_mpi_threaded<R: Real>(
    case: &CoastalCase,
    n_ranks: usize,
    threads_per_rank: usize,
    block_size: usize,
    steps: usize,
) -> (OpDat<R>, Vec<f64>) {
    let mesh = &case.mesh;
    let pts: Vec<[f64; 2]> = (0..mesh.n_cells()).map(|c| mesh.cell_centroid(c)).collect();
    let partition = rcb(&pts, n_ranks as u32);
    let locals = distribute(mesh, &partition);
    let total_cells = mesh.n_cells();

    let results = Universe::new(n_ranks).run(|comm| {
        let cache = PlanCache::new();
        let pool = ExecPool::new(threads_per_rank);
        let mut state = RankState::<R>::new(case, locals[comm.rank()].clone());
        let mut history = Vec::with_capacity(steps);
        for _ in 0..steps {
            history.push(state.step_threaded(comm, &cache, &pool, block_size));
        }
        (
            state.w.data,
            state.local.cell_global.clone(),
            state.local.n_owned_cells,
            history,
        )
    });

    let history = results[0].3.clone();
    let parts: Vec<(&[R], &[u32], usize)> = results
        .iter()
        .map(|(data, ids, n_owned, _)| (data.as_slice(), ids.as_slice(), *n_owned))
        .collect();
    let w = OpDat::from_vec(
        "w",
        total_cells,
        4,
        ump_core::dist::assemble_owned(&parts, total_cells, 4),
    );
    (w, history)
}
